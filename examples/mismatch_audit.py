"""Configuration audit: find and label mismatches across a market.

The section 4.3.3 workflow: run the local learner over every configured
value, collect the recommendations that disagree with the current
network, and label them the way the market engineers did — good
recommendations become config changes, update-learner cases become
model work items, the rest get queued for field trials.

Run:  python examples/mismatch_audit.py
"""

from collections import Counter

from repro.core import AuricEngine
from repro.datagen import four_markets_workload
from repro.eval.engineers import MismatchLabel, label_mismatches
from repro.eval.runner import EvaluationRunner
from repro.reporting.tables import format_table


def main() -> None:
    dataset = four_markets_workload(scale=0.01)
    parameters = ["pMax", "sFreqPrio", "qrxlevmin", "qHyst", "lbCapacityThreshold"]
    engine = AuricEngine(dataset.network, dataset.store).fit(parameters)
    runner = EvaluationRunner(dataset)

    result = runner.loo_accuracy(
        engine, parameters, max_targets_per_parameter=800, scopes=("local",)
    )
    print(
        f"audited {result.evaluated} configuration values; "
        f"{len(result.mismatches_local)} mismatches "
        f"({len(result.mismatches_local) / max(result.evaluated, 1):.1%})"
    )

    labeled, counts = label_mismatches(dataset.provenance, result.mismatches_local)
    total = max(len(labeled), 1)
    print(
        format_table(
            ["label", "count", "share"],
            [
                (label.value, counts[label], f"{counts[label] / total:.0%}")
                for label in MismatchLabel
            ],
            title="\nengineer labeling (Fig 12 style)",
        )
    )

    # The good recommendations are actionable config changes right now.
    actionable = [
        m for m in labeled if m.label is MismatchLabel.GOOD_RECOMMENDATION
    ]
    print(f"\n{len(actionable)} sub-optimal values to correct; first few:")
    for mismatch in actionable[:5]:
        print(
            f"  {mismatch.key} {mismatch.parameter}: "
            f"{mismatch.current!r} -> {mismatch.recommended!r}"
        )

    # Which parameters drive the mismatches?
    per_parameter = Counter(m.parameter for m in labeled)
    print("\nmismatches per parameter:", dict(per_parameter))


if __name__ == "__main__":
    main()
