"""Configuration has consequences: the radio simulator in action.

Section 6 of the paper ends on performance feedback: configuration
changes have observable KPI impact.  This example runs the radio-layer
simulator over one eNodeB neighborhood, pushes a deliberately bad
configuration (transmit power crushed, minimum receive level made
absurd), watches coverage and KPIs collapse, and rolls back — the
"implications of inaccurate recommendations" path of section 4.3.3.

Run:  python examples/radio_impact.py
"""

from repro.datagen import four_markets_workload
from repro.ops import SimulationKPIMonitor, SONComplianceChecker
from repro.radio import RadioSimulator


def main() -> None:
    dataset = four_markets_workload(scale=0.01)
    network, store = dataset.network, dataset.store

    # Pick a busy urban eNodeB and simulate its neighborhood.
    enodeb = max(
        network.markets[0].enodebs, key=lambda e: e.carrier_count()
    )
    scope = [enodeb] + [
        network.enodeb(n) for n in network.x2.enodeb_neighbors(enodeb.enodeb_id)
    ]
    simulator = RadioSimulator(network, store, enodebs=scope, seed=7)
    before = simulator.run()
    print(
        f"baseline: {before.users_total} users, "
        f"{before.connection_rate:.0%} connected, "
        f"{before.handovers} load-balancing handovers"
    )
    busy = max(before.kpis.values(), key=lambda k: k.connected_users)
    print(
        f"busiest carrier {busy.carrier_id}: {busy.connected_users} users, "
        f"{busy.mean_throughput_mbps:.1f} Mbps mean, "
        f"drop rate {busy.drop_rate:.1%}"
    )

    # An engineer (or a bad recommendation) wrecks the carrier's radio
    # parameters.  The KPI monitor snapshots first, as SmartLaunch does.
    monitor = SimulationKPIMonitor(network, store, seed=7)
    monitor.snapshot(busy.carrier_id)
    store.set_singular(busy.carrier_id, "pMax", 0)       # barely any power
    store.set_singular(busy.carrier_id, "qrxlevmin", -44)  # absurd bar

    after = simulator.run()
    hurt = after.kpis[busy.carrier_id]
    print(
        f"\nafter the bad push: {hurt.connected_users} users on the carrier "
        f"(was {busy.connected_users}); network connection rate "
        f"{after.connection_rate:.0%}"
    )
    report = monitor.observe(busy.carrier_id, changed=True)
    print(f"KPI monitor verdict: {'healthy' if report.healthy else 'DEGRADED'}")

    restored = monitor.rollback(busy.carrier_id)
    recovered = simulator.run().kpis[busy.carrier_id]
    print(
        f"rolled back {restored} parameters; carrier carries "
        f"{recovered.connected_users} users again"
    )

    # And the SON compliance view: everything was always *legal* —
    # which is exactly why compliance checking alone cannot catch a
    # harmful-but-in-range configuration (section 2.4).
    checker = SONComplianceChecker(network, store)
    print("\nSON compliance:", checker.audit([busy.carrier_id]).summary())


if __name__ == "__main__":
    main()
