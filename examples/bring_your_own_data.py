"""Bring your own network: the JSON snapshot adoption path.

The synthetic generator stands in for proprietary data, but a real
operator would export their carrier inventory and configuration into
the snapshot schema (`repro.dataio`) and run the engine on it unchanged.
This example demonstrates the full round trip: export a network to JSON
(pretending it came from an OSS inventory), load it back with no
generator state attached, and run Auric on the loaded snapshot.

Run:  python examples/bring_your_own_data.py
"""

import os
import tempfile

from repro.core import AuricEngine
from repro.dataio import (
    export_attributes_csv,
    export_dataset_json,
    export_parameter_csv,
    load_dataset_json,
)
from repro.datagen import four_markets_workload


def main() -> None:
    # Pretend this came from the operator's inventory systems.
    dataset = four_markets_workload(scale=0.01)

    with tempfile.TemporaryDirectory() as workdir:
        snapshot_path = os.path.join(workdir, "network_snapshot.json")
        export_dataset_json(dataset, snapshot_path)
        size_mb = os.path.getsize(snapshot_path) / 1e6
        print(f"exported snapshot: {snapshot_path} ({size_mb:.1f} MB)")

        rows = export_attributes_csv(
            dataset.network, os.path.join(workdir, "carriers.csv")
        )
        values = export_parameter_csv(
            dataset.store, "pMax", os.path.join(workdir, "pMax.csv")
        )
        print(f"exported {rows} carrier attribute rows, {values} pMax values")

        # --- a different process, later: load and recommend -------------
        snapshot = load_dataset_json(snapshot_path)
        print(f"\nloaded: {snapshot.network.summary()}")

        engine = AuricEngine(snapshot.network, snapshot.store).fit(
            ["pMax", "sFreqPrio", "qrxlevmin"]
        )
        carrier = next(snapshot.network.carriers()).carrier_id
        print(f"\nrecommendations for {carrier}:")
        for name in engine.fitted_parameters():
            print(f"  {engine.recommend_for_carrier(name, carrier)}")


if __name__ == "__main__":
    main()
