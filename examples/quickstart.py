"""Quickstart: learn from an existing network and recommend configuration.

Generates a small synthetic LTE network (the stand-in for the paper's
proprietary production snapshot), fits Auric's collaborative-filtering
dependency models, and recommends values for a carrier — with the
explanation engineers see.

Run:  python examples/quickstart.py
"""

from repro.core import AuricEngine
from repro.core.explain import explain_recommendation
from repro.datagen import four_markets_workload


def main() -> None:
    # A scaled-down four-market network (Table 3 of the paper at scale).
    dataset = four_markets_workload(scale=0.01)
    print(dataset.summary())
    print()

    # Fit dependency models for a few parameters (65 available).
    parameters = ["pMax", "sFreqPrio", "qrxlevmin", "hysA3Offset"]
    engine = AuricEngine(dataset.network, dataset.store).fit(parameters)

    # Treat one carrier as new (leave-one-out) and recommend.
    carrier_id = next(dataset.network.carriers()).carrier_id
    print(f"recommendations for {carrier_id}:")
    for name in ("pMax", "sFreqPrio", "qrxlevmin"):
        recommendation = engine.recommend_for_carrier(name, carrier_id)
        current = dataset.store.get_singular(carrier_id, name)
        match = "matches" if recommendation.value == current else "DIFFERS from"
        print(f"  {recommendation}  ({match} current value {current!r})")
    print()

    # The explanation an engineer reviews before trusting the system.
    for line in explain_recommendation(engine, "pMax", carrier_id):
        print(line)


if __name__ == "__main__":
    main()
