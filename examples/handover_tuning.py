"""Pair-wise handover parameters in action.

The paper's 26 pair-wise parameters manage user mobility.  This example
shows why their values matter and how Auric fills them: a UE drives a
corridor between two cells under (a) the network's configured handover
parameters recommended by Auric's pair-wise voting, and (b) a corrupted
configuration (no hysteresis, no time-to-trigger) — then compares
handover quality.

Run:  python examples/handover_tuning.py
"""

from repro.config.store import PairKey
from repro.core import AuricEngine
from repro.datagen import four_markets_workload
from repro.netmodel.geo import GeoPoint
from repro.radio import MobilitySimulator, straight_path


def main() -> None:
    dataset = four_markets_workload(scale=0.01)
    network, store = dataset.network, dataset.store

    # 1. Auric recommends pair-wise handover settings for a relation.
    engine = AuricEngine(network, store).fit(
        ["a3Offset", "hysA3Offset", "timeToTriggerA3"]
    )
    values = store.pairwise_values("hysA3Offset")
    # An intra-frequency relation between two different eNodeBs — the
    # geometry where the A3 handover actually plays out.
    pair = next(
        k for k in sorted(values) if k.carrier.enodeb != k.neighbor.enodeb
    )
    print(f"handover relation {pair.carrier} -> {pair.neighbor}:")
    for name in ("a3Offset", "hysA3Offset", "timeToTriggerA3"):
        rec = engine.recommend_for_pair(name, pair)
        current = store.get_pairwise(pair, name)
        print(f"  {rec}  (current {current!r})")

    # 2. Drive a UE between the two cells under the configured values.
    source = network.carrier(pair.carrier)
    target = network.carrier(pair.neighbor)
    # Scope the measurement to the relation's frequency layer so the
    # walk exercises exactly this handover pair.
    simulator = MobilitySimulator(network, store, carriers=[source, target])
    margin = GeoPoint(
        source.location.lat, source.location.lon
    ).offset_km(0.0, -0.5)
    path = straight_path(margin, target.location.offset_km(0.0, 0.5), 300)
    tuned = simulator.walk(path)
    print(
        f"\nconfigured handover params: {tuned.handover_count} handovers, "
        f"{tuned.ping_pong_count} ping-pongs, "
        f"{tuned.radio_link_failures} radio-link failures"
    )

    # 3. The hard case: a UE lingering at the cell edge (stop-and-go
    #    traffic on a boundary road).  Sane margins keep it stable.
    def edge_lingering_walk():
        midpoint = GeoPoint(
            (source.location.lat + target.location.lat) / 2,
            (source.location.lon + target.location.lon) / 2,
        )
        points = []
        for i in range(240):
            wobble = 0.2 if i % 24 < 12 else -0.2
            points.append(midpoint.offset_km(wobble, wobble))
        return simulator.walk(points)

    stable = edge_lingering_walk()
    print(
        f"edge lingering, tuned:     {stable.handover_count} handovers, "
        f"{stable.ping_pong_count} ping-pongs"
    )

    # 4. Corrupt the relation: margins to zero in both directions.
    for key in (pair, pair.reversed()):
        store.set_pairwise(key, "a3Offset", -15)
        store.set_pairwise(key, "hysA3Offset", 0)
        store.set_pairwise(key, "timeToTriggerA3", 0)
    sloppy = edge_lingering_walk()
    print(
        f"edge lingering, zeroed:    {sloppy.handover_count} handovers, "
        f"{sloppy.ping_pong_count} ping-pongs"
    )
    print(
        "\nthe configured (Auric-recommendable) values give clean mobility;"
        "\nzeroed margins churn the UE between cells — the tuning Auric"
        "\npreserves when new carriers launch."
    )


if __name__ == "__main__":
    main()
