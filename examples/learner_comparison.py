"""Five-learner comparison on one market (a miniature Table 4).

Compares the paper's five global learners — random forest, k-nearest
neighbors, decision tree, deep neural network and collaborative
filtering — on a handful of parameters with 3-fold cross-validation.

Run:  python examples/learner_comparison.py
"""

from repro.datagen import four_markets_workload
from repro.eval.runner import EvaluationRunner
from repro.learners.registry import PAPER_LEARNER_ORDER, paper_learner_factories
from repro.reporting.tables import format_table


def main() -> None:
    dataset = four_markets_workload(scale=0.02)
    runner = EvaluationRunner(dataset)
    market = dataset.network.markets[0]
    parameters = ["pMax", "sFreqPrio", "qrxlevmin", "qHyst", "inactivityTimer"]

    print(f"comparing learners on {market} ({market.carrier_count()} carriers)")
    scores = runner.compare_learners(
        paper_learner_factories(fast=True),
        parameters,
        market_id=market.market_id,
        folds=3,
        max_samples_per_parameter=2000,
    )

    rows = []
    for parameter in parameters:
        by_param = {
            s.learner: s.accuracy
            for s in scores.scores
            if s.parameter == parameter
        }
        distinct = next(
            s.distinct_values for s in scores.scores if s.parameter == parameter
        )
        rows.append(
            (
                parameter,
                distinct,
                *(100.0 * by_param.get(n, float("nan")) for n in PAPER_LEARNER_ORDER),
            )
        )
    means = scores.mean_by_learner()
    rows.append(
        ("MEAN", "", *(100.0 * means[n] for n in PAPER_LEARNER_ORDER))
    )
    print(
        format_table(
            ["parameter", "distinct", *PAPER_LEARNER_ORDER],
            rows,
            title="per-parameter accuracy (%)",
        )
    )
    print(
        "\nexpected shape (paper Table 4): collaborative filtering wins; "
        "random forest edges decision tree / DNN; kNN trails."
    )


if __name__ == "__main__":
    main()
