"""New-carrier launch: the SmartLaunch workflow of section 5.

The motivating scenario of the paper's introduction: traffic growth
forces a capacity carrier onto an existing eNodeB.  The vendor integrates
it with rule-book defaults; Auric recommends the locally-tuned values;
the controller diffs and pushes only the mismatches through the EMS while
the carrier is still locked; the carrier is then unlocked and monitored.

Run:  python examples/new_carrier_launch.py
"""

from repro.config.managed_objects import build_vendor_schema
from repro.config.rulebook import RuleBook
from repro.config.templates import ConfigTemplate
from repro.core import AuricEngine, NewCarrierRequest, RecommendationPipeline
from repro.core.recommendation import RecommendRequest
from repro.datagen import four_markets_workload
from repro.ops import (
    ConfigPushController,
    ElementManagementSystem,
    EMSConfig,
    KPIMonitor,
    SmartLaunch,
    SmartLaunchConfig,
)
from repro.types import Vendor


def main() -> None:
    dataset = four_markets_workload(scale=0.01)
    catalog = dataset.catalog

    # 1. Learn dependency models from the live network.
    parameters = ["pMax", "sFreqPrio", "lbCapacityThreshold", "qHyst", "qrxlevmin"]
    engine = AuricEngine(dataset.network, dataset.store).fit(parameters)
    rulebook = RuleBook(catalog)
    pipeline = RecommendationPipeline(engine, rulebook)

    # 2. A new capacity carrier lands on a congested urban eNodeB; its
    #    attributes are known at activation, before it carries traffic.
    enodeb = dataset.network.markets[0].enodebs[0]
    template = next(enodeb.carriers())
    request = NewCarrierRequest(
        attributes=template.attributes, enodeb_id=enodeb.enodeb_id
    )
    recommendation = pipeline.handle(
        RecommendRequest.from_new_carrier(request, parameters=tuple(parameters))
    ).recommendation
    print("Auric recommendation for the new carrier:")
    print(recommendation)
    print()

    # 3. The vendor's initial configuration came from the static rule-book.
    vendor_config = {
        name: rulebook.value_for(name, request.attributes) for name in parameters
    }
    print("vendor initial configuration:", vendor_config)
    print()

    # 4. SmartLaunch pushes only the confident mismatches, then unlocks.
    ems = ElementManagementSystem(
        dataset.network,
        dataset.store,
        EMSConfig(base_timeout_rate=0.0, per_parameter_timeout_rate=0.0),
    )
    controller = ConfigPushController(
        ems, ConfigTemplate(build_vendor_schema(Vendor.VENDOR_A, catalog))
    )
    monitor = KPIMonitor(dataset.store, degradation_rate=0.0)
    workflow = SmartLaunch(
        controller, monitor, SmartLaunchConfig(premature_unlock_rate=0.0)
    )

    target = template.carrier_id  # the slot the new carrier occupies
    record = workflow.launch(target, vendor_config, recommendation)
    print(f"launch outcome: {record.outcome.value}")
    print(f"changes recommended: {record.changes_recommended}")
    print(f"parameters pushed:   {record.parameters_pushed}")
    if record.push_result is not None and record.push_result.config_file:
        print("\npushed configuration file:")
        print(record.push_result.config_file)


if __name__ == "__main__":
    main()
