"""LTE network object model.

This package models the slice of an LTE radio access network that Auric
needs: markets, eNodeBs (with three faces), carriers with their attribute
vectors (Table 1 of the paper), frequency bands, geographic placement and
the X2 neighbor-relation graph used as the geographical-proximity oracle.
"""

from repro.netmodel.attributes import (
    ATTRIBUTE_SCHEMA,
    AttributeField,
    AttributeSchema,
    CarrierAttributes,
)
from repro.netmodel.bands import band_for_frequency_mhz
from repro.netmodel.carrier import Carrier
from repro.netmodel.enodeb import ENodeB, Face
from repro.netmodel.geo import GeoPoint, haversine_km
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId
from repro.netmodel.market import Market
from repro.netmodel.network import Network
from repro.netmodel.topology import X2Graph, build_x2_graph

__all__ = [
    "ATTRIBUTE_SCHEMA",
    "AttributeField",
    "AttributeSchema",
    "CarrierAttributes",
    "band_for_frequency_mhz",
    "Carrier",
    "ENodeB",
    "Face",
    "GeoPoint",
    "haversine_km",
    "CarrierId",
    "ENodeBId",
    "MarketId",
    "Market",
    "Network",
    "X2Graph",
    "build_x2_graph",
]
