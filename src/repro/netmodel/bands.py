"""Frequency band helpers for carrier layer management.

Section 2.1 of the paper: carriers within a face operate on low, mid or
high bands; users are steered high-band-first.  We use the conventional
LTE groupings: below 1 GHz is low band, 1-2.3 GHz is mid band, above is
high band.
"""

from __future__ import annotations

from repro.types import Band

#: Carrier frequencies (MHz) used by the synthetic generator.  These are
#: real LTE deployment frequencies in the US (700/850 low, AWS/PCS mid,
#: 2300/2500 high), matching the example values in Table 1.
KNOWN_FREQUENCIES_MHZ = (700, 850, 1700, 1900, 2100, 2300, 2500)

LOW_BAND_MAX_MHZ = 1000
MID_BAND_MAX_MHZ = 2300


def band_for_frequency_mhz(frequency_mhz: int) -> Band:
    """Classify a carrier frequency into its LB/MB/HB layer group."""
    if frequency_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    if frequency_mhz < LOW_BAND_MAX_MHZ:
        return Band.LOW
    if frequency_mhz < MID_BAND_MAX_MHZ:
        return Band.MID
    return Band.HIGH


def layer_priority(band: Band) -> int:
    """Connection priority for carrier layer management (lower = try first).

    High band is tried first; users spill to mid then low as higher bands
    congest or run out of coverage.
    """
    return {Band.HIGH: 0, Band.MID: 1, Band.LOW: 2}[band]
