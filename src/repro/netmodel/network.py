"""The Network container: markets, eNodeBs, carriers and X2 topology.

This is the top-level object the rest of the library consumes.  It gives
O(1) lookup of carriers / eNodeBs / markets by id, iteration in a stable
order, and holds the X2 graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.exceptions import UnknownCarrierError, UnknownMarketError
from repro.netmodel.carrier import Carrier
from repro.netmodel.enodeb import ENodeB
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId
from repro.netmodel.market import Market
from repro.netmodel.topology import X2Graph


@dataclass
class Network:
    """A cellular network snapshot."""

    markets: List[Market] = field(default_factory=list)
    x2: X2Graph = field(default_factory=X2Graph)
    _carrier_index: Dict[CarrierId, Carrier] = field(default_factory=dict, repr=False)
    _enodeb_index: Dict[ENodeBId, ENodeB] = field(default_factory=dict, repr=False)
    _market_index: Dict[MarketId, Market] = field(default_factory=dict, repr=False)

    def add_market(self, market: Market) -> None:
        if market.market_id in self._market_index:
            raise ValueError(f"duplicate market {market.market_id}")
        self.markets.append(market)
        self._market_index[market.market_id] = market
        for enodeb in market.enodebs:
            self._register_enodeb(enodeb)

    def _register_enodeb(self, enodeb: ENodeB) -> None:
        if enodeb.enodeb_id in self._enodeb_index:
            raise ValueError(f"duplicate eNodeB {enodeb.enodeb_id}")
        self._enodeb_index[enodeb.enodeb_id] = enodeb
        for carrier in enodeb.carriers():
            if carrier.carrier_id in self._carrier_index:
                raise ValueError(f"duplicate carrier {carrier.carrier_id}")
            self._carrier_index[carrier.carrier_id] = carrier

    # -- lookups ----------------------------------------------------------

    def market(self, market_id: MarketId) -> Market:
        try:
            return self._market_index[market_id]
        except KeyError:
            raise UnknownMarketError(str(market_id)) from None

    def enodeb(self, enodeb_id: ENodeBId) -> ENodeB:
        try:
            return self._enodeb_index[enodeb_id]
        except KeyError:
            raise UnknownCarrierError(str(enodeb_id)) from None

    def carrier(self, carrier_id: CarrierId) -> Carrier:
        try:
            return self._carrier_index[carrier_id]
        except KeyError:
            raise UnknownCarrierError(str(carrier_id)) from None

    def has_carrier(self, carrier_id: CarrierId) -> bool:
        return carrier_id in self._carrier_index

    # -- iteration --------------------------------------------------------

    def carriers(self, market_id: Optional[MarketId] = None) -> Iterator[Carrier]:
        if market_id is not None:
            yield from self.market(market_id).carriers()
            return
        for market in self.markets:
            yield from market.carriers()

    def enodebs(self, market_id: Optional[MarketId] = None) -> Iterator[ENodeB]:
        markets = [self.market(market_id)] if market_id is not None else self.markets
        for market in markets:
            yield from market.enodebs

    # -- counts -----------------------------------------------------------

    def carrier_count(self, market_id: Optional[MarketId] = None) -> int:
        if market_id is not None:
            return self.market(market_id).carrier_count()
        return len(self._carrier_index)

    def enodeb_count(self, market_id: Optional[MarketId] = None) -> int:
        if market_id is not None:
            return self.market(market_id).enodeb_count()
        return len(self._enodeb_index)

    def market_count(self) -> int:
        return len(self.markets)

    def market_ids(self) -> List[MarketId]:
        return [m.market_id for m in self.markets]

    def summary(self) -> str:
        """One-line human-readable description of the network size."""
        return (
            f"Network({self.market_count()} markets, "
            f"{self.enodeb_count()} eNodeBs, {self.carrier_count()} carriers, "
            f"{self.x2.carrier_relation_count()} X2 carrier relations)"
        )
