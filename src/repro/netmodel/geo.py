"""Geographic primitives for eNodeB placement.

The paper uses X2 neighbor relations as its proximity signal; we derive
X2 adjacency from geometry, so the network model carries latitude /
longitude per eNodeB.  Distances are computed with the haversine formula,
which is accurate to well under 0.5% at the scales of a market.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0088  # mean Earth radius


@dataclass(frozen=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)

    def offset_km(self, north_km: float, east_km: float) -> "GeoPoint":
        """Return a point displaced by the given kilometre offsets.

        Uses the local flat-earth approximation, which is fine for the
        tens-of-kilometres extents of a market.
        """
        dlat = north_km / 110.574
        # Guard against the degenerate cos() at the poles.
        cos_lat = max(math.cos(math.radians(self.lat)), 1e-9)
        dlon = east_km / (111.320 * cos_lat)
        lat = min(max(self.lat + dlat, -90.0), 90.0)
        lon = ((self.lon + dlon + 180.0) % 360.0) - 180.0
        return GeoPoint(lat, lon)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))
