"""Carrier attributes (Table 1 of the paper).

An *attribute* describes a carrier: its frequency, type, morphology,
bandwidth, hardware, market, vendor and so on.  Attributes are the
predictor variables of Auric's dependency models.  Some are static (never
change for a carrier), some are dynamic (drift slowly — software version,
neighbor count).

The schema here mirrors Table 1 exactly; the generator and the learners
both consume it, so attribute names are defined once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import GenerationError
from repro.types import AttributeValue


@dataclass(frozen=True)
class AttributeField:
    """One carrier attribute: name, static/dynamic flag and example domain.

    ``domain`` is advisory — it documents the values the synthetic
    generator emits; the learners treat every attribute as categorical and
    never rely on the domain being closed.
    """

    name: str
    static: bool
    domain: Tuple[AttributeValue, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")


class AttributeSchema:
    """An ordered, named collection of :class:`AttributeField`."""

    def __init__(self, fields: Sequence[AttributeField]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate attribute names in schema")
        self._fields: Tuple[AttributeField, ...] = tuple(fields)
        self._by_name: Dict[str, AttributeField] = {f.name: f for f in fields}

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    @property
    def static_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self._fields if f.static)

    @property
    def dynamic_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self._fields if not f.static)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[AttributeField]:
        return iter(self._fields)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def field(self, name: str) -> AttributeField:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown attribute {name!r}") from None


#: The attribute set of Table 1.  Neighbor-channel and same-eNodeB neighbor
#: count are included; carrier-specific identifiers (IP address, carrier id)
#: are deliberately absent, as the paper excludes them.
ATTRIBUTE_SCHEMA = AttributeSchema(
    [
        AttributeField("carrier_frequency", True, (700, 850, 1700, 1900, 2100, 2300, 2500),
                       "Center frequency of the carrier in MHz"),
        AttributeField("carrier_type", True, ("standard", "FirstNet", "NB-IoT"),
                       "Service type of the carrier"),
        AttributeField("carrier_info", True, ("none", "5G-colocated", "border"),
                       "Deployment context flags"),
        AttributeField("morphology", True, ("urban", "suburban", "rural"),
                       "Morphology of the served area"),
        AttributeField("channel_bandwidth", True, (5, 10, 15, 20),
                       "Downlink channel bandwidth in MHz"),
        AttributeField("dl_mimo_mode", True, ("closed-loop", "open-loop", "4x4"),
                       "Downlink MIMO mode"),
        AttributeField("hardware", True, ("RRH1", "RRH2", "RRH3"),
                       "Remote radio head hardware configuration"),
        AttributeField("cell_size", True, (1, 2, 3, 5),
                       "Expected cell size in miles"),
        AttributeField("tracking_area_code", True, (),
                       "Tracking area code (market-derived)"),
        AttributeField("market", True, (),
                       "Operational market the carrier belongs to"),
        AttributeField("vendor", True, ("VendorA", "VendorB", "VendorC"),
                       "Radio equipment vendor"),
        AttributeField("neighbor_channel", True, (444, 555, 666),
                       "Dominant neighboring channel number"),
        AttributeField("neighbor_count", False, (),
                       "Number of neighbor carriers on the same eNodeB (dynamic)"),
        AttributeField("software_version", False, ("RAN20Q1", "RAN20Q2", "RAN21Q1"),
                       "RAN software release (dynamic)"),
    ]
)


@dataclass(frozen=True)
class CarrierAttributes:
    """An immutable attribute vector for one carrier.

    Stored as a mapping keyed by attribute name and validated against a
    schema at construction time, so downstream code can index attributes
    without defensive checks.
    """

    values: Mapping[str, AttributeValue]
    schema: AttributeSchema = field(default=ATTRIBUTE_SCHEMA, repr=False)

    def __post_init__(self) -> None:
        missing = [n for n in self.schema.names if n not in self.values]
        if missing:
            raise GenerationError(f"attribute vector missing fields: {missing}")
        extra = [n for n in self.values if n not in self.schema]
        if extra:
            raise GenerationError(f"attribute vector has unknown fields: {extra}")
        # Freeze the mapping so the dataclass is genuinely immutable.
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, name: str) -> AttributeValue:
        return self.values[name]

    def get(self, name: str, default: Optional[AttributeValue] = None) -> Optional[AttributeValue]:
        return self.values.get(name, default)

    def as_tuple(self, names: Optional[Sequence[str]] = None) -> Tuple[AttributeValue, ...]:
        """The attribute values in schema order (or a chosen sub-order)."""
        if names is None:
            names = self.schema.names
        return tuple(self.values[n] for n in names)

    def replace(self, **updates: AttributeValue) -> "CarrierAttributes":
        """A copy with some attribute values replaced (dynamic drift)."""
        merged = dict(self.values)
        for name, value in updates.items():
            if name not in self.schema:
                raise KeyError(f"unknown attribute {name!r}")
            merged[name] = value
        return CarrierAttributes(merged, self.schema)
