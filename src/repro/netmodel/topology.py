"""X2 neighbor topology.

Between two eNodeBs, the X2 interface carries handover control and data
traffic (section 2.1).  Auric uses X2 neighbor relations as its proximity
oracle: the *local learner* restricts the carriers used for voting to the
1-hop X2 neighborhood of the new carrier (section 3.3).

In production the X2 relations are measured; here they are derived from
eNodeB geometry: each eNodeB is X2-adjacent to its nearest eNodeBs within
a radius.  Carrier-level neighbor relations (needed both for pair-wise
handover parameters and for proximity scoping) are then induced:

* carriers on the *same* eNodeB are neighbors when they share a face
  (inter-frequency overlay cells) or a frequency (inter-face handover),
* carriers on X2-adjacent eNodeBs are neighbors when they share both the
  carrier frequency and the face index (intra-frequency handover
  relations dominate the pair-wise parameter set; the face restriction
  stands in for the azimuth alignment real ANR would measure).

A simple uniform-grid spatial index keeps construction near-linear in
the number of eNodeBs.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.netmodel.carrier import Carrier
from repro.netmodel.enodeb import ENodeB
from repro.netmodel.geo import GeoPoint, haversine_km
from repro.netmodel.identifiers import CarrierId, ENodeBId

DEFAULT_X2_RADIUS_KM = 5.0
DEFAULT_MAX_X2_DEGREE = 6


class X2Graph:
    """The X2 neighbor relations at eNodeB and carrier granularity."""

    def __init__(self) -> None:
        self.enodeb_graph: "nx.Graph" = nx.Graph()
        self.carrier_graph: "nx.Graph" = nx.Graph()

    # -- construction -----------------------------------------------------

    def add_enodeb(self, enodeb_id: ENodeBId) -> None:
        self.enodeb_graph.add_node(enodeb_id)

    def add_carrier(self, carrier_id: CarrierId) -> None:
        self.carrier_graph.add_node(carrier_id)

    def add_enodeb_relation(self, a: ENodeBId, b: ENodeBId) -> None:
        if a == b:
            raise ValueError("an eNodeB cannot be its own X2 neighbor")
        self.enodeb_graph.add_edge(a, b)

    def add_carrier_relation(self, a: CarrierId, b: CarrierId) -> None:
        if a == b:
            raise ValueError("a carrier cannot be its own neighbor")
        self.carrier_graph.add_edge(a, b)

    # -- queries ----------------------------------------------------------

    def enodeb_neighbors(self, enodeb_id: ENodeBId) -> List[ENodeBId]:
        if enodeb_id not in self.enodeb_graph:
            return []
        return sorted(self.enodeb_graph.neighbors(enodeb_id))

    def carrier_neighbors(self, carrier_id: CarrierId) -> List[CarrierId]:
        """The 1-hop carrier neighborhood used by the local learner."""
        if carrier_id not in self.carrier_graph:
            return []
        return sorted(self.carrier_graph.neighbors(carrier_id))

    def carrier_neighborhood(self, carrier_id: CarrierId, hops: int = 1) -> Set[CarrierId]:
        """Carriers within ``hops`` X2 hops of ``carrier_id`` (excluded itself)."""
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if carrier_id not in self.carrier_graph:
            return set()
        frontier = {carrier_id}
        seen = {carrier_id}
        for _ in range(hops):
            frontier = {
                n for c in frontier for n in self.carrier_graph.neighbors(c)
            } - seen
            if not frontier:
                break
            seen |= frontier
        seen.discard(carrier_id)
        return seen

    def carrier_pairs(self) -> Iterable[Tuple[CarrierId, CarrierId]]:
        """All carrier neighbor pairs (each unordered pair once)."""
        return self.carrier_graph.edges()

    def carrier_degree(self, carrier_id: CarrierId) -> int:
        if carrier_id not in self.carrier_graph:
            return 0
        return self.carrier_graph.degree(carrier_id)

    def enodeb_count(self) -> int:
        return self.enodeb_graph.number_of_nodes()

    def carrier_relation_count(self) -> int:
        return self.carrier_graph.number_of_edges()


class _GridIndex:
    """Uniform lat/lon grid for near-linear radius queries."""

    def __init__(self, cell_km: float):
        self._cell_km = cell_km
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._points: List[GeoPoint] = []

    def _key(self, point: GeoPoint) -> Tuple[int, int]:
        # ~111 km per degree of latitude; longitude compressed by cos(lat).
        row = int(point.lat * 111.0 / self._cell_km)
        col = int(point.lon * 111.0 * max(math.cos(math.radians(point.lat)), 1e-9)
                  / self._cell_km)
        return row, col

    def insert(self, index: int, point: GeoPoint) -> None:
        if index != len(self._points):
            raise ValueError("points must be inserted in index order")
        self._points.append(point)
        self._cells[self._key(point)].append(index)

    def within(self, point: GeoPoint, radius_km: float) -> List[int]:
        """Indices of points within ``radius_km`` of ``point``."""
        row, col = self._key(point)
        reach = int(math.ceil(radius_km / self._cell_km)) + 1
        hits: List[int] = []
        for dr in range(-reach, reach + 1):
            for dc in range(-reach, reach + 1):
                for idx in self._cells.get((row + dr, col + dc), ()):
                    if haversine_km(point, self._points[idx]) <= radius_km:
                        hits.append(idx)
        return hits


def build_x2_graph(
    enodebs: Sequence[ENodeB],
    radius_km: float = DEFAULT_X2_RADIUS_KM,
    max_degree: int = DEFAULT_MAX_X2_DEGREE,
) -> X2Graph:
    """Derive X2 adjacency from eNodeB geometry.

    Each eNodeB is connected to its ``max_degree`` nearest eNodeBs within
    ``radius_km``.  Carrier relations are induced as described in the
    module docstring.
    """
    if radius_km <= 0:
        raise ValueError("radius_km must be positive")
    if max_degree < 1:
        raise ValueError("max_degree must be >= 1")

    graph = X2Graph()
    index = _GridIndex(cell_km=max(radius_km, 0.5))
    for i, enodeb in enumerate(enodebs):
        index.insert(i, enodeb.location)
        graph.add_enodeb(enodeb.enodeb_id)
        for carrier in enodeb.carriers():
            graph.add_carrier(carrier.carrier_id)

    # eNodeB adjacency: k nearest within radius.
    for i, enodeb in enumerate(enodebs):
        candidates = [
            (haversine_km(enodeb.location, enodebs[j].location), j)
            for j in index.within(enodeb.location, radius_km)
            if j != i
        ]
        candidates.sort()
        for _, j in candidates[:max_degree]:
            graph.add_enodeb_relation(enodeb.enodeb_id, enodebs[j].enodeb_id)

    # Carrier adjacency.
    by_id: Dict[ENodeBId, ENodeB] = {e.enodeb_id: e for e in enodebs}
    for enodeb in enodebs:
        carriers = list(enodeb.carriers())
        # Co-eNodeB: same face (overlay cells) or same frequency (faces).
        for a in range(len(carriers)):
            for b in range(a + 1, len(carriers)):
                ca, cb = carriers[a], carriers[b]
                if (
                    ca.carrier_id.face == cb.carrier_id.face
                    or ca.frequency_mhz == cb.frequency_mhz
                ):
                    graph.add_carrier_relation(ca.carrier_id, cb.carrier_id)
        # Cross-eNodeB: same frequency and same face index.
        for neighbor_id in graph.enodeb_neighbors(enodeb.enodeb_id):
            if neighbor_id <= enodeb.enodeb_id:
                continue  # handle each eNodeB pair once
            neighbor = by_id[neighbor_id]
            for mine in carriers:
                for theirs in neighbor.carriers():
                    if (
                        mine.frequency_mhz == theirs.frequency_mhz
                        and mine.carrier_id.face == theirs.carrier_id.face
                    ):
                        graph.add_carrier_relation(
                            mine.carrier_id, theirs.carrier_id
                        )
    return graph
