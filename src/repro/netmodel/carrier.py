"""The carrier: a radio channel on an eNodeB face.

Carriers are the unit of configuration in Auric.  Each carrier has an
identifier, an attribute vector, a geographic location (inherited from
its eNodeB) and a lock state used by the operational layer (a locked
carrier is off-air and can be reconfigured freely; unlocking it puts it
in service).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.attributes import CarrierAttributes
from repro.netmodel.bands import band_for_frequency_mhz
from repro.netmodel.geo import GeoPoint
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId
from repro.types import Band


@dataclass
class Carrier:
    """A carrier (radio channel) on an eNodeB face."""

    carrier_id: CarrierId
    attributes: CarrierAttributes
    location: GeoPoint
    locked: bool = field(default=False)

    @property
    def market(self) -> MarketId:
        return self.carrier_id.market

    @property
    def enodeb(self) -> ENodeBId:
        return self.carrier_id.enodeb

    @property
    def frequency_mhz(self) -> int:
        return int(self.attributes["carrier_frequency"])

    @property
    def band(self) -> Band:
        return band_for_frequency_mhz(self.frequency_mhz)

    def lock(self) -> None:
        """Take the carrier off-air (reboot-equivalent; allows reconfiguration)."""
        self.locked = True

    def unlock(self) -> None:
        """Put the carrier in service."""
        self.locked = False

    def __str__(self) -> str:
        return str(self.carrier_id)
