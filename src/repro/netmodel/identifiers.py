"""Typed identifiers for network entities.

Using ``NewType``-style wrappers (implemented as small frozen dataclasses
with a string form) keeps carrier / eNodeB / market ids from being mixed
up in dictionaries and function signatures, which plain strings invite.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class MarketId:
    """Identifier of a market (a state-sized operational region)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("market index must be non-negative")

    def __str__(self) -> str:
        return f"market-{self.index:02d}"


@dataclass(frozen=True, order=True)
class ENodeBId:
    """Identifier of an eNodeB (base station) within a market."""

    market: MarketId
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("eNodeB index must be non-negative")

    def __str__(self) -> str:
        return f"{self.market}/enb-{self.index:05d}"


@dataclass(frozen=True, order=True)
class CarrierId:
    """Identifier of a carrier: an eNodeB face plus a slot on that face."""

    enodeb: ENodeBId
    face: int
    slot: int

    def __post_init__(self) -> None:
        if not 0 <= self.face <= 2:
            raise ValueError("face must be 0, 1 or 2 (three faces per eNodeB)")
        if self.slot < 0:
            raise ValueError("carrier slot must be non-negative")

    @property
    def market(self) -> MarketId:
        return self.enodeb.market

    def __str__(self) -> str:
        return f"{self.enodeb}/f{self.face}/c{self.slot}"
