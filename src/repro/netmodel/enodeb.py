"""eNodeB model: a base station with three 120-degree faces.

Section 2.1: an eNodeB divides its 360-degree coverage into three faces,
each face carrying multiple carriers on different frequency bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.netmodel.carrier import Carrier
from repro.netmodel.geo import GeoPoint
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId

FACES_PER_ENODEB = 3


@dataclass
class Face:
    """One 120-degree sector of an eNodeB."""

    index: int
    carriers: List[Carrier] = field(default_factory=list)

    def add_carrier(self, carrier: Carrier) -> None:
        if carrier.carrier_id.face != self.index:
            raise ValueError(
                f"carrier {carrier.carrier_id} belongs to face "
                f"{carrier.carrier_id.face}, not {self.index}"
            )
        self.carriers.append(carrier)

    def __len__(self) -> int:
        return len(self.carriers)


@dataclass
class ENodeB:
    """A base station: identifier, location and three faces of carriers."""

    enodeb_id: ENodeBId
    location: GeoPoint
    faces: List[Face] = field(default_factory=lambda: [Face(i) for i in range(FACES_PER_ENODEB)])

    @property
    def market(self) -> MarketId:
        return self.enodeb_id.market

    def add_carrier(self, carrier: Carrier) -> None:
        self.faces[carrier.carrier_id.face].add_carrier(carrier)

    def carriers(self) -> Iterator[Carrier]:
        for face in self.faces:
            yield from face.carriers

    def carrier_count(self) -> int:
        return sum(len(face) for face in self.faces)

    def carriers_by_id(self) -> Dict[CarrierId, Carrier]:
        return {c.carrier_id: c for c in self.carriers()}

    def __str__(self) -> str:
        return str(self.enodeb_id)
