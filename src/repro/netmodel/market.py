"""Market model.

A market is a collection of carriers managed by one group of engineers —
think of it as a US state (section 2.6).  The paper divides its 400K+
carriers into 28 markets; market-local engineering practice is precisely
what makes parameter values vary geographically and what the local
learner exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.netmodel.carrier import Carrier
from repro.netmodel.enodeb import ENodeB
from repro.netmodel.geo import GeoPoint
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId
from repro.types import Timezone


@dataclass
class Market:
    """One operational market: a named region containing eNodeBs."""

    market_id: MarketId
    name: str
    timezone: Timezone
    center: GeoPoint
    enodebs: List[ENodeB] = field(default_factory=list)

    def add_enodeb(self, enodeb: ENodeB) -> None:
        if enodeb.market != self.market_id:
            raise ValueError(
                f"eNodeB {enodeb.enodeb_id} belongs to market "
                f"{enodeb.market}, not {self.market_id}"
            )
        self.enodebs.append(enodeb)

    def carriers(self) -> Iterator[Carrier]:
        for enodeb in self.enodebs:
            yield from enodeb.carriers()

    def carrier_count(self) -> int:
        return sum(e.carrier_count() for e in self.enodebs)

    def enodeb_count(self) -> int:
        return len(self.enodebs)

    def enodebs_by_id(self) -> Dict[ENodeBId, ENodeB]:
        return {e.enodeb_id: e for e in self.enodebs}

    def carriers_by_id(self) -> Dict[CarrierId, Carrier]:
        return {c.carrier_id: c for c in self.carriers()}

    def __str__(self) -> str:
        return f"{self.market_id} ({self.name}, {self.timezone.value})"
