"""The process pool: one-time payload transfer and serial fallback.

Workers receive a single *payload* object (the network snapshot, the
configuration store, a fitted engine, ...) exactly once:

* **fork** (Linux default): the parent publishes the payload in this
  module's globals immediately before creating the pool; forked workers
  inherit the parent's address space, so no serialization happens at
  all.
* **spawn / forkserver**: the payload is pickled once and handed to
  every worker through the pool initializer — still once per *worker*,
  never once per task.

Task functions must be module-level (picklable by reference) and reach
the payload through :func:`get_payload`.  Per-payload worker state
(rebuilt views, sample caches) should be keyed on the payload's
*identity* — see :mod:`repro.parallel.fit` — so it survives for the
pool's lifetime and also behaves correctly under the serial fallback.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.parallel import shm

#: Environment override for the pool start method ("fork", "spawn",
#: "forkserver").  Unset, the pool prefers fork where available; forcing
#: "spawn" exercises the pickle + shared-memory payload transport on
#: platforms whose default is fork.
START_METHOD_ENV = "REPRO_POOL_START_METHOD"

#: Set to ``"0"`` to disable the adaptive serial/parallel cutover and
#: honor the requested ``--jobs`` literally (the pool test suite uses
#: this to exercise the worker path on single-core hosts).
ADAPTIVE_ENV = "REPRO_POOL_ADAPTIVE"

#: Minimum cheap work units (see ``work_hint``) a second worker must
#: bring along before standing up a pool is worth its setup cost.
MIN_WORK_PER_WORKER = 2048

T = TypeVar("T")
R = TypeVar("R")

#: The per-process shared payload.  In the master it is set transiently
#: (around a fork-context pool's lifetime, or a serial run); in workers
#: it is set once at startup and lives until the pool shuts down.
_PAYLOAD: Any = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return multiprocessing.cpu_count()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def effective_jobs(
    jobs: Optional[int], n_tasks: int, work_hint: Optional[int] = None
) -> int:
    """The worker count actually worth using — the adaptive cutover.

    ``--jobs`` is a *ceiling*, not a promise: a process pool wider than
    the machine loses to serial (the ``BENCH_parallel.json`` regression
    — 0.6x on a 1-core host), and fanning out a workload whose total
    work is smaller than the pool's setup cost loses no matter how many
    cores exist.  Three reductions apply, in order:

    * never more workers than tasks,
    * never more workers than ``os.cpu_count()`` — on a single-core
      host every ``--jobs`` value degrades to serial,
    * when the caller supplies ``work_hint`` (an estimate of cheap unit
      operations, e.g. LOO targets), never more workers than
      ``work_hint // MIN_WORK_PER_WORKER`` — tiny sweeps stay serial
      even on wide machines.

    ``REPRO_POOL_ADAPTIVE=0`` disables the last two reductions so tests
    can force the worker path regardless of the host.
    """
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, n_tasks) if n_tasks else 1
    if os.environ.get(ADAPTIVE_ENV, "1") == "0":
        return max(jobs, 1)
    cores = os.cpu_count() or 1
    jobs = min(jobs, cores)
    if work_hint is not None:
        jobs = min(jobs, max(work_hint // MIN_WORK_PER_WORKER, 1))
    return max(jobs, 1)


def get_payload() -> Any:
    """The shared payload, from a worker task function."""
    if _PAYLOAD is None:
        raise RuntimeError(
            "no worker payload is installed; task functions must run "
            "through repro.parallel.pool.run_tasks"
        )
    return _PAYLOAD


def _init_worker(payload_bytes: Optional[bytes] = None) -> None:
    """Pool initializer: install the payload in a spawned worker."""
    global _PAYLOAD
    if payload_bytes is not None:
        _PAYLOAD = pickle.loads(payload_bytes)


def _task_meta(started: float) -> dict:
    """Worker-side task metadata shipped back with each result.

    Workers run with metrics disabled (fork-inherited or fresh, the
    registry is never theirs to own), so the raw observations — when the
    worker *started* the task (wall clock, comparable to the master's
    submit time on the same host) and which worker ran it — ride back on
    the result for the master to turn into ``repro_pool_*`` metrics.
    """
    return {"started": started, "pid": os.getpid()}


def _run_traced(
    wrapped: Tuple[Optional[Tuple[str, str]], Callable[[T], R], T]
) -> Tuple[R, List[dict], dict]:
    """Worker-side shim: run one task under a span collector.

    The master ships its ``(trace_id, span_id)`` context with the task;
    the worker buffers every span it creates (re-rooted at that context
    via :func:`repro.obs.tracing.span_from_context`) and returns them as
    dicts alongside the result, for the master to
    :func:`~repro.obs.tracing.ingest` on the ordered merge.  Buffering
    also shields fork-inherited exporters (e.g. an open trace file)
    from duplicate worker-side writes.
    """
    started = time.time()
    context, fn, task = wrapped
    name = getattr(fn, "__name__", "task")
    # The shipped parent span lives in the master's process; mark the
    # boundary so trace assembly over a worker-only span set (a flight
    # dump cut mid-run) treats these as roots, not orphans.
    attrs = {"remote_parent": True} if context is not None else {}
    with tracing.collect() as collected:
        with tracing.span_from_context(context, f"pool.task:{name}", **attrs):
            result = fn(task)
    meta = _task_meta(started)
    return result, [span_obj.to_dict() for span_obj in collected], meta


def _run_timed(wrapped: Tuple[Callable[[T], R], T]) -> Tuple[R, dict]:
    """Worker-side shim for the untraced path: result + task metadata."""
    started = time.time()
    fn, task = wrapped
    return fn(task), _task_meta(started)


class _PoolMetrics:
    """Master-side aggregation of worker task metadata."""

    def __init__(self, mode: str, jobs: int = 0):
        registry_on = obs_metrics.enabled()
        self._tasks = (
            obs_metrics.counter(
                "repro_pool_tasks_total",
                "Pool tasks executed, by execution mode",
                labelnames=("mode",),
            )
            if registry_on
            else None
        )
        self._queue_wait = (
            obs_metrics.histogram(
                "repro_pool_queue_wait_seconds",
                "Submit-to-worker-start latency of pool tasks",
            )
            if registry_on
            else None
        )
        self._worker_tasks = (
            obs_metrics.counter(
                "repro_pool_worker_tasks_total",
                "Pool tasks executed, by worker pid",
                labelnames=("worker",),
            )
            if registry_on
            else None
        )
        self.mode = mode
        if jobs and registry_on:
            obs_metrics.gauge(
                "repro_pool_workers", "Workers in the most recent pool run"
            ).set(float(jobs))

    def task(self, submitted: Optional[float], meta: Optional[dict]) -> None:
        if self._tasks is None:
            return
        self._tasks.labels(mode=self.mode).inc()
        if meta is None:
            return
        if submitted is not None:
            self._queue_wait.observe(max(meta["started"] - submitted, 0.0))
        self._worker_tasks.labels(worker=str(meta["pid"])).inc()


def _run_serial(
    payload: Any, fn: Callable[[T], R], tasks: Sequence[T]
) -> List[R]:
    """Run the task functions in-process against the same payload."""
    global _PAYLOAD
    previous = _PAYLOAD
    _PAYLOAD = payload
    try:
        return [fn(task) for task in tasks]
    finally:
        _PAYLOAD = previous


def _start_method() -> Optional[str]:
    """The pool start method: the env override when valid, else fork
    where available, else the platform default (``None``)."""
    available = multiprocessing.get_all_start_methods()
    requested = os.environ.get(START_METHOD_ENV)
    if requested:
        if requested in available:
            return requested
        warnings.warn(
            f"{START_METHOD_ENV}={requested!r} is not available on this "
            f"platform (choices: {available}); using the default",
            RuntimeWarning,
            stacklevel=3,
        )
    if "fork" in available:
        return "fork"
    return None


def _make_executor(n_workers: int) -> Tuple[ProcessPoolExecutor, Optional[List]]:
    """Build the pool; returns ``(executor, shm_manifest)``.

    A non-``None`` manifest lists the shared-memory segments created
    while pickling the payload (spawn/forkserver only); the caller must
    :func:`repro.parallel.shm.release` it after the pool shuts down.
    """
    method = _start_method()
    if method == "fork":
        # Workers inherit _PAYLOAD from the parent's address space;
        # run_tasks publishes it before this call.
        return (
            ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=multiprocessing.get_context("fork"),
            ),
            None,
        )
    manifest: Optional[List] = None
    if shm.SHM_AVAILABLE:
        # Shm-aware payload members (the columnar snapshot) divert
        # their large arrays into shared segments during this pickle;
        # workers attach them zero-copy inside _init_worker's loads.
        with shm.export_session() as session:
            payload_bytes = pickle.dumps(_PAYLOAD, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = session or None
    else:  # pragma: no cover - platform without shared memory
        payload_bytes = pickle.dumps(_PAYLOAD, protocol=pickle.HIGHEST_PROTOCOL)
    context = multiprocessing.get_context(method) if method else None
    try:
        executor = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(payload_bytes,),
        )
    except BaseException:
        if manifest is not None:
            shm.release(manifest)
        raise
    return executor, manifest


def run_tasks(
    payload: Any,
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    work_hint: Optional[int] = None,
) -> List[R]:
    """Run ``fn`` over ``tasks`` against a shared payload.

    Results come back in task order regardless of completion order, so
    callers can merge deterministically.  The requested ``jobs`` is a
    ceiling: :func:`effective_jobs` lowers it to what the host and the
    workload (``work_hint``, total cheap work units) can actually use,
    so ``--jobs N`` never loses to serial.  With an effective worker
    count of 1, a single task, or a pool that cannot be created or
    breaks mid-run, the tasks run serially in-process — same functions,
    same payload, same results.
    """
    tasks = list(tasks)
    jobs = effective_jobs(jobs, len(tasks), work_hint)
    if jobs == 1 or len(tasks) <= 1:
        # Serial tasks run in-process, so their spans nest naturally
        # under the caller's current span — no propagation needed.
        with tracing.span("pool.run", mode="serial", tasks=len(tasks)):
            metrics = _PoolMetrics("serial")
            for _ in tasks:
                metrics.task(None, None)
            return _run_serial(payload, fn, tasks)

    global _PAYLOAD
    previous = _PAYLOAD
    _PAYLOAD = payload
    try:
        with tracing.span(
            "pool.run", mode="pool", tasks=len(tasks), jobs=jobs
        ):
            manifest: Optional[List] = None
            try:
                executor, manifest = _make_executor(min(jobs, len(tasks)))
            except (OSError, ValueError, PermissionError) as exc:
                warnings.warn(
                    f"process pool unavailable ({exc}); running serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return [fn(task) for task in tasks]
            try:
                metrics = _PoolMetrics("pool", jobs=jobs)
                if tracing.active():
                    # Ship the master's span context with each task;
                    # workers return their spans with the result and the
                    # ordered merge re-parents them into this trace.
                    context = tracing.current_context()
                    futures = [
                        (
                            time.time(),
                            executor.submit(_run_traced, (context, fn, task)),
                        )
                        for task in tasks
                    ]
                    results: List[R] = []
                    for submitted, future in futures:
                        result, worker_spans, meta = future.result()
                        tracing.ingest(worker_spans)
                        metrics.task(submitted, meta)
                        results.append(result)
                    return results
                futures = [
                    (time.time(), executor.submit(_run_timed, (fn, task)))
                    for task in tasks
                ]
                results = []
                for submitted, future in futures:
                    result, meta = future.result()
                    metrics.task(submitted, meta)
                    results.append(result)
                return results
            except (BrokenProcessPool, OSError) as exc:
                warnings.warn(
                    f"process pool failed ({exc}); re-running serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return [fn(task) for task in tasks]
            finally:
                executor.shutdown(wait=True)
                if manifest is not None:
                    # Workers have attached (or died); the master can
                    # drop its segments now.
                    shm.release(manifest)
    finally:
        _PAYLOAD = previous
