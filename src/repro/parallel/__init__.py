"""Process-pool execution layer for engine fitting and LOO evaluation.

The layer fans embarrassingly-parallel work — per-parameter fits,
per-parameter leave-one-out folds — across a pool of worker processes
while keeping every result byte-identical to the serial path:

* the shared snapshot payload crosses the process boundary **once per
  worker**, not once per task (fork start methods inherit it for free;
  spawn pickles it through the pool initializer);
* all randomness is decided in the master (sampled fold indices) or
  drawn from per-parameter derived RNG streams (attribute selection),
  so results cannot depend on worker count or scheduling;
* results are merged in task submission order.

``jobs=1`` — or any failure to stand a pool up — runs the exact same
task functions in-process.  The requested ``--jobs`` is a ceiling, not
a promise: :func:`~repro.parallel.pool.effective_jobs` lowers it to
what the host (``os.cpu_count()``) and the workload (``work_hint``)
can profitably use, so asking for parallelism never costs more than
serial (set ``REPRO_POOL_ADAPTIVE=0`` to disable the cutover).
"""

from repro.parallel.pool import effective_jobs, resolve_jobs, run_tasks
from repro.parallel.fit import fit_parameter_models
from repro.parallel.evaluate import parallel_loo_accuracy

__all__ = [
    "effective_jobs",
    "resolve_jobs",
    "run_tasks",
    "fit_parameter_models",
    "parallel_loo_accuracy",
]
