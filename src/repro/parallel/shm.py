"""Shared-memory segments for zero-copy pool payload transport.

Spawned pool workers normally receive the payload as one pickle blob
(:mod:`repro.parallel.pool`).  Large numpy buffers — the columnar
snapshot's encoded attribute matrices — do not need to travel through
that blob at all: the master copies them once into
``multiprocessing.shared_memory`` segments and pickles only small
*descriptors* (segment name, dtype, shape); each worker attaches the
segment and maps the arrays back as read-only views without copying.

The protocol is deliberately explicit:

* The master wraps payload pickling in :func:`export_session`.  Only
  inside that session do shm-aware objects (``ColumnarSnapshot``)
  replace their arrays with descriptors; everywhere else they pickle
  as plain arrays, which keeps artifacts, caches and the serial path
  oblivious to this module.
* Every segment created during the session lands in the session
  manifest.  The master calls :func:`release` after the pool has shut
  down — workers hold their own attachments open, so unlinking after
  shutdown is safe on every platform.
* Attach-side segments are unregistered from the
  ``resource_tracker`` (it would otherwise unlink them when the
  *worker* exits, racing the master and other workers — fixed upstream
  only in Python 3.13's ``track=False``).

When shared memory is unavailable (platform, permissions, exhausted
``/dev/shm``), everything silently falls back to the plain pickle path.

A second, even cheaper transport rides on the same layout type: when the
snapshot's arrays are views over a persisted store file
(:mod:`repro.store`), the payload ships only ``(path, layouts)`` and the
worker re-maps the file with :func:`map_file` — no copy on either side,
and the page cache is shared across every process on the host.
"""

from __future__ import annotations

import mmap as _mmap

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    SHM_AVAILABLE = False

#: Manifest of segments created during the current export session, or
#: ``None`` when no session is active (the common case).
_ACTIVE: Optional[List["shared_memory.SharedMemory"]] = None


@dataclass(frozen=True)
class SegmentLayout:
    """Where one array lives inside a shared segment."""

    dtype: str
    shape: Tuple[int, ...]
    offset: int


def exporting() -> bool:
    """Whether an export session is active (and shm is usable)."""
    return SHM_AVAILABLE and _ACTIVE is not None


@contextmanager
def export_session() -> Iterator[List]:
    """Collect the shared-memory segments created while pickling.

    Yields the manifest; the caller must :func:`release` it once the
    consumers (pool workers) are guaranteed to have attached — in
    practice, after ``executor.shutdown(wait=True)``.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("shared-memory export sessions do not nest")
    manifest: List = []
    _ACTIVE = manifest
    try:
        yield manifest
    finally:
        _ACTIVE = None


def create_segment(nbytes: int):
    """A new shared segment registered with the active session.

    Returns ``None`` when no session is active or the segment cannot be
    created — callers fall back to pickling their arrays inline.
    """
    if not exporting():
        return None
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
    except OSError:  # /dev/shm full, permissions, ...
        return None
    _ACTIVE.append(segment)
    obs_metrics.counter(
        "repro_columnar_shm_bytes_total",
        "Bytes exported through shared-memory payload segments",
    ).inc(float(nbytes))
    return segment


def attach_segment(name: str):
    """Attach an existing segment by name (worker side).

    The attachment is unregistered from the resource tracker so worker
    exit does not unlink a segment the master still owns.
    """
    if not SHM_AVAILABLE:  # pragma: no cover - guarded by callers
        raise RuntimeError("shared memory is not available on this platform")
    segment = shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - tracker internals vary across versions
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    return segment


def write_array(segment, array: np.ndarray, offset: int) -> SegmentLayout:
    """Copy ``array`` into ``segment`` at ``offset``; returns its layout."""
    array = np.ascontiguousarray(array)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset)
    view[...] = array
    return SegmentLayout(dtype=array.dtype.str, shape=tuple(array.shape), offset=offset)


def read_array(segment, layout: SegmentLayout) -> np.ndarray:
    """A read-only array view over ``segment`` described by ``layout``."""
    array = np.ndarray(
        layout.shape,
        dtype=np.dtype(layout.dtype),
        buffer=segment.buf,
        offset=layout.offset,
    )
    array.flags.writeable = False
    return array


def aligned(offset: int, alignment: int = 16) -> int:
    """Round ``offset`` up to the next ``alignment`` boundary."""
    return (offset + alignment - 1) // alignment * alignment


class MappedFile:
    """A read-only memory map of a snapshot-store file.

    Arrays read from it are zero-copy views over the page cache; keep
    the object referenced for as long as any view is alive (the owning
    snapshot holds it through its backing record).
    """

    __slots__ = ("path", "_file", "_map")

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "rb")
        try:
            self._map = _mmap.mmap(
                self._file.fileno(), 0, access=_mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._file.close()
            raise

    def size(self) -> int:
        return self._map.size()

    def read(self, layout: SegmentLayout) -> np.ndarray:
        """A read-only zero-copy view over the mapped file."""
        count = 1
        for dim in layout.shape:
            count *= int(dim)
        array = np.frombuffer(
            self._map,
            dtype=np.dtype(layout.dtype),
            count=count,
            offset=layout.offset,
        )
        return array.reshape(layout.shape)

    def close(self) -> None:
        try:
            self._map.close()
        finally:
            self._file.close()


def map_file(path: str) -> MappedFile:
    """Map a store file read-only (service cold start, worker attach)."""
    mapped = MappedFile(path)
    obs_metrics.counter(
        "repro_store_mmap_attach_total",
        "Read-only mmap attachments of snapshot-store files",
    ).inc(1.0)
    obs_metrics.counter(
        "repro_store_mmap_bytes_total",
        "Bytes mapped zero-copy from snapshot-store files",
    ).inc(float(mapped.size()))
    return mapped


@dataclass
class FileBacking:
    """Ties a snapshot's arrays to the store file they are mapped from.

    ``ColumnarSnapshot.__getstate__`` consults this record: while every
    buffer is still the mapped view created at open time, pool payloads
    carry only ``(path, layouts)`` and workers re-map the file instead
    of copying arrays through a shared-memory segment.
    """

    path: str
    mapped: MappedFile
    layouts: Dict[Tuple[str, Optional[str]], SegmentLayout] = field(
        default_factory=dict
    )
    arrays: Dict[Tuple[str, Optional[str]], np.ndarray] = field(
        default_factory=dict
    )


def release(manifest: List, unlink: bool = True) -> None:
    """Close (and by default unlink) every segment in a manifest."""
    for segment in manifest:
        try:
            segment.close()
        except OSError:  # pragma: no cover
            pass
        if unlink:
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
    manifest.clear()
