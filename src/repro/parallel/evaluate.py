"""Parallel leave-one-out evaluation.

The master decides *what* to evaluate — which parameters, which sampled
target indices (so the subsampling RNG never runs in a worker) — and
fans contiguous index chunks out across the pool.  The payload is the
fitted engine; each worker rebuilds its learning view once and caches
per-parameter sample sets for the pool's lifetime (sample rows stay
lazy — the LOO sweep votes from the engine's stored cells, so the raw
attribute tuples are never materialized).  Under a *spawn* pool the
engine's columnar snapshot travels through shared memory rather than
the payload pickle (:mod:`repro.parallel.shm`).  Chunks come back in
submission order and merge into the same
:class:`~repro.eval.runner.LocalVsGlobalResult` the serial sweep
produces: identical accuracies, identical mismatch lists in identical
order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.parallel.pool import effective_jobs, get_payload, run_tasks

# Per-process worker state keyed on payload identity (see repro.parallel.fit).
_STATE: Dict[str, object] = {"payload": None, "view": None, "samples": None}


def split_evenly(items: Sequence, n_chunks: int) -> List[list]:
    """Contiguous, order-preserving chunks with sizes differing by <= 1."""
    items = list(items)
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _worker_samples(engine, parameter, market_id):
    from repro.eval.dataset import LearningView

    if _STATE["payload"] is not engine:
        _STATE["payload"] = engine
        _STATE["view"] = LearningView(engine.network, engine.store)
        _STATE["samples"] = {}
    cache = _STATE["samples"]
    key = (parameter, market_id)
    if key not in cache:
        cache[key] = _STATE["view"].samples(parameter, market_id)
    return cache[key]


def _loo_task(task):
    from repro.eval.runner import evaluate_loo_chunk

    parameter, market_id, indices, scopes = task
    engine = get_payload()
    samples = _worker_samples(engine, parameter, market_id)
    return evaluate_loo_chunk(engine, parameter, samples, list(indices), scopes)


def parallel_loo_accuracy(
    engine,
    plan: Sequence[Tuple[str, Sequence[int]]],
    market_id,
    scopes: Tuple[str, ...],
    jobs: int,
):
    """Evaluate a LOO plan — ``[(parameter, target indices), ...]`` with
    indices already sampled by the master — across a process pool."""
    from repro.eval.runner import LocalVsGlobalResult

    # The hint is the total LOO target count: each target is one cheap
    # vote, so small sweeps collapse to serial before chunking happens
    # and the chunks match the workers that will actually exist.
    total_targets = sum(len(indices) for _parameter, indices in plan)
    jobs = effective_jobs(jobs, total_targets, work_hint=total_targets)
    tasks = []
    for parameter, indices in plan:
        for chunk in split_evenly(indices, jobs):
            tasks.append((parameter, market_id, tuple(chunk), tuple(scopes)))
    outcomes = run_tasks(engine, _loo_task, tasks, jobs=jobs)
    obs_metrics.counter(
        "repro_loo_targets_total",
        "Leave-one-out targets evaluated through the parallel sweep",
    ).inc(float(total_targets))

    result = LocalVsGlobalResult()
    totals: Dict[str, Dict[str, int]] = {
        parameter: {scope: 0 for scope in scopes} for parameter, _ in plan
    }
    for (parameter, _market, _chunk, _scopes), (hits, mismatches) in zip(
        tasks, outcomes
    ):
        for scope in scopes:
            totals[parameter][scope] += hits[scope]
            if scope == "local":
                result.mismatches_local.extend(mismatches[scope])
            else:
                result.mismatches_global.extend(mismatches[scope])
    for parameter, indices in plan:
        n = len(indices)
        if "local" in scopes:
            result.parameter_accuracy_local[parameter] = (
                totals[parameter]["local"] / n
            )
        if "global" in scopes:
            result.parameter_accuracy_global[parameter] = (
                totals[parameter]["global"] / n
            )
        result.evaluated += n
    return result
