"""Parallel per-parameter engine fitting.

Each worker rebuilds one :class:`~repro.core.auric.AuricEngine` over the
shared snapshot payload (once per pool lifetime) and fits parameters
from it.  Determinism holds by construction: attribute-selection
subsampling draws from a per-parameter derived RNG stream
(``derive(seed, "fit-sample:<name>")``), so a parameter's fitted model
never depends on which worker fit it or what else that worker fit
before.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.parallel.pool import get_payload, run_tasks

# Per-process worker state, keyed on payload identity so it is rebuilt
# exactly once per pool lifetime (and never leaks across payloads when
# the serial fallback runs several calls in one process).
_STATE: Dict[str, object] = {"payload": None, "engine": None}


def _worker_engine():
    from repro.core.auric import AuricEngine

    payload = get_payload()
    if _STATE["payload"] is not payload:
        network, store, config, _ = payload
        _STATE["payload"] = payload
        _STATE["engine"] = AuricEngine(network, store, config)
    return _STATE["engine"]


def _fit_task(parameter: str):
    engine = _worker_engine()
    vote_weights = get_payload()[3]
    spec = engine.catalog.spec(parameter)
    return parameter, engine._fit_parameter(spec, vote_weights)


def fit_parameter_models(
    network,
    store,
    config,
    parameters: Sequence[str],
    vote_weights: Optional[Dict[Hashable, float]] = None,
    jobs: int = 1,
) -> Dict[str, object]:
    """Fit dependency models for many parameters across a process pool.

    Returns ``{parameter: _ParameterModel}`` in input order, identical
    to fitting the same parameters serially on one engine.
    """
    payload = (network, store, config, vote_weights)
    results = run_tasks(payload, _fit_task, list(parameters), jobs=jobs)
    return dict(results)
