"""Parallel per-parameter engine fitting.

Each worker rebuilds one :class:`~repro.core.auric.AuricEngine` over the
shared snapshot payload (once per pool lifetime) and fits parameters
from it.  Determinism holds by construction: attribute-selection
subsampling draws from a per-parameter derived RNG stream
(``derive(seed, "fit-sample:<name>")``), so a parameter's fitted model
never depends on which worker fit it or what else that worker fit
before.

When the master has already encoded the snapshot into a
:class:`~repro.core.columnar.ColumnarSnapshot`, it rides along in the
payload — inherited for free under *fork*, and shipped through one
shared-memory segment (zero-copy attach, see :mod:`repro.parallel.shm`)
instead of the payload pickle under *spawn* — so no worker re-encodes.
A snapshot opened from an mmap :class:`repro.store.SnapshotStore` goes
one better: its pickle is just the store *path* plus blob layouts, and
every worker re-maps the same file read-only (page cache shared across
the pool) without any segment copy at all.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.parallel.pool import get_payload, run_tasks

# Per-process worker state, keyed on payload identity so it is rebuilt
# exactly once per pool lifetime (and never leaks across payloads when
# the serial fallback runs several calls in one process).
_STATE: Dict[str, object] = {"payload": None, "engine": None}


def _worker_engine():
    from repro.core.auric import AuricEngine

    payload = get_payload()
    if _STATE["payload"] is not payload:
        network, store, config, _, columnar = payload
        _STATE["payload"] = payload
        engine = AuricEngine(network, store, config)
        if columnar is not None:
            engine.attach_columnar(columnar)
        _STATE["engine"] = engine
    return _STATE["engine"]


def _fit_task(parameter: str):
    engine = _worker_engine()
    vote_weights = get_payload()[3]
    spec = engine.catalog.spec(parameter)
    model = engine._fit_parameter(spec, vote_weights)
    # Worker registries are disabled, so phase timings ride back on the
    # task result for the master to observe (see fit-pipeline metrics).
    return parameter, model, engine._take_fit_phases()


def fit_parameter_models(
    network,
    store,
    config,
    parameters: Sequence[str],
    vote_weights: Optional[Dict[Hashable, float]] = None,
    jobs: int = 1,
    columnar=None,
    phase_sink: Optional[Dict] = None,
) -> Dict[str, object]:
    """Fit dependency models for many parameters across a process pool.

    Returns ``{parameter: _ParameterModel}`` in input order, identical
    to fitting the same parameters serially on one engine.  ``columnar``
    optionally carries the master's encoded snapshot to the workers.
    ``phase_sink``, when given, accumulates the workers' per-parameter
    fit-phase wall clock (``{(phase, parameter): seconds}``) so the
    master can surface ``repro_fit_phase_seconds`` — worker processes
    run with metrics disabled and cannot observe it themselves.
    """
    if columnar is not None and getattr(columnar, "_backing", None) is not None:
        obs_metrics.counter(
            "repro_store_pool_reference_total",
            "Pool fits whose snapshot shipped as an mmap store reference",
        ).inc(1.0)
    payload = (network, store, config, vote_weights, columnar)
    results = run_tasks(payload, _fit_task, list(parameters), jobs=jobs)
    fitted = {}
    for parameter, model, phases in results:
        fitted[parameter] = model
        if phase_sink is not None:
            for key, seconds in phases.items():
                phase_sink[key] = phase_sink.get(key, 0.0) + seconds
    return fitted
