"""Memory-mapped binary :class:`SnapshotStore`.

One file holds the whole columnar snapshot:

.. code-block:: text

    bytes 0..8    magic  b"AURSTOR1"
    bytes 8..16   little-endian uint64: header length H
    bytes 16..16+H  header JSON (utf-8)
    (zero padding to the next 16-byte boundary)
    array blobs, each at a 16-byte-aligned offset

The header carries everything non-numeric — carrier ids, attribute
vocabularies, per-parameter metadata — plus a layout entry
``[field, parameter, dtype, shape, relative_offset]`` per array.
Offsets are relative to the (alignment-rounded) end of the header, so
the header can be rendered before the blob positions are final.

:meth:`MmapSnapshotStore.load` maps the file with ``mmap.ACCESS_READ``
and returns a snapshot whose arrays are **read-only zero-copy views**
over the page cache: cold start is one open + header parse, independent
of carrier count, and the kernel shares the pages across every process
that maps the same file.  The snapshot keeps a
:class:`repro.parallel.shm.FileBacking` record so pool payloads ship as
``(path, layouts)`` references instead of array copies.

Writes are deterministic — parameters sorted by name, canonical JSON —
so persisting an unchanged snapshot reproduces the file byte for byte
(asserted by the artifact round-trip suite).
"""

from __future__ import annotations

import json
import os
import struct
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import ColumnarSnapshot, ParameterColumns
from repro.parallel import shm
from repro.store.base import (
    SnapshotStore,
    SnapshotStoreError,
    clear_stale,
    mark_stale,
    read_stale,
    record_invalidate,
    record_open,
    record_persist,
    remove_file,
)

MAGIC = b"AURSTOR1"
FORMAT_VERSION = 1
_PREFIX = len(MAGIC) + 8  # magic + header-length word


def _snapshot_arrays(
    snapshot: ColumnarSnapshot,
) -> List[Tuple[str, Optional[str], np.ndarray]]:
    """Every buffer in the file's canonical (deterministic) order."""
    arrays: List[Tuple[str, Optional[str], np.ndarray]] = [
        ("codes", None, snapshot.codes)
    ]
    for name in sorted(snapshot.parameters):
        columns = snapshot.parameters[name]
        arrays.append(("sources", name, columns.sources))
        if columns.neighbors is not None:
            arrays.append(("neighbors", name, columns.neighbors))
        arrays.append(("label_codes", name, columns.label_codes))
    return arrays


class MmapSnapshotStore(SnapshotStore):
    kind = "mmap"

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # -- write ------------------------------------------------------------

    def persist(self, snapshot: ColumnarSnapshot) -> Dict:
        from repro.dataio.keys import carrier_key_to_str

        started = time.perf_counter()
        arrays = _snapshot_arrays(snapshot)
        layouts = []
        offset = 0
        for field, name, array in arrays:
            offset = shm.aligned(offset)
            layouts.append(
                [field, name, array.dtype.str, list(array.shape), offset]
            )
            offset += array.nbytes
        header = {
            "kind": "auric-columnar-store",
            "format": FORMAT_VERSION,
            "carrier_ids": [
                carrier_key_to_str(c) for c in snapshot.carrier_ids
            ],
            "vocabs": [list(vocab) for vocab in snapshot.vocabs],
            "parameters": [
                {
                    "parameter": name,
                    "pairwise": snapshot.parameters[name].pairwise,
                    "label_vocab": list(snapshot.parameters[name].label_vocab),
                }
                for name in sorted(snapshot.parameters)
            ],
            "layouts": layouts,
        }
        header_bytes = json.dumps(
            header, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        data_start = shm.aligned(_PREFIX + len(header_bytes))
        tmp = f"{self.path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<Q", len(header_bytes)))
            fh.write(header_bytes)
            for (_, _, array), layout in zip(arrays, layouts):
                target = data_start + layout[4]
                fh.write(b"\x00" * (target - fh.tell()))
                fh.write(np.ascontiguousarray(array).tobytes())
        os.replace(tmp, self.path)
        clear_stale(self.path)
        nbytes = os.path.getsize(self.path)
        record_persist(self.kind, time.perf_counter() - started, nbytes)
        return {
            "kind": self.kind,
            "path": self.path,
            "carriers": len(snapshot.carrier_ids),
            "parameters": sorted(snapshot.parameters),
            "bytes": nbytes,
        }

    # -- read -------------------------------------------------------------

    def _read_header(self) -> Tuple[Dict, int]:
        with open(self.path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise SnapshotStoreError(
                    f"{self.path} is not an auric mmap store (bad magic)"
                )
            (header_len,) = struct.unpack("<Q", fh.read(8))
            try:
                header = json.loads(fh.read(header_len).decode("utf-8"))
            except ValueError as exc:
                raise SnapshotStoreError(
                    f"corrupt store header in {self.path}: {exc}"
                ) from exc
        if header.get("format", 0) > FORMAT_VERSION:
            raise SnapshotStoreError(
                f"{self.path} uses store format {header.get('format')}; "
                f"this build reads up to {FORMAT_VERSION}"
            )
        return header, shm.aligned(_PREFIX + header_len)

    def load(self) -> Optional[ColumnarSnapshot]:
        from repro.dataio.keys import carrier_key_from_str

        if not self.exists():
            return None
        started = time.perf_counter()
        stale = read_stale(self.path)
        header, data_start = self._read_header()
        mapped = shm.map_file(self.path)
        layouts: Dict[Tuple[str, Optional[str]], shm.SegmentLayout] = {}
        buffers: Dict[Tuple[str, Optional[str]], np.ndarray] = {}
        for field, name, dtype, shape, rel_offset in header["layouts"]:
            layout = shm.SegmentLayout(
                dtype=dtype, shape=tuple(shape), offset=data_start + rel_offset
            )
            layouts[(field, name)] = layout
            buffers[(field, name)] = mapped.read(layout)
        parameters: Dict[str, ParameterColumns] = {}
        for meta in header["parameters"]:
            name = meta["parameter"]
            if name in stale:
                continue
            parameters[name] = ParameterColumns(
                parameter=name,
                pairwise=bool(meta["pairwise"]),
                sources=buffers[("sources", name)],
                neighbors=buffers.get(("neighbors", name)),
                label_codes=buffers[("label_codes", name)],
                label_vocab=list(meta["label_vocab"]),
            )
        snapshot = ColumnarSnapshot(
            carrier_ids=[
                carrier_key_from_str(t) for t in header["carrier_ids"]
            ],
            codes=buffers[("codes", None)],
            vocabs=[list(vocab) for vocab in header["vocabs"]],
            parameters=parameters,
        )
        snapshot._backing = shm.FileBacking(
            path=self.path, mapped=mapped, layouts=layouts, arrays=buffers
        )
        record_open(self.kind, time.perf_counter() - started, mapped.size())
        return snapshot

    # -- lifecycle --------------------------------------------------------

    def invalidate(self, parameter: Optional[str] = None) -> None:
        if parameter is None:
            remove_file(self.path)
        elif self.exists():
            mark_stale(self.path, parameter)
        record_invalidate(self.kind)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def describe(self) -> Dict:
        info: Dict = {"kind": self.kind, "path": self.path}
        if self.exists():
            info["bytes"] = os.path.getsize(self.path)
        return info
