"""JSON-file :class:`SnapshotStore`.

The snapshot's existing ``to_dict``/``from_dict`` round-trip written to
one human-inspectable file with an atomic replace.  Loads materialize
plain arrays (no mmap) — use :mod:`repro.store.mmapfile` when cold-start
time matters; this backend exists for debuggability and as the portable
interchange format.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.core.columnar import ColumnarSnapshot
from repro.store.base import (
    SnapshotStore,
    clear_stale,
    mark_stale,
    read_stale,
    record_invalidate,
    record_open,
    record_persist,
    remove_file,
)


class FileSnapshotStore(SnapshotStore):
    kind = "file"

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def persist(self, snapshot: ColumnarSnapshot) -> Dict:
        started = time.perf_counter()
        data = json.dumps(snapshot.to_dict(), indent=2, sort_keys=True)
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
        os.replace(tmp, self.path)
        clear_stale(self.path)
        nbytes = len(data.encode("utf-8"))
        record_persist(self.kind, time.perf_counter() - started, nbytes)
        return {
            "kind": self.kind,
            "path": self.path,
            "carriers": len(snapshot.carrier_ids),
            "parameters": sorted(snapshot.parameters),
            "bytes": nbytes,
        }

    def load(self) -> Optional[ColumnarSnapshot]:
        if not self.exists():
            return None
        started = time.perf_counter()
        stale = read_stale(self.path)
        with open(self.path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        snapshot = ColumnarSnapshot.from_dict(payload)
        for name in stale:
            snapshot.parameters.pop(name, None)
        record_open(
            self.kind,
            time.perf_counter() - started,
            os.path.getsize(self.path),
        )
        return snapshot

    def invalidate(self, parameter: Optional[str] = None) -> None:
        if parameter is None:
            remove_file(self.path)
        elif self.exists():
            mark_stale(self.path, parameter)
        record_invalidate(self.kind)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def describe(self) -> Dict:
        info: Dict = {"kind": self.kind, "path": self.path}
        if self.exists():
            info["bytes"] = os.path.getsize(self.path)
        return info
