"""``repro.store`` — unified columnar-snapshot persistence.

One :class:`~repro.store.base.SnapshotStore` protocol consumed by serve
artifacts (save/load), the refresher (persist/invalidate after refits)
and the pool transport (zero-copy re-map of the store file); see
:mod:`repro.store.base` for the full rationale and the per-backend
modules for formats.
"""

from __future__ import annotations

from typing import Optional

from repro.store.base import STORE_KINDS, SnapshotStore, SnapshotStoreError
from repro.store.jsonfile import FileSnapshotStore
from repro.store.memory import MemorySnapshotStore
from repro.store.mmapfile import MmapSnapshotStore


def open_store(kind: str, path: Optional[str] = None) -> SnapshotStore:
    """Construct the store backend named by ``AuricConfig.store``.

    ``memory`` needs no path; ``file`` and ``mmap`` persist at ``path``.
    """
    if kind == "memory":
        return MemorySnapshotStore()
    if path is None:
        raise SnapshotStoreError(
            f"snapshot store kind {kind!r} requires a path"
        )
    if kind == "file":
        return FileSnapshotStore(path)
    if kind == "mmap":
        return MmapSnapshotStore(path)
    raise SnapshotStoreError(
        f"unknown snapshot store kind {kind!r}; expected one of {STORE_KINDS}"
    )


__all__ = [
    "STORE_KINDS",
    "SnapshotStore",
    "SnapshotStoreError",
    "MemorySnapshotStore",
    "FileSnapshotStore",
    "MmapSnapshotStore",
    "open_store",
]
