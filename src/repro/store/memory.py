"""In-process :class:`SnapshotStore` (the default backend).

Holds a reference to the persisted snapshot and hands out shallow views
of it — the arrays are shared, so ``load`` is zero-copy by construction.
Nothing touches the filesystem; this is the behaviour every caller had
before external stores existed.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from repro.core.columnar import ColumnarSnapshot
from repro.store.base import (
    SnapshotStore,
    record_invalidate,
    record_open,
    record_persist,
)


class MemorySnapshotStore(SnapshotStore):
    kind = "memory"

    def __init__(self) -> None:
        self._snapshot: Optional[ColumnarSnapshot] = None
        self._stale: Set[str] = set()

    def persist(self, snapshot: ColumnarSnapshot) -> Dict:
        started = time.perf_counter()
        self._snapshot = snapshot
        self._stale = set()
        nbytes = sum(array.nbytes for _, _, array in snapshot._arrays())
        record_persist(self.kind, time.perf_counter() - started, nbytes)
        return {
            "kind": self.kind,
            "carriers": len(snapshot.carrier_ids),
            "parameters": sorted(snapshot.parameters),
            "bytes": nbytes,
        }

    def load(self) -> Optional[ColumnarSnapshot]:
        started = time.perf_counter()
        held = self._snapshot
        if held is None:
            return None
        view = ColumnarSnapshot(
            carrier_ids=held.carrier_ids,
            codes=held.codes,
            vocabs=held.vocabs,
            parameters={
                name: columns
                for name, columns in held.parameters.items()
                if name not in self._stale
            },
        )
        nbytes = sum(array.nbytes for _, _, array in view._arrays())
        record_open(self.kind, time.perf_counter() - started, nbytes)
        return view

    def invalidate(self, parameter: Optional[str] = None) -> None:
        if parameter is None:
            self._snapshot = None
            self._stale = set()
        else:
            self._stale.add(parameter)
        record_invalidate(self.kind)

    def exists(self) -> bool:
        return self._snapshot is not None

    def describe(self) -> Dict:
        return {"kind": self.kind, "held": self._snapshot is not None}
