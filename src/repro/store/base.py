"""The unified :class:`SnapshotStore` persistence surface.

Before this package, three layers each had an ad-hoc way of moving a
:class:`~repro.core.columnar.ColumnarSnapshot` around: serve artifacts
inlined it as JSON, the refresher invalidated it through engine
internals, and the process pool copied it into shared memory.  A
``SnapshotStore`` is the one surface they all consume now:

* :meth:`SnapshotStore.persist` — write the current snapshot out.
* :meth:`SnapshotStore.load` — open what was persisted (``None`` when
  nothing is there), zero-copy where the backend supports it.
* :meth:`SnapshotStore.invalidate` — mark one parameter's columns (or
  the whole snapshot) stale so the next load re-encodes just those.
* :meth:`SnapshotStore.exists` — whether a persisted snapshot is
  available at all.

Three implementations ship: in-memory (:mod:`repro.store.memory`, the
default — nothing leaves the process), JSON file
(:mod:`repro.store.jsonfile`, human-inspectable), and the binary mmap
store (:mod:`repro.store.mmapfile`) whose :meth:`load` maps the file
read-only and hands out zero-copy array views — service cold start
becomes an ``open`` + ``mmap`` instead of a full re-encode, and pool
workers re-map the same file instead of receiving copies.

Backends are selected per engine through ``AuricConfig.store`` /
``--store`` and constructed with :func:`repro.store.open_store`.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from typing import Dict, Optional, Set

from repro.obs import metrics as obs_metrics

#: Backend names accepted by ``open_store`` / ``AuricConfig.store``.
STORE_KINDS = ("memory", "file", "mmap")


class SnapshotStoreError(Exception):
    """A snapshot store could not persist, open or invalidate."""


class SnapshotStore(ABC):
    """One open/load/persist/invalidate surface for columnar snapshots."""

    kind: str = "abstract"

    @abstractmethod
    def persist(self, snapshot) -> Dict:
        """Write ``snapshot`` out; returns a summary dict (kind, sizes)."""

    @abstractmethod
    def load(self):
        """The persisted snapshot minus any stale parameters, or ``None``.

        Backends that support it return arrays as zero-copy views over
        the persisted bytes; callers must treat them as immutable.
        """

    @abstractmethod
    def invalidate(self, parameter: Optional[str] = None) -> None:
        """Mark one parameter (or, with ``None``, everything) stale.

        A stale parameter is dropped from subsequent :meth:`load`
        results, so the consumer re-encodes exactly those columns.
        """

    @abstractmethod
    def exists(self) -> bool:
        """Whether a persisted snapshot is available."""

    def describe(self) -> Dict:
        """Cheap metadata for logs and artifact summaries."""
        return {"kind": self.kind}


# -- shared instrumentation ----------------------------------------------


def record_persist(kind: str, seconds: float, nbytes: int) -> None:
    obs_metrics.counter(
        "repro_store_persist_total", "Snapshot-store persist operations"
    ).inc(1.0)
    obs_metrics.counter(
        "repro_store_persist_seconds_total",
        "Wall-clock seconds spent persisting snapshots",
    ).inc(float(seconds))
    obs_metrics.counter(
        "repro_store_persist_bytes_total",
        "Bytes written by snapshot-store persists",
    ).inc(float(nbytes))


def record_open(kind: str, seconds: float, nbytes: int) -> None:
    obs_metrics.counter(
        "repro_store_open_total", "Snapshot-store load/open operations"
    ).inc(1.0)
    obs_metrics.counter(
        "repro_store_open_seconds_total",
        "Wall-clock seconds spent opening persisted snapshots",
    ).inc(float(seconds))
    obs_metrics.counter(
        "repro_store_open_bytes_total",
        "Bytes made available by snapshot-store opens",
    ).inc(float(nbytes))


def record_invalidate(kind: str) -> None:
    obs_metrics.counter(
        "repro_store_invalidations_total",
        "Snapshot-store invalidations (parameter or full)",
    ).inc(1.0)


# -- stale-parameter sidecar (file-backed stores) --------------------------
#
# Invalidating one parameter must not rewrite a multi-megabyte store
# file: the file stays as persisted and a tiny ``<path>.stale`` sidecar
# lists the parameters to drop on load.  ``persist`` clears it.


def stale_path(path: str) -> str:
    return f"{path}.stale"


def read_stale(path: str) -> Set[str]:
    """The persisted stale-parameter set (empty when no sidecar)."""
    try:
        with open(stale_path(path), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return set()
    except (OSError, ValueError) as exc:
        raise SnapshotStoreError(
            f"unreadable stale sidecar {stale_path(path)}: {exc}"
        ) from exc
    return set(payload.get("parameters", ()))


def mark_stale(path: str, parameter: str) -> None:
    stale = read_stale(path)
    stale.add(parameter)
    with open(stale_path(path), "w", encoding="utf-8") as fh:
        json.dump({"parameters": sorted(stale)}, fh)


def clear_stale(path: str) -> None:
    try:
        os.remove(stale_path(path))
    except FileNotFoundError:
        pass


def remove_file(path: str) -> None:
    """Best-effort removal (full invalidation of file-backed stores)."""
    for target in (path, stale_path(path)):
        try:
            os.remove(target)
        except FileNotFoundError:
            pass
