"""repro — a reproduction of Auric (SIGCOMM 2021).

Auric generates configuration parameter values for newly added LTE
carriers using collaborative filtering with chi-square tests of
independence and geographically local voting over X2 neighbor
relations.

Public API highlights:

* :class:`repro.core.AuricEngine` — fit dependency models on an
  existing network, recommend values globally or locally.
* :class:`repro.core.RecommendationPipeline` — full new-carrier
  recommendation with rule-book fallback.
* :mod:`repro.datagen` — the synthetic LTE network/configuration
  generator standing in for the proprietary production snapshot.
* :mod:`repro.learners` — from-scratch decision tree, random forest,
  kNN, deep neural network, lasso and the chi-square CF recommender.
* :mod:`repro.ops` — SmartLaunch, the push controller and the EMS.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.datagen import four_markets_workload
    from repro.core import AuricEngine

    dataset = four_markets_workload(scale=0.02)
    engine = AuricEngine(dataset.network, dataset.store).fit(["pMax"])
    carrier = next(dataset.network.carriers()).carrier_id
    print(engine.recommend_for_carrier("pMax", carrier))
"""

from repro.core import (
    AuricConfig,
    AuricEngine,
    CarrierRecommendation,
    NewCarrierRequest,
    ParameterRecommendation,
    RecommendationPipeline,
)
from repro.datagen import (
    SyntheticDataset,
    four_markets_workload,
    full_network_workload,
    generate_dataset,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "AuricConfig",
    "AuricEngine",
    "CarrierRecommendation",
    "NewCarrierRequest",
    "ParameterRecommendation",
    "RecommendationPipeline",
    "SyntheticDataset",
    "four_markets_workload",
    "full_network_workload",
    "generate_dataset",
    "ReproError",
    "__version__",
]
