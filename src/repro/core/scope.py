"""Voting scopes: global vs geographically local.

Section 3.3 of the paper: the *local learner* restricts the carriers
used for recommendation to the 1-hop X2 neighborhood of the new carrier;
the *global learner* uses the whole network.  Section 4.3.2 evaluates
"collaborative filtering with local voting" against "collaborative
filtering with global voting" — the dependency model (which attributes
matter) is learned globally in both; only the *vote* is scoped.
"""

from __future__ import annotations

import abc
from typing import Optional, Set

from repro.netmodel.identifiers import CarrierId
from repro.netmodel.topology import X2Graph


class Scope(abc.ABC):
    """Which existing carriers may vote for a given target carrier."""

    name: str = "scope"

    @abc.abstractmethod
    def voters_for(self, carrier_id: CarrierId) -> Optional[Set[CarrierId]]:
        """The carrier ids allowed to vote, or None for "everyone"."""


class GlobalScope(Scope):
    """The whole network votes."""

    name = "global"

    def voters_for(self, carrier_id: CarrierId) -> Optional[Set[CarrierId]]:
        return None


class LocalScope(Scope):
    """Only the ``hops``-hop X2 neighborhood votes (1 hop in the paper)."""

    name = "local"

    def __init__(self, x2: X2Graph, hops: int = 1):
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self._x2 = x2
        self.hops = hops

    def voters_for(self, carrier_id: CarrierId) -> Optional[Set[CarrierId]]:
        return self._x2.carrier_neighborhood(carrier_id, hops=self.hops)
