"""Human-readable explanations of recommendations.

Section 5 ("Lessons learned"): interpretation of results and simple
explanations were essential for engineer adoption.  This module renders
a recommendation into the pieces an engineer checks: which attributes
the parameter depends on, what the new carrier's values are on those
attributes, how the vote went, and what the runner-up values were.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.store import PairKey
from repro.core.auric import AuricEngine
from repro.netmodel.identifiers import CarrierId


def explain_recommendation(
    engine: AuricEngine,
    parameter: str,
    carrier_id: CarrierId,
    local: bool = True,
    top_alternatives: int = 3,
) -> List[str]:
    """Explanation lines for a singular-parameter recommendation."""
    model = engine._model(parameter)
    row = engine.carrier_row(carrier_id)
    recommendation = engine.recommend_for_carrier(
        parameter, carrier_id, local=local
    )
    lines = [
        f"parameter {parameter} for {carrier_id}:",
        "  depends on: "
        + (", ".join(
            f"{name}={row[col]}"
            for name, col in zip(model.dependent_names, model.dependent_columns)
        ) or "(no dependent attributes found)"),
        f"  vote ({recommendation.scope}): {recommendation.value!r} with "
        f"{recommendation.support:.0%} support from "
        f"{recommendation.matched:g} matching carriers",
    ]
    if not recommendation.confident:
        lines.append(
            "  note: support is below the "
            f"{engine.config.support_threshold:.0%} threshold; the value is "
            "a plurality suggestion, not a confident recommendation"
        )
    alternatives = _alternatives(engine, parameter, row, carrier_id, top_alternatives)
    if alternatives:
        lines.append("  runners-up: " + ", ".join(alternatives))
    return lines


def _alternatives(
    engine: AuricEngine,
    parameter: str,
    row,
    exclude: Optional[CarrierId],
    top: int,
) -> List[str]:
    model = engine._model(parameter)
    counter = engine._vote_counter(model, model.cell_key(row), exclude)
    total = sum(counter.values())
    if total == 0:
        return []
    return [
        f"{value!r} ({count / total:.0%})"
        for value, count in counter.most_common(top + 1)[1:]
    ]
