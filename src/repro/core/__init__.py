"""Auric core: the recommendation engine of the paper.

:class:`~repro.core.auric.AuricEngine` learns, per configuration
parameter, a dependency model from existing carriers and recommends
values for new carriers — globally or scoped to the 1-hop X2
neighborhood (the *local learner* of section 3.3).
"""

from repro.core.auric import AuricEngine, AuricConfig
from repro.core.pipeline import NewCarrierRequest, RecommendationPipeline
from repro.core.recommendation import (
    CarrierRecommendation,
    ParameterRecommendation,
    RecommendRequest,
    RecommendResult,
)
from repro.core.scope import GlobalScope, LocalScope, Scope

__all__ = [
    "AuricEngine",
    "AuricConfig",
    "NewCarrierRequest",
    "RecommendationPipeline",
    "CarrierRecommendation",
    "ParameterRecommendation",
    "RecommendRequest",
    "RecommendResult",
    "GlobalScope",
    "LocalScope",
    "Scope",
]
