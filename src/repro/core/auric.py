"""The Auric recommendation engine.

Fits, per range parameter, a collaborative-filtering dependency model
(chi-square attribute selection, section 3.2) over the existing carriers
in a network, then recommends values for target carriers by voting —
globally or within the 1-hop X2 neighborhood (section 3.3).

The engine supports *leave-one-out* voting (``exclude`` in the recommend
calls): the paper's evaluation treats each existing carrier as if it
were new, with the rest of the network as the training set, so a
carrier's own configured value must not vote for itself.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.config.parameters import ParameterCatalog, ParameterSpec
from repro.config.store import ConfigurationStore, PairKey
from repro.exceptions import RecommendationError, UnknownParameterError
from repro.core.recommendation import (
    CarrierRecommendation,
    ParameterRecommendation,
    RecommendRequest,
    RecommendResult,
)
from repro.learners.collaborative_filtering import CollaborativeFilteringRecommender
from repro.obs import tracing
from repro.obs.provenance import (
    AttributeDependence,
    ParameterExplanation,
    ResultExplanation,
    VoteShare,
)
from repro.netmodel.attributes import ATTRIBUTE_SCHEMA
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.rng import derive
from repro.types import AttributeValue, ParameterValue

Row = Tuple[AttributeValue, ...]


def _attribute_dependence(
    name: str, column: int, result
) -> AttributeDependence:
    """Provenance record for one chi-square-selected attribute.

    ``result.p_value`` is the selection threshold; the achieved p-value
    is recovered from the statistic and degrees of freedom.
    """
    achieved = (
        float(_scipy_stats.chi2.sf(result.statistic, result.dof))
        if result.dof > 0
        else 1.0
    )
    return AttributeDependence(
        name=name,
        column=column,
        statistic=float(result.statistic),
        dof=int(result.dof),
        p_value=achieved,
        significance=float(result.p_value),
        cramers_v=float(result.cramers_v),
    )


@dataclass(frozen=True)
class AuricConfig:
    """Engine settings (defaults follow section 4.2 of the paper)."""

    support_threshold: float = 0.75
    p_value: float = 0.01
    min_effect_size: float = 0.12
    #: Attribute-selection strategy: "conditional" (default) or
    #: "marginal" (the paper's verbatim marginal chi-square selection,
    #: kept for the ablation).
    selection: str = "conditional"
    hops: int = 1
    #: Minimum number of local voters for a local vote to stand; below
    #: this the engine falls back to the global vote.
    min_local_votes: int = 3
    #: Cap on samples used for chi-square attribute selection (the vote
    #: index always uses every sample).  None = no cap.
    max_fit_samples: Optional[int] = 30000
    seed: int = 7


@dataclass
class _ParameterModel:
    """Fitted state for one parameter."""

    spec: ParameterSpec
    dependent_columns: Tuple[int, ...]
    dependent_names: Tuple[str, ...]
    cell_index: Dict[Tuple[AttributeValue, ...], Counter]
    global_counts: Counter
    # target key (CarrierId or PairKey) -> (cell key, label)
    samples: Dict[Hashable, Tuple[Tuple[AttributeValue, ...], ParameterValue]]
    # carrier -> target keys whose source side is that carrier
    by_carrier: Dict[CarrierId, List[Hashable]]
    # sparse vote weights (targets not listed weigh 1.0)
    weights: Dict[Hashable, float] = field(default_factory=dict)
    #: Chi-square provenance of the dependent attributes, strongest
    #: dependency first (empty on models fitted before this field or
    #: loaded from pre-provenance artifacts).
    dependent_stats: Tuple[AttributeDependence, ...] = ()
    # lazily-built vote indexes for relaxed (prefix) matches; level k
    # matches on the first k dependent attributes (strongest first)
    _relaxed: Dict[int, Dict[Tuple[AttributeValue, ...], Counter]] = field(
        default_factory=dict, repr=False
    )

    def weight_of(self, key: Hashable) -> float:
        return self.weights.get(key, 1.0)

    def add_sample(
        self,
        key: Hashable,
        row: Row,
        label: ParameterValue,
        weight: float = 1.0,
    ) -> None:
        """Add one configured value to the fitted vote indexes.

        The incremental-refresh path (``repro.serve.refresh``): a newly
        activated carrier's values join the electorate without re-running
        attribute selection — the dependency structure is kept until the
        next full refit.  Replaces any existing sample under ``key``.
        """
        if weight < 0.0:
            raise ValueError(f"vote weight for {key} must be >= 0")
        if key in self.samples:
            self.remove_sample(key)
        cell = self.cell_key(row)
        self.cell_index.setdefault(cell, Counter())[label] += weight
        self.global_counts[label] += weight
        self.samples[key] = (cell, label)
        source = key.carrier if isinstance(key, PairKey) else key
        self.by_carrier.setdefault(source, []).append(key)
        if weight != 1.0:
            self.weights[key] = weight
        for level, index in self._relaxed.items():
            index.setdefault(cell[:level], Counter())[label] += weight

    def remove_sample(self, key: Hashable) -> None:
        """Remove one configured value from the fitted vote indexes."""
        if key not in self.samples:
            return
        cell, label = self.samples.pop(key)
        weight = self.weights.pop(key, 1.0)
        self._drop_votes(self.cell_index, cell, label, weight)
        self.global_counts[label] -= weight
        if self.global_counts[label] <= 1e-12:
            del self.global_counts[label]
        source = key.carrier if isinstance(key, PairKey) else key
        keys = self.by_carrier.get(source)
        if keys is not None:
            keys.remove(key)
            if not keys:
                del self.by_carrier[source]
        for level, index in self._relaxed.items():
            self._drop_votes(index, cell[:level], label, weight)

    @staticmethod
    def _drop_votes(
        index: Dict[Tuple[AttributeValue, ...], Counter],
        cell: Tuple[AttributeValue, ...],
        label: ParameterValue,
        weight: float,
    ) -> None:
        counter = index.get(cell)
        if counter is None:
            return
        counter[label] -= weight
        if counter[label] <= 1e-12:
            del counter[label]
        if not counter:
            del index[cell]

    def relaxed_index(
        self, level: int
    ) -> Dict[Tuple[AttributeValue, ...], Counter]:
        """The vote index matching on the first ``level`` dependent
        attributes (built on first use)."""
        index = self._relaxed.get(level)
        if index is None:
            index = {}
            for key, (cell, label) in self.samples.items():
                prefix = cell[:level]
                index.setdefault(prefix, Counter())[label] += self.weight_of(key)
            self._relaxed[level] = index
        return index

    def cell_key(self, row: Row) -> Tuple[AttributeValue, ...]:
        return tuple(row[c] for c in self.dependent_columns)


class AuricEngine:
    """Learns dependency models and recommends configuration values."""

    def __init__(
        self,
        network: Network,
        store: ConfigurationStore,
        config: Optional[AuricConfig] = None,
    ) -> None:
        self.network = network
        self.store = store
        self.config = config or AuricConfig()
        self.catalog: ParameterCatalog = store.catalog
        self._models: Dict[str, _ParameterModel] = {}
        self._row_cache: Dict[CarrierId, Row] = {}
        # When True, _finish captures the full vote distribution on each
        # ParameterRecommendation (set around explain-flagged requests;
        # the hot path leaves it off).
        self._capture_votes = False

    # -- data access --------------------------------------------------------

    def carrier_row(self, carrier_id: CarrierId) -> Row:
        row = self._row_cache.get(carrier_id)
        if row is None:
            row = self.network.carrier(carrier_id).attributes.as_tuple()
            self._row_cache[carrier_id] = row
        return row

    def pair_row(self, pair: PairKey) -> Row:
        return self.carrier_row(pair.carrier) + self.carrier_row(pair.neighbor)

    def attribute_names(self, spec: ParameterSpec) -> Tuple[str, ...]:
        if spec.is_pairwise:
            own = tuple(f"own.{n}" for n in ATTRIBUTE_SCHEMA.names)
            nbr = tuple(f"nbr.{n}" for n in ATTRIBUTE_SCHEMA.names)
            return own + nbr
        return ATTRIBUTE_SCHEMA.names

    # -- fitting --------------------------------------------------------------

    def fit(
        self,
        parameters: Optional[Sequence[str]] = None,
        vote_weights: Optional[Dict[Hashable, float]] = None,
        jobs: int = 1,
    ) -> "AuricEngine":
        """Learn dependency models for the given (or all range) parameters.

        ``vote_weights`` optionally maps target keys (carrier ids / pair
        keys) to vote weights — the section 6 performance-feedback
        extension: carriers whose configuration historically improved
        service performance can carry more support than carriers whose
        KPIs degraded after tuning.  Unlisted targets weigh 1.

        ``jobs`` fans per-parameter fitting out across a process pool
        (:mod:`repro.parallel`); every parameter's attribute selection
        draws from its own derived RNG stream, so the fitted models are
        identical to the serial path regardless of worker count.
        ``jobs=1`` (the default) stays in-process.
        """
        if parameters is None:
            specs = self.catalog.range_parameters()
        else:
            specs = [self.catalog.spec(name) for name in parameters]
        with tracing.span(
            "engine.fit", parameters=len(specs), jobs=jobs
        ):
            if jobs != 1 and len(specs) > 1:
                from repro.parallel.fit import fit_parameter_models

                fitted = fit_parameter_models(
                    self.network,
                    self.store,
                    self.config,
                    [spec.name for spec in specs],
                    vote_weights=vote_weights,
                    jobs=jobs,
                )
                self._models.update(fitted)
                return self
            for spec in specs:
                self._models[spec.name] = self._fit_parameter(spec, vote_weights)
            return self

    def fitted_parameters(self) -> List[str]:
        return sorted(self._models)

    def fitted_models(self) -> Dict[str, _ParameterModel]:
        """The fitted per-parameter models (live references, not copies).

        The persistence layer (``repro.serve.artifacts``) serializes
        these; everything else should go through the recommend calls.
        """
        return dict(self._models)

    def install_model(self, name: str, model: _ParameterModel) -> None:
        """Install a fitted model directly (artifact load / refresher swap)."""
        if model.spec.name != name:
            raise ValueError(
                f"model is for {model.spec.name!r}, cannot install as {name!r}"
            )
        self._models[name] = model

    def _collect_samples(
        self, spec: ParameterSpec
    ) -> Tuple[List[Hashable], List[Row], List[ParameterValue]]:
        if spec.is_pairwise:
            values = self.store.pairwise_values(spec.name)
            keys: List[Hashable] = sorted(values)
            rows = [self.pair_row(k) for k in keys]
        else:
            values = self.store.singular_values(spec.name)
            keys = sorted(values)
            rows = [self.carrier_row(k) for k in keys]
        labels = [values[k] for k in keys]
        return keys, rows, labels

    def _fit_parameter(
        self,
        spec: ParameterSpec,
        vote_weights: Optional[Dict[Hashable, float]] = None,
    ) -> _ParameterModel:
        with tracing.span("engine.fit_parameter", parameter=spec.name) as sp:
            model = self._fit_parameter_impl(spec, vote_weights)
            sp.set("samples", len(model.samples))
            sp.set("dependent", list(model.dependent_names))
            return model

    def _fit_parameter_impl(
        self,
        spec: ParameterSpec,
        vote_weights: Optional[Dict[Hashable, float]] = None,
    ) -> _ParameterModel:
        keys, rows, labels = self._collect_samples(spec)
        if not keys:
            raise RecommendationError(
                f"no configured values for parameter {spec.name}; cannot fit"
            )

        fit_rows, fit_labels = rows, labels
        cap = self.config.max_fit_samples
        if cap is not None and len(rows) > cap:
            rng = derive(self.config.seed, f"fit-sample:{spec.name}")
            picked = rng.choice(len(rows), size=cap, replace=False)
            picked.sort()
            fit_rows = [rows[i] for i in picked]
            fit_labels = [labels[i] for i in picked]

        recommender = CollaborativeFilteringRecommender(
            support_threshold=self.config.support_threshold,
            p_value=self.config.p_value,
            min_effect_size=self.config.min_effect_size,
            selection=self.config.selection,
        ).fit(fit_rows, fit_labels)
        dependent = recommender.dependent_attributes
        names = self.attribute_names(spec)
        dependent_stats = tuple(
            _attribute_dependence(
                names[col], col, recommender.test_result(col)
            )
            for col in dependent
        )

        cell_index: Dict[Tuple[AttributeValue, ...], Counter] = {}
        global_counts: Counter = Counter()
        samples: Dict[Hashable, Tuple[Tuple[AttributeValue, ...], ParameterValue]] = {}
        by_carrier: Dict[CarrierId, List[Hashable]] = {}
        weights: Dict[Hashable, float] = {}
        for key, row, label in zip(keys, rows, labels):
            weight = 1.0
            if vote_weights is not None:
                weight = float(vote_weights.get(key, 1.0))
                if weight < 0.0:
                    raise ValueError(f"vote weight for {key} must be >= 0")
                if weight != 1.0:
                    weights[key] = weight
            cell = tuple(row[c] for c in dependent)
            cell_index.setdefault(cell, Counter())[label] += weight
            global_counts[label] += weight
            samples[key] = (cell, label)
            source = key.carrier if isinstance(key, PairKey) else key
            by_carrier.setdefault(source, []).append(key)

        return _ParameterModel(
            spec=spec,
            dependent_columns=dependent,
            dependent_names=tuple(names[c] for c in dependent),
            cell_index=cell_index,
            global_counts=global_counts,
            samples=samples,
            by_carrier=by_carrier,
            weights=weights,
            dependent_stats=dependent_stats,
        )

    def _model(self, parameter: str) -> _ParameterModel:
        try:
            return self._models[parameter]
        except KeyError:
            raise UnknownParameterError(
                f"{parameter} has not been fitted (call fit first)"
            ) from None

    # -- voting ---------------------------------------------------------------

    def _vote_counter(
        self,
        model: _ParameterModel,
        cell: Tuple[AttributeValue, ...],
        exclude: Optional[Hashable],
    ) -> Counter:
        counter = Counter(model.cell_index.get(cell, Counter()))
        if exclude is not None and exclude in model.samples:
            ex_cell, ex_label = model.samples[exclude]
            if ex_cell == cell and counter.get(ex_label, 0) > 0:
                counter[ex_label] -= model.weight_of(exclude)
                if counter[ex_label] <= 1e-12:
                    del counter[ex_label]
        return counter

    def _finish(
        self,
        model: _ParameterModel,
        counter: Counter,
        scope: str,
    ) -> ParameterRecommendation:
        total = sum(counter.values())
        value, top = counter.most_common(1)[0]
        support = top / total if total else 0.0
        votes: Tuple[Tuple[ParameterValue, float], ...] = ()
        if self._capture_votes:
            votes = tuple(
                (vote_value, float(weight))
                for vote_value, weight in counter.most_common()
            )
        return ParameterRecommendation(
            parameter=model.spec.name,
            value=value,
            support=support,
            matched=float(total),
            confident=support >= self.config.support_threshold,
            scope=scope,
            dependent_attributes=model.dependent_names,
            votes=votes,
        )

    def recommend_global(
        self, parameter: str, row: Row, exclude: Optional[Hashable] = None
    ) -> ParameterRecommendation:
        """Network-wide vote for one target row.

        If no existing carrier matches the full dependent-attribute
        combination (after leave-one-out exclusion), the match is
        progressively relaxed by dropping the weakest dependency first —
        the same fallback the CF learner applies — ending at the global
        value distribution.
        """
        model = self._model(parameter)
        cell = model.cell_key(row)
        counter = self._vote_counter(model, cell, exclude)
        if counter:
            return self._finish(model, counter, "global")
        for level in range(len(cell) - 1, 0, -1):
            index = model.relaxed_index(level)
            counter = Counter(index.get(cell[:level], Counter()))
            if exclude is not None and exclude in model.samples:
                ex_cell, ex_label = model.samples[exclude]
                if ex_cell[:level] == cell[:level] and counter.get(ex_label, 0) > 0:
                    counter[ex_label] -= model.weight_of(exclude)
                    if counter[ex_label] <= 1e-12:
                        del counter[ex_label]
            if counter:
                return self._finish(model, counter, "global-relaxed")
        fallback = Counter(model.global_counts)
        if exclude is not None and exclude in model.samples:
            _, ex_label = model.samples[exclude]
            fallback[ex_label] -= model.weight_of(exclude)
            if fallback[ex_label] <= 1e-12:
                del fallback[ex_label]
        if not fallback:
            raise RecommendationError(f"no votes available for {parameter}")
        return self._finish(model, fallback, "global-fallback")

    def recommend_local(
        self,
        parameter: str,
        row: Row,
        neighborhood: Set[CarrierId],
        exclude: Optional[Hashable] = None,
    ) -> ParameterRecommendation:
        """1-hop-neighborhood vote, falling back to the global vote.

        ``neighborhood`` is the set of *carriers* allowed to vote; for
        pair-wise parameters the votes come from pairs sourced at those
        carriers.

        Two local signals are tried before deferring to the global vote:

        1. an exact match on the dependent attributes among the
           neighborhood's carriers (enough voters → their plurality), and
        2. *cluster-tuning detection*: engineers tune a geographic
           cluster to one value regardless of attribute combination.  A
           neighborhood whose carriers agree on one value (support above
           the confidence threshold) across two or more *different*
           dependent-attribute cells, where that value moreover deviates
           from the voters' own cells' network-wide majorities, is a
           tuned cluster — its value applies to the new carrier even
           without an exact attribute match.  The deviation requirement
           is what separates deliberate local tuning from areas that are
           merely uniform because the network-wide default dominates.
        """
        model = self._model(parameter)
        cell = model.cell_key(row)
        exact_counter: Counter = Counter()
        all_counter: Counter = Counter()
        voters_by_label: Dict[ParameterValue, List[Hashable]] = {}
        for carrier in neighborhood:
            for key in model.by_carrier.get(carrier, ()):
                if key == exclude:
                    continue
                sample_cell, label = model.samples[key]
                weight = model.weight_of(key)
                all_counter[label] += weight
                voters_by_label.setdefault(label, []).append(key)
                if sample_cell == cell:
                    exact_counter[label] += weight

        if sum(exact_counter.values()) >= self.config.min_local_votes:
            outcome = self._finish(model, exact_counter, "local")
            # A handful of local voters is a weaker sample than the
            # network-wide cell; only a confident local consensus is
            # allowed to override the global vote.
            if outcome.confident:
                return outcome

        if sum(all_counter.values()) >= self.config.min_local_votes:
            outcome = self._finish(model, all_counter, "local-cluster")
            if outcome.confident and self._is_tuned_cluster(
                model, voters_by_label.get(outcome.value, []), outcome.value
            ):
                return outcome

        return self.recommend_global(parameter, row, exclude)

    def _is_tuned_cluster(
        self,
        model: _ParameterModel,
        voters: List[Hashable],
        value: ParameterValue,
    ) -> bool:
        """Whether neighborhood agreement on ``value`` looks deliberate.

        Requires the agreeing voters to span at least two distinct
        dependent-attribute cells, and a majority of them to deviate
        from their own cell's network-wide majority — uniform areas
        where everyone simply has the global default fail this.
        """
        cells = {model.samples[key][0] for key in voters}
        if len(cells) < 2:
            return False
        anomalous = 0
        evidence = 0
        for key in voters:
            voter_cell, _ = model.samples[key]
            counter = Counter(model.cell_index[voter_cell])
            counter[value] -= model.weight_of(key)  # the voter's own vote
            if counter[value] <= 1e-12:
                del counter[value]
            if not counter:
                # A singleton cell says nothing about the network norm;
                # it is neither evidence for nor against tuning.
                continue
            evidence += 1
            if counter.most_common(1)[0][0] != value:
                anomalous += 1
        if evidence < 2:
            return False
        return anomalous >= 0.5 * evidence

    # -- carrier-level API ------------------------------------------------------

    def neighborhood_of(self, carrier_id: CarrierId) -> Set[CarrierId]:
        return self.network.x2.carrier_neighborhood(
            carrier_id, hops=self.config.hops
        )

    def recommend_for_carrier(
        self,
        parameter: str,
        carrier_id: CarrierId,
        local: bool = True,
        leave_one_out: bool = True,
    ) -> ParameterRecommendation:
        """Recommend a singular parameter for an existing carrier.

        With ``leave_one_out`` the carrier's own configured value does
        not vote — the paper's evaluation methodology.
        """
        model = self._model(parameter)
        if model.spec.is_pairwise:
            raise RecommendationError(
                f"{parameter} is pair-wise; use recommend_for_pair"
            )
        row = self.carrier_row(carrier_id)
        exclude = carrier_id if leave_one_out else None
        if local:
            return self.recommend_local(
                parameter, row, self.neighborhood_of(carrier_id), exclude
            )
        return self.recommend_global(parameter, row, exclude)

    def recommend_for_pair(
        self,
        parameter: str,
        pair: PairKey,
        local: bool = True,
        leave_one_out: bool = True,
    ) -> ParameterRecommendation:
        """Recommend a pair-wise parameter for a (carrier, neighbor) pair."""
        model = self._model(parameter)
        if not model.spec.is_pairwise:
            raise RecommendationError(
                f"{parameter} is singular; use recommend_for_carrier"
            )
        row = self.pair_row(pair)
        exclude = pair if leave_one_out else None
        if local:
            # The source carrier's other pairs are legitimate voters too.
            neighborhood = self.neighborhood_of(pair.carrier)
            neighborhood.add(pair.carrier)
            return self.recommend_local(parameter, row, neighborhood, exclude)
        return self.recommend_global(parameter, row, exclude)

    def recommend_for_targets(
        self,
        parameter: str,
        keys: Sequence[Hashable],
        local: bool = True,
        leave_one_out: bool = True,
    ) -> List[ParameterRecommendation]:
        """Recommend one parameter for many existing targets at once.

        ``keys`` are carrier ids (singular parameters) or pair keys
        (pair-wise); the model and spec checks are hoisted out of the
        loop.  This is the bulk path the LOO evaluation sweeps — serial
        and parallel alike — drive, so both scopes of an evaluation
        fold make exactly the same per-target calls.
        """
        model = self._model(parameter)
        if model.spec.is_pairwise:
            return [
                self.recommend_for_pair(parameter, key, local, leave_one_out)
                for key in keys
            ]
        return [
            self.recommend_for_carrier(parameter, key, local, leave_one_out)
            for key in keys
        ]

    # -- unified request API -----------------------------------------------------

    def request_neighborhood(self, request) -> Set[CarrierId]:
        """Local voters for a new-carrier-shaped request: its explicit
        ANR neighbors plus, when the launch eNodeB is known, the
        co-sited carriers and their X2 neighborhoods."""
        voters: Set[CarrierId] = set(request.neighbor_carriers)
        if request.enodeb_id is not None:
            enodeb = self.network.enodeb(request.enodeb_id)
            for carrier in enodeb.carriers():
                voters.add(carrier.carrier_id)
                voters |= self.neighborhood_of(carrier.carrier_id)
        return voters

    def resolve_request(
        self, request: RecommendRequest
    ) -> Tuple["CarrierAttributes", Row, Set[CarrierId], Optional[Hashable]]:
        """Resolve a unified request against the snapshot.

        Returns ``(attributes, row, neighborhood, exclude)``: existing
        carriers get their stored attributes, X2 neighborhood and (under
        leave-one-out) their own key as the excluded voter; new carriers
        get the declared attributes and the launch neighborhood.  A
        non-local request resolves to an empty neighborhood, which every
        layer treats as "vote globally".
        """
        if request.carrier_id is not None:
            attributes = self.network.carrier(request.carrier_id).attributes
            row = self.carrier_row(request.carrier_id)
            neighborhood = (
                self.neighborhood_of(request.carrier_id)
                if request.local
                else set()
            )
            exclude = request.carrier_id if request.leave_one_out else None
            return attributes, row, neighborhood, exclude
        attributes = request.attributes
        row = attributes.as_tuple()
        neighborhood = (
            self.request_neighborhood(request) if request.local else set()
        )
        return attributes, row, neighborhood, None

    def handle(self, request: RecommendRequest) -> RecommendResult:
        """Serve one unified request straight from the engine.

        The engine layer knows only fitted range parameters — no
        rule-book fallback: ``parameters`` defaults to every fitted
        singular parameter and ``include_enumerations`` has no effect
        here (the pipeline and service layers honour it).
        """
        started = time.perf_counter()
        with tracing.span("engine.handle", target=request.label()) as sp:
            _, row, neighborhood, exclude = self.resolve_request(request)
            if request.parameters is not None:
                names = list(request.parameters)
                for name in names:
                    if self._model(name).spec.is_pairwise:
                        raise RecommendationError(
                            f"{name} is pair-wise; use recommend_for_pair"
                        )
            else:
                names = [
                    name
                    for name in self.fitted_parameters()
                    if not self._models[name].spec.is_pairwise
                ]
            sp.set("parameters", len(names))
            result = CarrierRecommendation(target=request.label())
            previous_capture = self._capture_votes
            self._capture_votes = request.explain or previous_capture
            try:
                for name in names:
                    if neighborhood:
                        result.add(
                            self.recommend_local(name, row, neighborhood, exclude)
                        )
                    else:
                        result.add(self.recommend_global(name, row, exclude))
            finally:
                self._capture_votes = previous_capture
            explanation = None
            if request.explain:
                explanation = ResultExplanation(
                    target=request.label(), source="engine"
                )
                context = tracing.current_context()
                if context is not None:
                    explanation.trace_id = context[0]
                for name, rec in result.recommendations.items():
                    explanation.parameters[name] = self.explain_parameter(
                        rec,
                        row,
                        neighborhood=neighborhood if request.local else None,
                    )
            return RecommendResult(
                request=request,
                recommendation=result,
                source="engine",
                duration_s=time.perf_counter() - started,
                exclude=exclude,
                explain=explanation,
            )

    # -- introspection ----------------------------------------------------------

    def explain_parameter(
        self,
        recommendation: ParameterRecommendation,
        row: Row,
        neighborhood: Optional[Set[CarrierId]] = None,
        cache: Optional[str] = None,
        fallback_reason: Optional[str] = None,
    ) -> ParameterExplanation:
        """Build the provenance record behind one recommendation.

        Pairs the fitted model's chi-square dependency statistics with
        the target row's values on those attributes and the vote
        distribution captured on the recommendation (when the request
        asked for it).  The serving layer adds its own cache/fallback
        disposition via ``cache`` / ``fallback_reason``.
        """
        model = self._models.get(recommendation.parameter)
        dependencies: Tuple[AttributeDependence, ...] = ()
        attribute_values: Tuple[Tuple[str, AttributeValue], ...] = ()
        if model is not None:
            dependencies = model.dependent_stats
            attribute_values = tuple(
                zip(model.dependent_names, model.cell_key(row))
            )
        total = sum(weight for _, weight in recommendation.votes)
        votes = tuple(
            VoteShare(
                value=value,
                weight=weight,
                share=weight / total if total else 0.0,
            )
            for value, weight in recommendation.votes
        )
        return ParameterExplanation(
            parameter=recommendation.parameter,
            value=recommendation.value,
            support=recommendation.support,
            matched=recommendation.matched,
            confident=recommendation.confident,
            scope=recommendation.scope,
            dependencies=dependencies,
            attribute_values=attribute_values,
            votes=votes,
            neighborhood_size=(
                len(neighborhood) if neighborhood is not None else None
            ),
            cache=cache,
            fallback_reason=fallback_reason,
        )

    def dependent_attribute_names(self, parameter: str) -> Tuple[str, ...]:
        return self._model(parameter).dependent_names

    def cell_count(self, parameter: str) -> int:
        return len(self._model(parameter).cell_index)
