"""The Auric recommendation engine.

Fits, per range parameter, a collaborative-filtering dependency model
(chi-square attribute selection, section 3.2) over the existing carriers
in a network, then recommends values for target carriers by voting —
globally or within the 1-hop X2 neighborhood (section 3.3).

The engine supports *leave-one-out* voting (``exclude`` in the recommend
calls): the paper's evaluation treats each existing carrier as if it
were new, with the rest of the network as the training set, so a
carrier's own configured value must not vote for itself.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.config.parameters import ParameterCatalog, ParameterSpec
from repro.config.store import ConfigurationStore, PairKey
from repro.core.columnar import (
    NO_EXCLUDE,
    CellVoteTable,
    ColumnarCapacityError,
    ColumnarSnapshot,
    EncodedVotes,
    LocalVoteIndex,
    grouped_votes,
    pack_capacity,
    pack_columns,
    plurality,
)
from repro.exceptions import RecommendationError, UnknownParameterError
from repro.core.recommendation import (
    CarrierRecommendation,
    ParameterRecommendation,
    RecommendRequest,
    RecommendResult,
)
from repro.learners.collaborative_filtering import CollaborativeFilteringRecommender
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.health import DriftBaseline
from repro.obs.provenance import (
    AttributeDependence,
    ParameterExplanation,
    ResultExplanation,
    VoteShare,
)
from repro.netmodel.attributes import ATTRIBUTE_SCHEMA
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.rng import derive
from repro.types import AttributeValue, ParameterValue

Row = Tuple[AttributeValue, ...]


def _attribute_dependence(
    name: str, column: int, result
) -> AttributeDependence:
    """Provenance record for one chi-square-selected attribute.

    ``result.p_value`` is the selection threshold; the achieved p-value
    is recovered from the statistic and degrees of freedom.
    """
    achieved = (
        float(_scipy_stats.chi2.sf(result.statistic, result.dof))
        if result.dof > 0
        else 1.0
    )
    return AttributeDependence(
        name=name,
        column=column,
        statistic=float(result.statistic),
        dof=int(result.dof),
        p_value=achieved,
        significance=float(result.p_value),
        cramers_v=float(result.cramers_v),
    )


@dataclass(frozen=True)
class AuricConfig:
    """Engine settings (defaults follow section 4.2 of the paper)."""

    support_threshold: float = 0.75
    p_value: float = 0.01
    min_effect_size: float = 0.12
    #: Attribute-selection strategy: "conditional" (default) or
    #: "marginal" (the paper's verbatim marginal chi-square selection,
    #: kept for the ablation).
    selection: str = "conditional"
    hops: int = 1
    #: Minimum number of local voters for a local vote to stand; below
    #: this the engine falls back to the global vote.
    min_local_votes: int = 3
    #: Cap on samples used for chi-square attribute selection (the vote
    #: index always uses every sample).  None = no cap.
    max_fit_samples: Optional[int] = 30000
    seed: int = 7
    #: Fit from the one-time integer-encoded snapshot
    #: (:mod:`repro.core.columnar`) instead of re-materializing raw
    #: attribute tuples per parameter.  Results are bit-identical either
    #: way; the flag exists for A/B benchmarking and as an escape hatch.
    columnar: bool = True
    #: Columnar snapshot persistence backend: "memory" (default, nothing
    #: leaves the process), "file" (JSON sidecar) or "mmap" (binary
    #: store opened zero-copy at cold start).  See :mod:`repro.store`;
    #: serve artifacts reference external stores from schema v4 on.
    store: str = "memory"


@dataclass
class _ParameterModel:
    """Fitted state for one parameter."""

    spec: ParameterSpec
    dependent_columns: Tuple[int, ...]
    dependent_names: Tuple[str, ...]
    cell_index: Dict[Tuple[AttributeValue, ...], Counter]
    global_counts: Counter
    # target key (CarrierId or PairKey) -> (cell key, label)
    samples: Dict[Hashable, Tuple[Tuple[AttributeValue, ...], ParameterValue]]
    # carrier -> target keys whose source side is that carrier
    by_carrier: Dict[CarrierId, List[Hashable]]
    # sparse vote weights (targets not listed weigh 1.0)
    weights: Dict[Hashable, float] = field(default_factory=dict)
    #: Chi-square provenance of the dependent attributes, strongest
    #: dependency first (empty on models fitted before this field or
    #: loaded from pre-provenance artifacts).
    dependent_stats: Tuple[AttributeDependence, ...] = ()
    # lazily-built vote indexes for relaxed (prefix) matches; level k
    # matches on the first k dependent attributes (strongest first)
    _relaxed: Dict[int, Dict[Tuple[AttributeValue, ...], Counter]] = field(
        default_factory=dict, repr=False
    )
    # lazily-built per-cell plurality table (exact-cell global votes);
    # invalidated whenever the vote indexes change
    _vote_table: Optional[CellVoteTable] = field(
        default=None, repr=False, compare=False
    )
    # lazily-built vectorized neighborhood index (local votes);
    # invalidated alongside the vote table
    _local_index: Optional[LocalVoteIndex] = field(
        default=None, repr=False, compare=False
    )
    # lazily-built per-relaxation-level plurality tables; invalidated
    # alongside the vote table
    _relaxed_tables: Dict[int, CellVoteTable] = field(
        default_factory=dict, repr=False, compare=False
    )
    # fit-time encoded vote columns (columnar fits only); lets the
    # lazy structures above build vectorized. Dropped the moment the
    # electorate diverges from the fit-time arrays.
    _encoded: Optional[EncodedVotes] = field(
        default=None, repr=False, compare=False
    )

    def weight_of(self, key: Hashable) -> float:
        return self.weights.get(key, 1.0)

    def add_sample(
        self,
        key: Hashable,
        row: Row,
        label: ParameterValue,
        weight: float = 1.0,
    ) -> None:
        """Add one configured value to the fitted vote indexes.

        The incremental-refresh path (``repro.serve.refresh``): a newly
        activated carrier's values join the electorate without re-running
        attribute selection — the dependency structure is kept until the
        next full refit.  Replaces any existing sample under ``key``.
        """
        if weight < 0.0:
            raise ValueError(f"vote weight for {key} must be >= 0")
        if key in self.samples:
            self.remove_sample(key)
        self._vote_table = None
        self._local_index = None
        self._relaxed_tables = {}
        self._encoded = None
        cell = self.cell_key(row)
        self.cell_index.setdefault(cell, Counter())[label] += weight
        self.global_counts[label] += weight
        self.samples[key] = (cell, label)
        source = key.carrier if isinstance(key, PairKey) else key
        self.by_carrier.setdefault(source, []).append(key)
        if weight != 1.0:
            self.weights[key] = weight
        for level, index in self._relaxed.items():
            index.setdefault(cell[:level], Counter())[label] += weight

    def remove_sample(self, key: Hashable) -> None:
        """Remove one configured value from the fitted vote indexes."""
        if key not in self.samples:
            return
        self._vote_table = None
        self._local_index = None
        self._relaxed_tables = {}
        self._encoded = None
        cell, label = self.samples.pop(key)
        weight = self.weights.pop(key, 1.0)
        self._drop_votes(self.cell_index, cell, label, weight)
        self.global_counts[label] -= weight
        if self.global_counts[label] <= 1e-12:
            del self.global_counts[label]
        source = key.carrier if isinstance(key, PairKey) else key
        keys = self.by_carrier.get(source)
        if keys is not None:
            keys.remove(key)
            if not keys:
                del self.by_carrier[source]
        for level, index in self._relaxed.items():
            self._drop_votes(index, cell[:level], label, weight)

    @staticmethod
    def _drop_votes(
        index: Dict[Tuple[AttributeValue, ...], Counter],
        cell: Tuple[AttributeValue, ...],
        label: ParameterValue,
        weight: float,
    ) -> None:
        counter = index.get(cell)
        if counter is None:
            return
        counter[label] -= weight
        if counter[label] <= 1e-12:
            del counter[label]
        if not counter:
            del index[cell]

    def relaxed_index(
        self, level: int
    ) -> Dict[Tuple[AttributeValue, ...], Counter]:
        """The vote index matching on the first ``level`` dependent
        attributes (built on first use)."""
        index = self._relaxed.get(level)
        if index is None:
            index = {}
            weights = self.weights
            if weights:
                for key, (cell, label) in self.samples.items():
                    prefix = cell[:level]
                    index.setdefault(prefix, Counter())[label] += weights.get(
                        key, 1.0
                    )
            else:
                for cell, label in self.samples.values():
                    prefix = cell[:level]
                    index.setdefault(prefix, Counter())[label] += 1.0
            self._relaxed[level] = index
        return index

    def cell_key(self, row: Row) -> Tuple[AttributeValue, ...]:
        return tuple(row[c] for c in self.dependent_columns)


class AuricEngine:
    """Learns dependency models and recommends configuration values."""

    def __init__(
        self,
        network: Network,
        store: ConfigurationStore,
        config: Optional[AuricConfig] = None,
    ) -> None:
        self.network = network
        self.store = store
        self.config = config or AuricConfig()
        self.catalog: ParameterCatalog = store.catalog
        self._models: Dict[str, _ParameterModel] = {}
        self._row_cache: Dict[CarrierId, Row] = {}
        self._columnar: Optional[ColumnarSnapshot] = None
        #: Lifecycle-journal stream id for this engine's fit lineage —
        #: minted on the first journaled :meth:`fit` so refits of the
        #: same engine chain into one timeline stream.
        self.lineage: Optional[str] = None
        #: Accumulated fit-phase wall clock, keyed ``(phase,
        #: parameter)`` with phases ``encode`` / ``select`` / ``vote``.
        #: Reset by :meth:`fit`; pool workers drain it per task via
        #: :meth:`_take_fit_phases` so the master can aggregate.
        self._fit_phases: Dict[Tuple[str, str], float] = {}
        #: Fit-time attribute/parameter distributions — the population
        #: the models saw.  Captured by :meth:`fit`, persisted in serve
        #: artifacts and scored against live snapshots by
        #: :class:`repro.obs.health.DriftDetector`.
        self.drift_baseline: Optional[DriftBaseline] = None
        # When True, _finish captures the full vote distribution on each
        # ParameterRecommendation (set around explain-flagged requests;
        # the hot path leaves it off).  Thread-local so a concurrent
        # explain request never flips a plain request on another thread
        # onto the capture path (the lock-free service serves many
        # threads from one engine).
        self._capture_state = threading.local()

    @property
    def _capture_votes(self) -> bool:
        return getattr(self._capture_state, "value", False)

    @_capture_votes.setter
    def _capture_votes(self, value: bool) -> None:
        self._capture_state.value = value

    # -- data access --------------------------------------------------------

    def carrier_row(self, carrier_id: CarrierId) -> Row:
        row = self._row_cache.get(carrier_id)
        if row is None:
            row = self.network.carrier(carrier_id).attributes.as_tuple()
            self._row_cache[carrier_id] = row
        return row

    def pair_row(self, pair: PairKey) -> Row:
        return self.carrier_row(pair.carrier) + self.carrier_row(pair.neighbor)

    def attribute_names(self, spec: ParameterSpec) -> Tuple[str, ...]:
        if spec.is_pairwise:
            own = tuple(f"own.{n}" for n in ATTRIBUTE_SCHEMA.names)
            nbr = tuple(f"nbr.{n}" for n in ATTRIBUTE_SCHEMA.names)
            return own + nbr
        return ATTRIBUTE_SCHEMA.names

    # -- fitting --------------------------------------------------------------

    def _phase(self, phase: str, parameter: str, seconds: float) -> None:
        key = (phase, parameter)
        self._fit_phases[key] = self._fit_phases.get(key, 0.0) + seconds

    def _take_fit_phases(self) -> Dict[Tuple[str, str], float]:
        """Drain the accumulated phase timings (pool workers call this
        after each task so timings ride back on the task result — the
        worker's metrics registry is disabled, so observing there would
        be lost)."""
        phases = self._fit_phases
        self._fit_phases = {}
        return phases

    def _observe_fit_phases(self) -> None:
        """Feed the accumulated breakdown into
        ``repro_fit_phase_seconds{phase,parameter}`` (master side)."""
        if not self._fit_phases:
            return
        histogram = obs_metrics.histogram(
            "repro_fit_phase_seconds",
            "Fit wall-clock by phase (encode / select / vote) and parameter",
            labelnames=("phase", "parameter"),
        )
        for (phase, parameter), seconds in self._fit_phases.items():
            histogram.labels(phase=phase, parameter=parameter).observe(seconds)

    def fit(
        self,
        parameters: Optional[Sequence[str]] = None,
        vote_weights: Optional[Dict[Hashable, float]] = None,
        jobs: int = 1,
    ) -> "AuricEngine":
        """Learn dependency models for the given (or all range) parameters.

        ``vote_weights`` optionally maps target keys (carrier ids / pair
        keys) to vote weights — the section 6 performance-feedback
        extension: carriers whose configuration historically improved
        service performance can carry more support than carriers whose
        KPIs degraded after tuning.  Unlisted targets weigh 1.

        ``jobs`` fans per-parameter fitting out across a process pool
        (:mod:`repro.parallel`); every parameter's attribute selection
        draws from its own derived RNG stream, so the fitted models are
        identical to the serial path regardless of worker count.
        ``jobs=1`` (the default) stays in-process.
        """
        if parameters is None:
            specs = self.catalog.range_parameters()
        else:
            specs = [self.catalog.spec(name) for name in parameters]
        fit_started = time.perf_counter()
        self._fit_phases = {}
        with tracing.span(
            "engine.fit", parameters=len(specs), jobs=jobs
        ):
            if self.config.columnar:
                # One encoding pass shared by every parameter fit (and
                # shipped to pool workers via shared memory).
                self.ensure_columnar(specs)
            if jobs != 1 and len(specs) > 1:
                from repro.parallel.fit import fit_parameter_models

                fitted = fit_parameter_models(
                    self.network,
                    self.store,
                    self.config,
                    [spec.name for spec in specs],
                    vote_weights=vote_weights,
                    jobs=jobs,
                    columnar=self._columnar,
                    phase_sink=self._fit_phases,
                )
                self._models.update(fitted)
            else:
                for spec in specs:
                    self._models[spec.name] = self._fit_parameter(
                        spec, vote_weights
                    )
            # Baseline must be captured here, at fit time — a snapshot
            # mutated after fit has, by definition, drifted from what
            # the models learned.
            self.drift_baseline = DriftBaseline.capture(
                self.network, self.store, parameters=sorted(self._models)
            )
            self._observe_fit_phases()
            self._journal_fit(len(specs), jobs, time.perf_counter() - fit_started)
            return self

    def _journal_fit(self, parameters: int, jobs: int, duration_s: float) -> None:
        """Record this fit in the lifecycle journal (no-op when the
        journal is disabled — the snapshot fingerprint is only computed
        when someone will read it)."""
        if not obs_journal.active():
            return
        if self.lineage is None:
            self.lineage = obs_journal.mint_stream("engine")
        phase_totals: Dict[str, float] = {}
        for (phase, _parameter), seconds in self._fit_phases.items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        # The columnar content hash is cheap (raw buffer hashing); the
        # full dataset fingerprint would cost more than the fit itself.
        # The legacy tuple path has no encoded buffers to hash — a
        # structural digest (carrier + sample counts) stands in.
        if self._columnar is not None:
            snapshot = self._columnar.fingerprint()
        else:
            snapshot = (
                f"legacy-{len(list(self.network.carriers()))}c-"
                f"{sum(len(m.samples) for m in self._models.values())}s"
            )
        obs_journal.record(
            "fit",
            scope="engine",
            stream=self.lineage,
            generation=0,
            duration_s=duration_s,
            fingerprints={"snapshot": snapshot},
            parameters=parameters,
            jobs=jobs,
            phases={k: round(v, 6) for k, v in sorted(phase_totals.items())},
        )

    def ensure_columnar(
        self, specs: Sequence[ParameterSpec] = ()
    ) -> ColumnarSnapshot:
        """The engine's columnar snapshot, encoded on first use and
        extended in place with any not-yet-encoded parameters."""
        if self._columnar is None:
            started = time.perf_counter()
            self._columnar = ColumnarSnapshot.encode(
                self.network, self.store, specs
            )
            self._phase("encode", "snapshot", time.perf_counter() - started)
        else:
            for spec in specs:
                if spec.name in self._columnar.parameters:
                    continue
                started = time.perf_counter()
                self._columnar.add_parameter(self.store, spec)
                self._phase("encode", spec.name, time.perf_counter() - started)
        return self._columnar

    def attach_columnar(self, snapshot: ColumnarSnapshot) -> None:
        """Adopt an already-encoded snapshot (artifact load / pool
        worker) so fitting skips the encoding pass.  The snapshot must
        describe this engine's network and store."""
        self._columnar = snapshot

    def columnar_snapshot(self) -> Optional[ColumnarSnapshot]:
        """The engine's encoded snapshot, or ``None`` before the first
        columnar fit (the persistence layer saves it when present)."""
        return self._columnar

    def invalidate_columnar(self, parameter: Optional[str] = None) -> None:
        """Drop stale encoded columns after the store mutates.

        The columnar snapshot is a one-time encoding of the store; the
        incremental-refresh path writes new configured values into the
        store, so the affected parameter's label columns (or, with
        ``parameter=None``, the whole snapshot) must be re-encoded on
        next use.
        """
        if self._columnar is None:
            return
        if parameter is None:
            self._columnar = None
        else:
            self._columnar.parameters.pop(parameter, None)

    def fitted_parameters(self) -> List[str]:
        return sorted(self._models)

    def fitted_models(self) -> Dict[str, _ParameterModel]:
        """The fitted per-parameter models (live references, not copies).

        The persistence layer (``repro.serve.artifacts``) serializes
        these; everything else should go through the recommend calls.
        """
        return dict(self._models)

    def warm_votes(self, parameters: Optional[Sequence[str]] = None) -> int:
        """Pre-build the lazy per-parameter vote structures.

        The plurality tables and local vote index are normally built on
        first use; a serving tier that shares one engine across shard
        worker threads warms them up front so the lazy builds happen
        once, before concurrent traffic arrives (the builds are
        deterministic and idempotent, so a race is only wasted work —
        warming removes even that).  Returns the number of models
        warmed.
        """
        names = parameters if parameters is not None else self.fitted_parameters()
        warmed = 0
        for name in names:
            model = self._models.get(name)
            if model is None:
                continue
            if self._cell_vote_table(model) is not None:
                self._relaxed_table(model, max(len(model.dependent_columns) - 1, 0))
            self._local_vote_index(model)
            warmed += 1
        return warmed

    def install_model(self, name: str, model: _ParameterModel) -> None:
        """Install a fitted model directly (artifact load / refresher swap)."""
        if model.spec.name != name:
            raise ValueError(
                f"model is for {model.spec.name!r}, cannot install as {name!r}"
            )
        self._models[name] = model

    def _collect_samples(
        self, spec: ParameterSpec
    ) -> Tuple[List[Hashable], List[Row], List[ParameterValue]]:
        if spec.is_pairwise:
            values = self.store.pairwise_values(spec.name)
            keys: List[Hashable] = sorted(values)
            rows = [self.pair_row(k) for k in keys]
        else:
            values = self.store.singular_values(spec.name)
            keys = sorted(values)
            rows = [self.carrier_row(k) for k in keys]
        labels = [values[k] for k in keys]
        return keys, rows, labels

    def _fit_parameter(
        self,
        spec: ParameterSpec,
        vote_weights: Optional[Dict[Hashable, float]] = None,
    ) -> _ParameterModel:
        with tracing.span("engine.fit_parameter", parameter=spec.name) as sp:
            model = self._fit_parameter_impl(spec, vote_weights)
            sp.set("samples", len(model.samples))
            sp.set("dependent", list(model.dependent_names))
            return model

    def _fit_parameter_impl(
        self,
        spec: ParameterSpec,
        vote_weights: Optional[Dict[Hashable, float]] = None,
    ) -> _ParameterModel:
        if self.config.columnar:
            try:
                return self._fit_parameter_columnar(spec, vote_weights)
            except ColumnarCapacityError:
                # Vocabularies too large for int64 cell packing — fall
                # back to the tuple-keyed path for this parameter.
                pass
        keys, rows, labels = self._collect_samples(spec)
        if not keys:
            raise RecommendationError(
                f"no configured values for parameter {spec.name}; cannot fit"
            )

        fit_rows, fit_labels = rows, labels
        picked = self._fit_sample_positions(spec.name, len(rows))
        if picked is not None:
            fit_rows = [rows[i] for i in picked]
            fit_labels = [labels[i] for i in picked]

        select_started = time.perf_counter()
        recommender = CollaborativeFilteringRecommender(
            support_threshold=self.config.support_threshold,
            p_value=self.config.p_value,
            min_effect_size=self.config.min_effect_size,
            selection=self.config.selection,
        ).fit(fit_rows, fit_labels)
        self._phase("select", spec.name, time.perf_counter() - select_started)
        dependent = recommender.dependent_attributes
        names = self.attribute_names(spec)
        dependent_stats = tuple(
            _attribute_dependence(
                names[col], col, recommender.test_result(col)
            )
            for col in dependent
        )

        vote_started = time.perf_counter()
        cell_index: Dict[Tuple[AttributeValue, ...], Counter] = {}
        global_counts: Counter = Counter()
        samples: Dict[Hashable, Tuple[Tuple[AttributeValue, ...], ParameterValue]] = {}
        by_carrier: Dict[CarrierId, List[Hashable]] = {}
        weights: Dict[Hashable, float] = {}
        for key, row, label in zip(keys, rows, labels):
            weight = 1.0
            if vote_weights is not None:
                weight = float(vote_weights.get(key, 1.0))
                if weight < 0.0:
                    raise ValueError(f"vote weight for {key} must be >= 0")
                if weight != 1.0:
                    weights[key] = weight
            cell = tuple(row[c] for c in dependent)
            cell_index.setdefault(cell, Counter())[label] += weight
            global_counts[label] += weight
            samples[key] = (cell, label)
            source = key.carrier if isinstance(key, PairKey) else key
            by_carrier.setdefault(source, []).append(key)
        self._phase("vote", spec.name, time.perf_counter() - vote_started)

        return _ParameterModel(
            spec=spec,
            dependent_columns=dependent,
            dependent_names=tuple(names[c] for c in dependent),
            cell_index=cell_index,
            global_counts=global_counts,
            samples=samples,
            by_carrier=by_carrier,
            weights=weights,
            dependent_stats=dependent_stats,
        )

    def _fit_sample_positions(
        self, name: str, n_samples: int
    ) -> Optional[np.ndarray]:
        """Deterministic (sorted) positions of the chi-square fit
        subsample, or ``None`` when the cap is off or the population
        fits under it.  Depends only on config seed + parameter name +
        population size, so the incremental-refit path can reproduce
        exactly which samples selection saw."""
        cap = self.config.max_fit_samples
        if cap is None or n_samples <= cap:
            return None
        rng = derive(self.config.seed, f"fit-sample:{name}")
        picked = rng.choice(n_samples, size=cap, replace=False)
        picked.sort()
        return picked

    def _fit_parameter_columnar(
        self,
        spec: ParameterSpec,
        vote_weights: Optional[Dict[Hashable, float]] = None,
    ) -> _ParameterModel:
        """Fit one parameter from the encoded snapshot.

        Byte-identical to ``_fit_parameter_impl``: codes are bijective
        with raw values per column (same first-appearance order), so
        attribute selection sees identical contingency tables, and the
        grouped-vote kernel emits (cell, label) groups in the exact
        insertion order the per-sample loop produced — replaying them
        rebuilds the same dicts, Counters and float sums.

        Split into :meth:`_select_columnar` (chi-square attribute
        selection) and :meth:`_build_columnar_model` (vote structures)
        so the incremental-refit path can reuse a previous selection
        when the changelog provably cannot have altered it.
        """
        dependent, dependent_stats = self._select_columnar(spec)
        return self._build_columnar_model(
            spec, dependent, dependent_stats, vote_weights
        )

    def _select_columnar(
        self, spec: ParameterSpec
    ) -> Tuple[Tuple[int, ...], Tuple[AttributeDependence, ...]]:
        """Chi-square attribute selection over the encoded snapshot."""
        columnar = self.ensure_columnar([spec])
        select_started = time.perf_counter()
        columns = columnar.parameter(spec.name)
        n_samples = len(columns)
        if n_samples == 0:
            raise RecommendationError(
                f"no configured values for parameter {spec.name}; cannot fit"
            )
        row_codes = columnar.row_codes(spec.name)
        label_codes = columns.label_codes
        sizes = columnar.column_sizes(spec.name)

        fit_codes, fit_label_codes = row_codes, label_codes
        picked = self._fit_sample_positions(spec.name, n_samples)
        if picked is not None:
            fit_codes = row_codes[picked]
            fit_label_codes = label_codes[picked]

        recommender = CollaborativeFilteringRecommender(
            support_threshold=self.config.support_threshold,
            p_value=self.config.p_value,
            min_effect_size=self.config.min_effect_size,
            selection=self.config.selection,
        ).fit_encoded(fit_codes, fit_label_codes, column_sizes=sizes)
        dependent = recommender.dependent_attributes
        names = self.attribute_names(spec)
        dependent_stats = tuple(
            _attribute_dependence(
                names[col], col, recommender.test_result(col)
            )
            for col in dependent
        )
        self._phase("select", spec.name, time.perf_counter() - select_started)
        return dependent, dependent_stats

    def _build_columnar_model(
        self,
        spec: ParameterSpec,
        dependent: Tuple[int, ...],
        dependent_stats: Tuple[AttributeDependence, ...],
        vote_weights: Optional[Dict[Hashable, float]] = None,
    ) -> _ParameterModel:
        """Build the vote structures for an already-selected dependency
        set — exactly what a full fit does after selection, so a model
        built here is byte-identical to one from a fresh fit with the
        same selection outcome."""
        columnar = self.ensure_columnar([spec])
        vote_started = time.perf_counter()
        columns = columnar.parameter(spec.name)
        if len(columns) == 0:
            raise RecommendationError(
                f"no configured values for parameter {spec.name}; cannot fit"
            )
        row_codes = columnar.row_codes(spec.name)
        label_codes = columns.label_codes
        sizes = columnar.column_sizes(spec.name)
        names = self.attribute_names(spec)

        keys = columns.keys(columnar.carrier_ids)
        label_vocab = columns.label_vocab
        weights: Dict[Hashable, float] = {}
        weight_array: Optional[np.ndarray] = None
        if vote_weights is not None:
            weight_list = []
            for key in keys:
                weight = float(vote_weights.get(key, 1.0))
                if weight < 0.0:
                    raise ValueError(f"vote weight for {key} must be >= 0")
                if weight != 1.0:
                    weights[key] = weight
                weight_list.append(weight)
            weight_array = np.asarray(weight_list, dtype=np.float64)

        capacity = pack_capacity(sizes, dependent)  # may raise
        if capacity > 2**62 // max(len(label_vocab), 1):
            raise ColumnarCapacityError(
                f"cell x label key space of {spec.name} exceeds int64 capacity"
            )
        cell_codes = pack_columns(row_codes, dependent, sizes)
        group_cells, group_labels, group_totals = grouped_votes(
            cell_codes, label_codes, len(label_vocab), weight_array
        )

        # Decode every distinct packed cell in one pass per column.
        uniq_codes = np.unique(group_cells)
        if dependent:
            decoded_columns = []
            remaining = uniq_codes
            for col in dependent:
                size = max(int(sizes[col]), 1)
                vocab = columnar.column_vocab(spec.name, col)
                decoded_columns.append(
                    [vocab[code] for code in (remaining % size).tolist()]
                )
                remaining = remaining // size
            decoded = list(zip(*decoded_columns))
        else:
            decoded = [()] * len(uniq_codes)
        cell_tuples: Dict[int, Tuple[AttributeValue, ...]] = dict(
            zip(uniq_codes.tolist(), decoded)
        )

        cell_index: Dict[Tuple[AttributeValue, ...], Counter] = {}
        for code, label_code, total in zip(
            group_cells.tolist(), group_labels.tolist(), group_totals.tolist()
        ):
            cell_index.setdefault(cell_tuples[code], Counter())[
                label_vocab[label_code]
            ] = total

        label_uniques, label_firsts = np.unique(label_codes, return_index=True)
        if weight_array is None:
            label_totals = np.bincount(
                label_codes, minlength=len(label_vocab)
            ).astype(np.float64)
        else:
            label_totals = np.bincount(
                label_codes, weights=weight_array, minlength=len(label_vocab)
            )
        global_counts: Counter = Counter()
        for code in label_uniques[np.argsort(label_firsts, kind="stable")].tolist():
            global_counts[label_vocab[code]] = float(label_totals[code])

        samples: Dict[Hashable, Tuple[Tuple[AttributeValue, ...], ParameterValue]] = {}
        by_carrier: Dict[CarrierId, List[Hashable]] = {}
        cell_code_list = cell_codes.tolist()
        label_code_list = label_codes.tolist()
        pairwise = spec.is_pairwise
        for i, key in enumerate(keys):
            samples[key] = (
                cell_tuples[cell_code_list[i]],
                label_vocab[label_code_list[i]],
            )
            source = key.carrier if pairwise else key
            by_carrier.setdefault(source, []).append(key)

        model = _ParameterModel(
            spec=spec,
            dependent_columns=dependent,
            dependent_names=tuple(names[c] for c in dependent),
            cell_index=cell_index,
            global_counts=global_counts,
            samples=samples,
            by_carrier=by_carrier,
            weights=weights,
            dependent_stats=dependent_stats,
        )
        if not weights:
            # Keep the encoded columns: the lazy plurality/relaxed/local
            # structures then build vectorized from them instead of
            # replaying per-sample dict loops.  Weighted models skip the
            # stash — their fast paths are gated off anyway.
            model._encoded = EncodedVotes(
                cell_codes=cell_codes,
                label_codes=label_codes,
                label_vocab=label_vocab,
                prefix_sizes=[int(sizes[col]) for col in dependent],
                cell_tuples=cell_tuples,
                dep_vocabs=[
                    columnar.column_vocab(spec.name, col) for col in dependent
                ],
                sources=columns.sources,
                carrier_ids=columnar.carrier_ids,
            )
        self._phase("vote", spec.name, time.perf_counter() - vote_started)
        return model

    def _model(self, parameter: str) -> _ParameterModel:
        try:
            return self._models[parameter]
        except KeyError:
            raise UnknownParameterError(
                f"{parameter} has not been fitted (call fit first)"
            ) from None

    # -- voting ---------------------------------------------------------------

    def _vote_counter(
        self,
        model: _ParameterModel,
        cell: Tuple[AttributeValue, ...],
        exclude: Optional[Hashable],
    ) -> Counter:
        """The cell's vote counter after leave-one-out exclusion.

        With no exclusion applicable this returns the *stored* counter
        uncopied — callers read (``most_common``, ``sum``) but must not
        mutate; the copy happens only when an exclusion actually
        modifies the counts.
        """
        counter = model.cell_index.get(cell)
        if counter is None:
            return Counter()
        if exclude is not None and exclude in model.samples:
            ex_cell, ex_label = model.samples[exclude]
            if ex_cell == cell and counter.get(ex_label, 0) > 0:
                counter = Counter(counter)
                counter[ex_label] -= model.weight_of(exclude)
                if counter[ex_label] <= 1e-12:
                    del counter[ex_label]
        return counter

    def _cell_vote_table(
        self, model: _ParameterModel
    ) -> Optional[CellVoteTable]:
        """The model's precomputed plurality table, or ``None`` when the
        exact fast path cannot be used (weighted votes make the LOO
        ``top - 1`` arithmetic inexact; vote capture needs the full
        distribution; ``columnar=False`` pins the engine to the legacy
        path for A/B comparison)."""
        if self._capture_votes or model.weights or not self.config.columnar:
            return None
        table = model._vote_table
        if table is None:
            encoded = model._encoded
            if encoded is not None:
                table = encoded.vote_table()
            else:
                table = CellVoteTable(model.cell_index)
            model._vote_table = table
        return table

    def _table_outcome(
        self,
        model: _ParameterModel,
        table: CellVoteTable,
        cell: Tuple[AttributeValue, ...],
        exclude: Optional[Hashable],
    ) -> Optional[ParameterRecommendation]:
        """Answer an exact-cell global vote from the plurality table.

        ``None`` means the table cannot answer exactly (unknown cell or
        the exclusion empties it) and the caller must take the legacy
        path — whose outcome is identical whenever the table *does*
        answer.
        """
        exclude_label: object = NO_EXCLUDE
        if exclude is not None:
            sample = model.samples.get(exclude)
            if sample is not None and sample[0] == cell:
                exclude_label = sample[1]
        outcome = table.vote(cell, exclude_label)
        if outcome is None:
            return None
        value, top, total = outcome
        support = top / total if total else 0.0
        return ParameterRecommendation(
            parameter=model.spec.name,
            value=value,
            support=support,
            matched=float(total),
            confident=support >= self.config.support_threshold,
            scope="global",
            dependent_attributes=model.dependent_names,
            votes=(),
        )

    def _relaxed_table(
        self, model: _ParameterModel, level: int
    ) -> CellVoteTable:
        """The plurality table over the level-``level`` relaxed index
        (built on first use, invalidated with the vote table)."""
        table = model._relaxed_tables.get(level)
        if table is None:
            encoded = model._encoded
            if encoded is not None:
                table = encoded.relaxed_table(level)
            else:
                table = CellVoteTable(model.relaxed_index(level))
            model._relaxed_tables[level] = table
        return table

    def _recommend_global_fast(
        self,
        model: _ParameterModel,
        parameter: str,
        cell: Tuple[AttributeValue, ...],
        exclude: Optional[Hashable],
    ) -> ParameterRecommendation:
        """Relaxed-level global vote from per-level plurality tables.

        Reached only when the exact-cell table vote returned ``None`` —
        which implies the legacy exact-cell counter is empty (unknown
        cell, or a singleton cell emptied by the exclusion) — so the
        walk down the relaxation levels picks up exactly where the
        Counter path would.  The global-distribution tail stays on the
        Counter copy; it is both rare and cheap.
        """
        ex_cell = None
        ex_label = None
        if exclude is not None:
            sample = model.samples.get(exclude)
            if sample is not None:
                ex_cell, ex_label = sample
        for level in range(len(cell) - 1, 0, -1):
            table = self._relaxed_table(model, level)
            exclude_label: object = NO_EXCLUDE
            if ex_cell is not None and ex_cell[:level] == cell[:level]:
                exclude_label = ex_label
            outcome = table.vote(cell[:level], exclude_label)
            if outcome is not None:
                value, top, total = outcome
                support = top / total if total else 0.0
                return ParameterRecommendation(
                    parameter=parameter,
                    value=value,
                    support=support,
                    matched=float(total),
                    confident=support >= self.config.support_threshold,
                    scope="global-relaxed",
                    dependent_attributes=model.dependent_names,
                    votes=(),
                )
        fallback = Counter(model.global_counts)
        if ex_label is not None:
            fallback[ex_label] -= 1.0  # weight 1.0 under the table gate
            if fallback[ex_label] <= 1e-12:
                del fallback[ex_label]
        if not fallback:
            raise RecommendationError(f"no votes available for {parameter}")
        return self._finish(model, fallback, "global-fallback")

    def _finish(
        self,
        model: _ParameterModel,
        counter: Counter,
        scope: str,
    ) -> ParameterRecommendation:
        total = sum(counter.values())
        value, top = counter.most_common(1)[0]
        support = top / total if total else 0.0
        votes: Tuple[Tuple[ParameterValue, float], ...] = ()
        if self._capture_votes:
            votes = tuple(
                (vote_value, float(weight))
                for vote_value, weight in counter.most_common()
            )
        return ParameterRecommendation(
            parameter=model.spec.name,
            value=value,
            support=support,
            matched=float(total),
            confident=support >= self.config.support_threshold,
            scope=scope,
            dependent_attributes=model.dependent_names,
            votes=votes,
        )

    def recommend_global(
        self, parameter: str, row: Row, exclude: Optional[Hashable] = None
    ) -> ParameterRecommendation:
        """Network-wide vote for one target row.

        If no existing carrier matches the full dependent-attribute
        combination (after leave-one-out exclusion), the match is
        progressively relaxed by dropping the weakest dependency first —
        the same fallback the CF learner applies — ending at the global
        value distribution.
        """
        model = self._model(parameter)
        cell = model.cell_key(row)
        table = self._cell_vote_table(model)
        if table is not None:
            outcome = self._table_outcome(model, table, cell, exclude)
            if outcome is not None:
                return outcome
            return self._recommend_global_fast(model, parameter, cell, exclude)
        return self._recommend_global_slow(model, parameter, cell, exclude)

    def table_global_votes(
        self,
        parameter: str,
        cells: Sequence[Tuple[AttributeValue, ...]],
        excludes: Optional[Sequence[Optional[Hashable]]] = None,
    ) -> List[Optional[ParameterRecommendation]]:
        """Exact-cell global votes answered straight from the plurality
        table, vectorized over the batch.

        The batch-serving planner's kernel: all no-exclusion cells are
        resolved with one :meth:`CellVoteTable.vote_many` gather;
        leave-one-out entries take the scalar :meth:`_table_outcome`
        path (rare in serving batches, branchy tie-break).  Entries the
        table cannot answer — unknown cells, emptied cells, or a model
        on the legacy/weighted/capture path where there is no table at
        all — come back as ``None`` and the caller falls through to the
        per-target vote, exactly like a ``None`` from
        :meth:`_table_outcome`.  Never raises: a cell with no voters
        anywhere is still just ``None`` here.
        """
        n = len(cells)
        if excludes is None:
            excludes = [None] * n
        model = self._models.get(parameter)
        if model is None:
            return [None] * n
        table = self._cell_vote_table(model)
        if table is None:
            return [None] * n
        out: List[Optional[ParameterRecommendation]] = [None] * n
        threshold = self.config.support_threshold
        name = model.spec.name
        dependent = model.dependent_names
        plain = [i for i in range(n) if excludes[i] is None]
        if plain:
            known, values, tops, totals = table.vote_many(
                [cells[i] for i in plain]
            )
            for j, i in enumerate(plain):
                if not known[j]:
                    continue
                top = tops[j]
                total = totals[j]
                support = top / total if total else 0.0
                out[i] = ParameterRecommendation(
                    parameter=name,
                    value=values[j],
                    support=support,
                    matched=float(total),
                    confident=support >= threshold,
                    scope="global",
                    dependent_attributes=dependent,
                    votes=(),
                )
        for i in range(n):
            if excludes[i] is not None:
                out[i] = self._table_outcome(model, table, cells[i], excludes[i])
        return out

    def recommend_global_cells(
        self,
        parameter: str,
        cells: Sequence[Tuple[AttributeValue, ...]],
        excludes: Optional[Sequence[Optional[Hashable]]] = None,
    ) -> List[ParameterRecommendation]:
        """Batched :meth:`recommend_global` over precomputed cells.

        Element-wise byte-identical to calling :meth:`recommend_global`
        on each cell's source row: the vectorized table pass answers
        the common exact-cell case, and every ``None`` falls through
        the same relaxed/legacy chain the scalar call uses (including
        raising :class:`RecommendationError` for a cell with no votes
        anywhere).
        """
        model = self._model(parameter)
        n = len(cells)
        if excludes is None:
            excludes = [None] * n
        out = self.table_global_votes(parameter, cells, excludes)
        table = self._cell_vote_table(model)
        for i in range(n):
            if out[i] is not None:
                continue
            if table is not None:
                out[i] = self._recommend_global_fast(
                    model, parameter, cells[i], excludes[i]
                )
            else:
                out[i] = self._recommend_global_slow(
                    model, parameter, cells[i], excludes[i]
                )
        return out

    def _recommend_global_slow(
        self,
        model: _ParameterModel,
        parameter: str,
        cell: Tuple[AttributeValue, ...],
        exclude: Optional[Hashable],
    ) -> ParameterRecommendation:
        """The Counter-based global vote: exact cell, relaxed prefixes,
        global fallback.  The plurality-table fast path answers the
        common exact-cell case; everything else (unknown cells, emptied
        cells, weighted models, vote capture) lands here."""
        counter = self._vote_counter(model, cell, exclude)
        if counter:
            return self._finish(model, counter, "global")
        for level in range(len(cell) - 1, 0, -1):
            index = model.relaxed_index(level)
            counter = Counter(index.get(cell[:level], Counter()))
            if exclude is not None and exclude in model.samples:
                ex_cell, ex_label = model.samples[exclude]
                if ex_cell[:level] == cell[:level] and counter.get(ex_label, 0) > 0:
                    counter[ex_label] -= model.weight_of(exclude)
                    if counter[ex_label] <= 1e-12:
                        del counter[ex_label]
            if counter:
                return self._finish(model, counter, "global-relaxed")
        fallback = Counter(model.global_counts)
        if exclude is not None and exclude in model.samples:
            _, ex_label = model.samples[exclude]
            fallback[ex_label] -= model.weight_of(exclude)
            if fallback[ex_label] <= 1e-12:
                del fallback[ex_label]
        if not fallback:
            raise RecommendationError(f"no votes available for {parameter}")
        return self._finish(model, fallback, "global-fallback")

    def recommend_local(
        self,
        parameter: str,
        row: Row,
        neighborhood: Set[CarrierId],
        exclude: Optional[Hashable] = None,
    ) -> ParameterRecommendation:
        """1-hop-neighborhood vote, falling back to the global vote.

        ``neighborhood`` is the set of *carriers* allowed to vote; for
        pair-wise parameters the votes come from pairs sourced at those
        carriers.

        Two local signals are tried before deferring to the global vote:

        1. an exact match on the dependent attributes among the
           neighborhood's carriers (enough voters → their plurality), and
        2. *cluster-tuning detection*: engineers tune a geographic
           cluster to one value regardless of attribute combination.  A
           neighborhood whose carriers agree on one value (support above
           the confidence threshold) across two or more *different*
           dependent-attribute cells, where that value moreover deviates
           from the voters' own cells' network-wide majorities, is a
           tuned cluster — its value applies to the new carrier even
           without an exact attribute match.  The deviation requirement
           is what separates deliberate local tuning from areas that are
           merely uniform because the network-wide default dominates.
        """
        model = self._model(parameter)
        cell = model.cell_key(row)
        outcome = self._local_vote(model, cell, neighborhood, exclude)
        if outcome is not None:
            return outcome
        return self.recommend_global(parameter, row, exclude)

    def _local_vote(
        self,
        model: _ParameterModel,
        cell: Tuple[AttributeValue, ...],
        neighborhood: Set[CarrierId],
        exclude: Optional[Hashable],
    ) -> Optional[ParameterRecommendation]:
        """The two local signals of :meth:`recommend_local`; ``None``
        when neither stands and the global vote must decide."""
        if self.config.min_local_votes >= 1:
            table = self._cell_vote_table(model)
            if table is not None:
                return self._local_vote_fast(
                    model, table, cell, neighborhood, exclude
                )
        exact_counter: Counter = Counter()
        all_counter: Counter = Counter()
        voters_by_label: Dict[ParameterValue, List[Hashable]] = {}
        for carrier in neighborhood:
            for key in model.by_carrier.get(carrier, ()):
                if key == exclude:
                    continue
                sample_cell, label = model.samples[key]
                weight = model.weight_of(key)
                all_counter[label] += weight
                voters_by_label.setdefault(label, []).append(key)
                if sample_cell == cell:
                    exact_counter[label] += weight

        if sum(exact_counter.values()) >= self.config.min_local_votes:
            outcome = self._finish(model, exact_counter, "local")
            # A handful of local voters is a weaker sample than the
            # network-wide cell; only a confident local consensus is
            # allowed to override the global vote.
            if outcome.confident:
                return outcome

        if sum(all_counter.values()) >= self.config.min_local_votes:
            outcome = self._finish(model, all_counter, "local-cluster")
            if outcome.confident and self._is_tuned_cluster(
                model, voters_by_label.get(outcome.value, []), outcome.value
            ):
                return outcome

        return None

    def _local_vote_index(self, model: _ParameterModel) -> LocalVoteIndex:
        index = model._local_index
        if index is None:
            encoded = model._encoded
            if encoded is not None:
                index = LocalVoteIndex.from_encoded(encoded, model.samples)
            else:
                index = LocalVoteIndex(model.samples, model.by_carrier)
            model._local_index = index
        return index

    def _local_vote_fast(
        self,
        model: _ParameterModel,
        table: CellVoteTable,
        cell: Tuple[AttributeValue, ...],
        neighborhood: Set[CarrierId],
        exclude: Optional[Hashable],
    ) -> Optional[ParameterRecommendation]:
        """:meth:`_local_vote` over the vectorized neighborhood index.

        Bit-identical to the Counter loop: the electorate is visited in
        the same order (so plurality tie-breaks agree), every vote
        counts exactly 1 (the :meth:`_cell_vote_table` gate excludes
        weighted models), and the cluster-tuning probe answers each
        voter's cell-majority question from the plurality table.
        """
        index = self._local_vote_index(model)
        pos = index.electorate(neighborhood, exclude)
        if pos is None:
            return None
        labels = index.label_codes[pos]
        total_all = len(labels)
        threshold = self.config.support_threshold
        min_votes = self.config.min_local_votes
        target_slot = index.cell_slot.get(cell)
        if target_slot is not None:
            exact_labels = labels[index.cell_codes[pos] == target_slot]
            total_exact = len(exact_labels)
            if total_exact >= min_votes:
                code, top = plurality(exact_labels.tolist())
                support = top / total_exact
                # A handful of local voters is a weaker sample than the
                # network-wide cell; only a confident local consensus is
                # allowed to override the global vote.
                if support >= threshold:
                    return self._local_outcome(
                        model, index.labels[code], top, total_exact, "local"
                    )
        if total_all >= min_votes:
            labels_list = labels.tolist()
            code, top = plurality(labels_list)
            support = top / total_all
            if support >= threshold:
                value = index.labels[code]
                voter_pos = pos[labels == code]
                if self._is_tuned_cluster_fast(index, table, voter_pos, value):
                    return self._local_outcome(
                        model, value, top, total_all, "local-cluster"
                    )
        return None

    def _local_outcome(
        self,
        model: _ParameterModel,
        value: ParameterValue,
        top: int,
        total: int,
        scope: str,
    ) -> ParameterRecommendation:
        support = top / total
        return ParameterRecommendation(
            parameter=model.spec.name,
            value=value,
            support=support,
            matched=float(total),
            confident=support >= self.config.support_threshold,
            scope=scope,
            dependent_attributes=model.dependent_names,
            votes=(),
        )

    def _is_tuned_cluster_fast(
        self,
        index: LocalVoteIndex,
        table: CellVoteTable,
        voter_pos: np.ndarray,
        value: ParameterValue,
    ) -> bool:
        """:meth:`_is_tuned_cluster` answered from the plurality table:
        removing a voter's own vote and asking for its cell's remaining
        majority is exactly the table's leave-one-out query."""
        codes = index.cell_codes[voter_pos].tolist()
        if len(set(codes)) < 2:
            return False
        cells = index.cells
        anomalous = 0
        evidence = 0
        for code in codes:
            outcome = table.vote(cells[code], value)
            if outcome is None:
                # A singleton cell says nothing about the network norm;
                # it is neither evidence for nor against tuning.
                continue
            evidence += 1
            if outcome[0] != value:
                anomalous += 1
        if evidence < 2:
            return False
        return anomalous >= 0.5 * evidence

    def _is_tuned_cluster(
        self,
        model: _ParameterModel,
        voters: List[Hashable],
        value: ParameterValue,
    ) -> bool:
        """Whether neighborhood agreement on ``value`` looks deliberate.

        Requires the agreeing voters to span at least two distinct
        dependent-attribute cells, and a majority of them to deviate
        from their own cell's network-wide majority — uniform areas
        where everyone simply has the global default fail this.
        """
        cells = {model.samples[key][0] for key in voters}
        if len(cells) < 2:
            return False
        anomalous = 0
        evidence = 0
        for key in voters:
            voter_cell, _ = model.samples[key]
            counter = Counter(model.cell_index[voter_cell])
            counter[value] -= model.weight_of(key)  # the voter's own vote
            if counter[value] <= 1e-12:
                del counter[value]
            if not counter:
                # A singleton cell says nothing about the network norm;
                # it is neither evidence for nor against tuning.
                continue
            evidence += 1
            if counter.most_common(1)[0][0] != value:
                anomalous += 1
        if evidence < 2:
            return False
        return anomalous >= 0.5 * evidence

    # -- carrier-level API ------------------------------------------------------

    def neighborhood_of(self, carrier_id: CarrierId) -> Set[CarrierId]:
        return self.network.x2.carrier_neighborhood(
            carrier_id, hops=self.config.hops
        )

    def recommend_for_carrier(
        self,
        parameter: str,
        carrier_id: CarrierId,
        local: bool = True,
        leave_one_out: bool = True,
    ) -> ParameterRecommendation:
        """Recommend a singular parameter for an existing carrier.

        With ``leave_one_out`` the carrier's own configured value does
        not vote — the paper's evaluation methodology.
        """
        model = self._model(parameter)
        if model.spec.is_pairwise:
            raise RecommendationError(
                f"{parameter} is pair-wise; use recommend_for_pair"
            )
        row = self.carrier_row(carrier_id)
        exclude = carrier_id if leave_one_out else None
        if local:
            return self.recommend_local(
                parameter, row, self.neighborhood_of(carrier_id), exclude
            )
        return self.recommend_global(parameter, row, exclude)

    def recommend_for_pair(
        self,
        parameter: str,
        pair: PairKey,
        local: bool = True,
        leave_one_out: bool = True,
    ) -> ParameterRecommendation:
        """Recommend a pair-wise parameter for a (carrier, neighbor) pair."""
        model = self._model(parameter)
        if not model.spec.is_pairwise:
            raise RecommendationError(
                f"{parameter} is singular; use recommend_for_carrier"
            )
        row = self.pair_row(pair)
        exclude = pair if leave_one_out else None
        if local:
            # The source carrier's other pairs are legitimate voters too.
            neighborhood = self.neighborhood_of(pair.carrier)
            neighborhood.add(pair.carrier)
            return self.recommend_local(parameter, row, neighborhood, exclude)
        return self.recommend_global(parameter, row, exclude)

    def recommend_for_targets(
        self,
        parameter: str,
        keys: Sequence[Hashable],
        local: bool = True,
        leave_one_out: bool = True,
    ) -> List[ParameterRecommendation]:
        """Recommend one parameter for many existing targets at once.

        ``keys`` are carrier ids (singular parameters) or pair keys
        (pair-wise); the model and spec checks are hoisted out of the
        loop.  This is the bulk path the LOO evaluation sweeps — serial
        and parallel alike — drive, so both scopes of an evaluation
        fold make exactly the same per-target calls.

        Targets that are fitted samples skip the row re-materialization
        (their dependent-attribute cell is stored on the model) and
        answer exact-cell global votes from the plurality table; both
        shortcuts reproduce the per-target calls bit for bit, and any
        case the table cannot answer takes the per-target path.
        """
        model = self._model(parameter)
        pairwise = model.spec.is_pairwise
        table = self._cell_vote_table(model)
        if table is None:
            if pairwise:
                return [
                    self.recommend_for_pair(parameter, key, local, leave_one_out)
                    for key in keys
                ]
            return [
                self.recommend_for_carrier(parameter, key, local, leave_one_out)
                for key in keys
            ]
        out: List[ParameterRecommendation] = []
        for key in keys:
            sample = model.samples.get(key)
            if sample is None:
                out.append(
                    self.recommend_for_pair(parameter, key, local, leave_one_out)
                    if pairwise
                    else self.recommend_for_carrier(
                        parameter, key, local, leave_one_out
                    )
                )
                continue
            cell = sample[0]
            exclude = key if leave_one_out else None
            if local:
                if pairwise:
                    # The source carrier's other pairs are legitimate
                    # voters too.
                    neighborhood = self.neighborhood_of(key.carrier)
                    neighborhood.add(key.carrier)
                else:
                    neighborhood = self.neighborhood_of(key)
                outcome = self._local_vote(model, cell, neighborhood, exclude)
                if outcome is not None:
                    out.append(outcome)
                    continue
            outcome = self._table_outcome(model, table, cell, exclude)
            if outcome is None:
                outcome = self._recommend_global_fast(
                    model, parameter, cell, exclude
                )
            out.append(outcome)
        return out

    # -- unified request API -----------------------------------------------------

    def request_neighborhood(self, request) -> Set[CarrierId]:
        """Local voters for a new-carrier-shaped request: its explicit
        ANR neighbors plus, when the launch eNodeB is known, the
        co-sited carriers and their X2 neighborhoods."""
        voters: Set[CarrierId] = set(request.neighbor_carriers)
        if request.enodeb_id is not None:
            enodeb = self.network.enodeb(request.enodeb_id)
            for carrier in enodeb.carriers():
                voters.add(carrier.carrier_id)
                voters |= self.neighborhood_of(carrier.carrier_id)
        return voters

    def resolve_request(
        self, request: RecommendRequest
    ) -> Tuple["CarrierAttributes", Row, Set[CarrierId], Optional[Hashable]]:
        """Resolve a unified request against the snapshot.

        Returns ``(attributes, row, neighborhood, exclude)``: existing
        carriers get their stored attributes, X2 neighborhood and (under
        leave-one-out) their own key as the excluded voter; new carriers
        get the declared attributes and the launch neighborhood.  A
        non-local request resolves to an empty neighborhood, which every
        layer treats as "vote globally".
        """
        if request.carrier_id is not None:
            attributes = self.network.carrier(request.carrier_id).attributes
            row = self.carrier_row(request.carrier_id)
            neighborhood = (
                self.neighborhood_of(request.carrier_id)
                if request.local
                else set()
            )
            exclude = request.carrier_id if request.leave_one_out else None
            return attributes, row, neighborhood, exclude
        attributes = request.attributes
        row = attributes.as_tuple()
        neighborhood = (
            self.request_neighborhood(request) if request.local else set()
        )
        return attributes, row, neighborhood, None

    def resolve_many(
        self, requests: Sequence[RecommendRequest]
    ) -> List[Tuple["CarrierAttributes", Row, Set[CarrierId], Optional[Hashable]]]:
        """Resolve a micro-batch of requests in one pass (in order).

        Same contract as :meth:`resolve_request` per element.  Burst
        traffic repeats carriers and eNodeBs, so the row cache and
        neighborhood lookups are hot here; hoisting the method lookups
        keeps the per-request cost to the dict probes themselves.
        """
        resolve = self.resolve_request
        return [resolve(request) for request in requests]

    def handle(self, request: RecommendRequest) -> RecommendResult:
        """Serve one unified request straight from the engine.

        The engine layer knows only fitted range parameters — no
        rule-book fallback: ``parameters`` defaults to every fitted
        singular parameter and ``include_enumerations`` has no effect
        here (the pipeline and service layers honour it).
        """
        started = time.perf_counter()
        with tracing.span("engine.handle", target=request.label()) as sp:
            _, row, neighborhood, exclude = self.resolve_request(request)
            if request.parameters is not None:
                names = list(request.parameters)
                for name in names:
                    if self._model(name).spec.is_pairwise:
                        raise RecommendationError(
                            f"{name} is pair-wise; use recommend_for_pair"
                        )
            else:
                names = [
                    name
                    for name in self.fitted_parameters()
                    if not self._models[name].spec.is_pairwise
                ]
            sp.set("parameters", len(names))
            result = CarrierRecommendation(target=request.label())
            previous_capture = self._capture_votes
            self._capture_votes = request.explain or previous_capture
            try:
                for name in names:
                    if neighborhood:
                        result.add(
                            self.recommend_local(name, row, neighborhood, exclude)
                        )
                    else:
                        result.add(self.recommend_global(name, row, exclude))
            finally:
                self._capture_votes = previous_capture
            explanation = None
            if request.explain:
                explanation = ResultExplanation(
                    target=request.label(), source="engine",
                    lineage=self.lineage,
                )
                context = tracing.current_context()
                if context is not None:
                    explanation.trace_id = context[0]
                for name, rec in result.recommendations.items():
                    explanation.parameters[name] = self.explain_parameter(
                        rec,
                        row,
                        neighborhood=neighborhood if request.local else None,
                    )
            return RecommendResult(
                request=request,
                recommendation=result,
                source="engine",
                duration_s=time.perf_counter() - started,
                exclude=exclude,
                explain=explanation,
            )

    # -- introspection ----------------------------------------------------------

    def explain_parameter(
        self,
        recommendation: ParameterRecommendation,
        row: Row,
        neighborhood: Optional[Set[CarrierId]] = None,
        cache: Optional[str] = None,
        fallback_reason: Optional[str] = None,
    ) -> ParameterExplanation:
        """Build the provenance record behind one recommendation.

        Pairs the fitted model's chi-square dependency statistics with
        the target row's values on those attributes and the vote
        distribution captured on the recommendation (when the request
        asked for it).  The serving layer adds its own cache/fallback
        disposition via ``cache`` / ``fallback_reason``.
        """
        model = self._models.get(recommendation.parameter)
        dependencies: Tuple[AttributeDependence, ...] = ()
        attribute_values: Tuple[Tuple[str, AttributeValue], ...] = ()
        if model is not None:
            dependencies = model.dependent_stats
            attribute_values = tuple(
                zip(model.dependent_names, model.cell_key(row))
            )
        total = sum(weight for _, weight in recommendation.votes)
        votes = tuple(
            VoteShare(
                value=value,
                weight=weight,
                share=weight / total if total else 0.0,
            )
            for value, weight in recommendation.votes
        )
        return ParameterExplanation(
            parameter=recommendation.parameter,
            value=recommendation.value,
            support=recommendation.support,
            matched=recommendation.matched,
            confident=recommendation.confident,
            scope=recommendation.scope,
            dependencies=dependencies,
            attribute_values=attribute_values,
            votes=votes,
            neighborhood_size=(
                len(neighborhood) if neighborhood is not None else None
            ),
            cache=cache,
            fallback_reason=fallback_reason,
        )

    def dependent_attribute_names(self, parameter: str) -> Tuple[str, ...]:
        return self._model(parameter).dependent_names

    def cell_count(self, parameter: str) -> int:
        return len(self._model(parameter).cell_index)
