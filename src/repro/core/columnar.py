"""Columnar snapshot store and vectorized voting kernels.

The engine's fitting and evaluation workload is dominated by bulk
passes over the carrier population: all ~65 range parameters fit over
the same attribute matrix, and the LOO sweep revisits every sample.
The historical path re-materialized per-carrier Python tuples for each
parameter and counted votes one ``Counter`` update at a time.

This module encodes the snapshot **once** into integer code columns:

* one ``int32`` matrix of carrier attribute codes (rows follow the
  sorted carrier-id order; one vocab table per attribute column, codes
  assigned in first-appearance order over that same sorted order), and
* per parameter, the sample topology (``sources``/``neighbors`` carrier
  row indices, in sorted-key order) plus a label code column with its
  own vocab.

On top of the codes sit three kernels, all built from ``np.unique`` /
``np.bincount``:

* :func:`pack_columns` — mixed-radix packing of a column subset into a
  single ``int64`` key per row (with an explicit capacity guard;
  callers fall back to the tuple-based path when vocabularies are too
  large to pack, which cannot happen at the schema's cardinalities).
* :func:`grouped_votes` — every distinct (cell, label) pair's total
  vote weight in one shot, emitted in first-appearance order so that
  replaying the groups reproduces the historical ``Counter`` insertion
  order *byte for byte*.
* :class:`CellVoteTable` — per-cell plurality winner, runner-up and
  totals precomputed with one vectorized sort, so a global vote (and
  its leave-one-out variant) is an O(1) lookup instead of a ``Counter``
  copy.

Everything downstream is bit-identical to the legacy path by
construction: codes are bijective with raw values per column, and all
orderings replay the historical first-appearance/insertion orders.

For ``--jobs N`` pools under the *spawn* start method, the snapshot's
arrays travel to workers through one ``multiprocessing.shared_memory``
segment instead of the payload pickle (see :mod:`repro.parallel.shm`);
``__getstate__``/``__setstate__`` handle both directions and fall back
to plain pickling whenever shared memory is unavailable.  A snapshot
opened from a persisted mmap store (:mod:`repro.store.mmapfile`) skips
even that copy: while its arrays are still the file's mapped views, the
pickle carries only ``(path, layouts)`` and workers re-map the file.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.parameters import ParameterSpec
from repro.config.store import ConfigurationStore, PairKey
from repro.exceptions import RecommendationError
from repro.netmodel.attributes import ATTRIBUTE_SCHEMA
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.types import AttributeValue, ParameterValue

#: Packed cell keys must stay clear of int64 overflow, including the
#: final ``* n_labels`` step of :func:`grouped_votes`.
PACK_CAPACITY_LIMIT = 2**62


class ColumnarCapacityError(RecommendationError):
    """Vocabularies too large to pack into one int64 key.

    Callers catch this and fall back to the tuple-keyed legacy path;
    the synthetic and production schemas are orders of magnitude below
    the limit, so this is a guard rail, not an expected mode.
    """


def pack_capacity(sizes: Sequence[int], columns: Sequence[int]) -> int:
    """The key-space size of packing ``columns`` with the given vocab
    ``sizes``; raises :class:`ColumnarCapacityError` past the limit."""
    capacity = 1
    for col in columns:
        capacity *= max(int(sizes[col]), 1)
        if capacity > PACK_CAPACITY_LIMIT:
            raise ColumnarCapacityError(
                f"cell key space {capacity} exceeds int64 packing capacity"
            )
    return capacity


def pack_columns(
    matrix: np.ndarray, columns: Sequence[int], sizes: Sequence[int]
) -> np.ndarray:
    """Mixed-radix-pack a subset of code columns into one int64 per row.

    ``matrix[:, columns[0]]`` is the least-significant digit, so two
    rows get equal keys iff they agree on every packed column.  Codes
    must be non-negative and below their column's ``sizes`` entry.
    """
    pack_capacity(sizes, columns)
    packed = np.zeros(len(matrix), dtype=np.int64)
    stride = 1
    for col in columns:
        packed += matrix[:, col].astype(np.int64) * stride
        stride *= max(int(sizes[col]), 1)
    return packed


def unpack_key(
    key: int, columns: Sequence[int], sizes: Sequence[int]
) -> Tuple[int, ...]:
    """Invert :func:`pack_columns` for a single key (code per column)."""
    codes = []
    remaining = int(key)
    for col in columns:
        size = max(int(sizes[col]), 1)
        codes.append(remaining % size)
        remaining //= size
    return tuple(codes)


def grouped_votes(
    cell_codes: np.ndarray,
    label_codes: np.ndarray,
    n_labels: int,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Total vote weight of every distinct (cell, label) pair.

    Returns ``(cells, labels, totals)`` ordered by each pair's first
    appearance in the sample order — replaying them with
    ``setdefault(cell, Counter())[label] = total`` rebuilds exactly the
    dict/Counter insertion order (and, weights being accumulated by
    ``bincount`` in array order, exactly the same float sums) as the
    historical per-sample loop.
    """
    n_labels = max(int(n_labels), 1)
    packed = cell_codes * n_labels + label_codes
    uniq, first, inverse, counts = np.unique(
        packed, return_index=True, return_inverse=True, return_counts=True
    )
    if weights is None:
        totals = counts.astype(np.float64)
    else:
        totals = np.bincount(
            inverse.reshape(-1),
            weights=np.asarray(weights, dtype=np.float64),
            minlength=len(uniq),
        )
    order = np.argsort(first, kind="stable")
    uniq = uniq[order]
    obs_metrics.counter(
        "repro_vote_vectorized_cells_total",
        "Distinct vote cells computed by vectorized kernels",
    ).inc(float(len(uniq)))
    return uniq // n_labels, uniq % n_labels, totals[order]


#: Sentinel distinguishing "no leave-one-out exclusion" from excluding
#: a label that happens to be None.
NO_EXCLUDE = object()


class CellVoteTable:
    """Per-cell plurality stats for O(1) exact-cell global votes.

    For every cell the table holds the total weight, the plurality
    winner ``(value1, top1)`` and the strongest *other* label
    ``(value2, top2)`` — each resolved with ``Counter.most_common``'s
    tie-break (first-inserted label wins) — which is exactly enough to
    answer both the plain vote and any single-sample leave-one-out
    exclusion without touching a ``Counter``.  Only valid for models
    whose weights are all 1.0: integer-valued float counts make the
    ``top1 - 1`` exclusion arithmetic exact.

    :meth:`vote` returns ``None`` whenever the precomputed stats cannot
    answer exactly (unknown cell, or the exclusion empties the cell);
    callers fall back to the legacy path, which is bit-identical by
    definition.
    """

    __slots__ = (
        "_slots",
        "_value1",
        "_value2",
        "_top1",
        "_top2",
        "_pos1",
        "_pos2",
        "_totals",
    )

    def __init__(self, cell_index: Dict[Tuple, "Counter"]) -> None:
        slots: Dict[Tuple, int] = {}
        cell_ids: List[int] = []
        entry_labels: List[ParameterValue] = []
        entry_counts: List[float] = []
        for slot, (cell, counter) in enumerate(cell_index.items()):
            slots[cell] = slot
            for label, count in counter.items():
                cell_ids.append(slot)
                entry_labels.append(label)
                entry_counts.append(float(count))
        self._build(
            slots,
            np.asarray(cell_ids, dtype=np.intp),
            entry_labels,
            np.asarray(entry_counts, dtype=np.float64),
        )

    @classmethod
    def from_grouped(
        cls,
        group_cells: np.ndarray,
        group_labels: np.ndarray,
        group_totals: np.ndarray,
        decode_cells: Callable[[np.ndarray], List[Tuple]],
        label_vocab: Sequence[ParameterValue],
    ) -> "CellVoteTable":
        """Build directly from :func:`grouped_votes` output.

        The groups arrive in (cell, label)-pair first-appearance order;
        restricted to one cell that equals the Counter's label insertion
        order, so every plurality and leave-one-out tie-break matches a
        table built from the materialized dict index.  ``decode_cells``
        maps an array of packed keys to raw cell tuples in one call.
        """
        uniq, first, inverse = np.unique(
            group_cells, return_index=True, return_inverse=True
        )
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.intp)
        rank[order] = np.arange(len(uniq), dtype=np.intp)
        cells = decode_cells(uniq[order])
        table = cls.__new__(cls)
        table._build(
            {cell: slot for slot, cell in enumerate(cells)},
            rank[inverse.reshape(-1)],
            [label_vocab[code] for code in group_labels.tolist()],
            np.asarray(group_totals, dtype=np.float64),
        )
        return table

    def _build(
        self,
        slots: Dict[Tuple, int],
        cells: np.ndarray,
        entry_labels: List[ParameterValue],
        counts: np.ndarray,
    ) -> None:
        self._slots = slots
        n_cells = len(slots)
        positions = np.arange(len(cells), dtype=np.intp)
        # Sort by (cell, count desc, insertion position): the first
        # entry of each cell block is most_common(1), the second is the
        # strongest remaining label under the same tie-break.
        order = np.lexsort((positions, -counts, cells))
        sorted_cells = cells[order]
        starts = np.searchsorted(sorted_cells, np.arange(n_cells, dtype=np.intp))
        sizes = np.bincount(cells, minlength=n_cells)
        top1_entries = order[starts]
        self._top1 = counts[top1_entries]
        self._pos1 = positions[top1_entries]
        self._value1 = [entry_labels[i] for i in top1_entries.tolist()]
        has_second = sizes >= 2
        second_starts = np.where(has_second, starts + 1, starts)
        top2_entries = order[second_starts]
        top2 = np.where(has_second, counts[top2_entries], 0.0)
        self._top2 = top2
        self._pos2 = np.where(has_second, positions[top2_entries], -1)
        self._value2 = [
            entry_labels[i] if second else None
            for i, second in zip(top2_entries.tolist(), has_second.tolist())
        ]
        self._totals = np.bincount(cells, weights=counts, minlength=n_cells)
        obs_metrics.counter(
            "repro_vote_vectorized_cells_total",
            "Distinct vote cells computed by vectorized kernels",
        ).inc(float(n_cells))

    def __len__(self) -> int:
        return len(self._slots)

    def vote(
        self, cell: Tuple, exclude_label: object = NO_EXCLUDE
    ) -> Optional[Tuple[ParameterValue, float, float]]:
        """``(value, top, total)`` of the cell's (possibly LOO-adjusted)
        vote, or ``None`` when the legacy path must answer instead."""
        slot = self._slots.get(cell)
        if slot is None:
            return None
        top1 = self._top1[slot]
        total = self._totals[slot]
        if exclude_label is NO_EXCLUDE:
            return self._value1[slot], top1, total
        # One vote of exclude_label (weight 1.0, guaranteed present by
        # the caller) leaves the cell.
        total -= 1.0
        if total <= 0.0:
            return None  # cell emptied; legacy path relaxes the match
        if exclude_label != self._value1[slot]:
            # A non-winning label lost a vote: since its count was
            # strictly below top1 (or tied but inserted later), the
            # winner is unchanged.
            return self._value1[slot], top1, total
        reduced = top1 - 1.0
        top2 = self._top2[slot]
        if self._pos2[slot] < 0 or reduced > top2:
            return self._value1[slot], reduced, total
        if reduced < top2:
            return self._value2[slot], top2, total
        # Tie after the exclusion: Counter.most_common keeps the
        # first-inserted of the tied labels.
        if self._pos1[slot] < self._pos2[slot]:
            return self._value1[slot], reduced, total
        return self._value2[slot], top2, total

    def vote_many(
        self, cells: Sequence[Tuple]
    ) -> Tuple[np.ndarray, List[Optional[ParameterValue]], np.ndarray, np.ndarray]:
        """Plain (no-exclusion) votes for a batch of cells in one pass.

        Returns ``(known, values, tops, totals)`` aligned with
        ``cells``: ``known[i]`` is False for cells the table has never
        seen (``values[i]`` is then ``None`` and the caller must take
        the relaxation path, exactly as a ``None`` from :meth:`vote`).
        The per-cell stats are gathered with one fancy-indexing pass
        over the plurality arrays, so a micro-batch's distinct cells
        cost one numpy gather instead of ``len(cells)`` dict walks;
        element-wise the results are identical to scalar :meth:`vote`
        calls (same arrays, same dtypes).

        Leave-one-out exclusions stay on the scalar path: they are rare
        in serving batches and their tie-break arithmetic is branchy.
        """
        n = len(cells)
        lookup = self._slots.get
        slots = np.fromiter(
            (lookup(cell, -1) for cell in cells), dtype=np.intp, count=n
        )
        known = slots >= 0
        safe = np.where(known, slots, 0)
        tops = self._top1[safe]
        totals = self._totals[safe]
        value1 = self._value1
        values: List[Optional[ParameterValue]] = [
            value1[slot] if ok else None
            for slot, ok in zip(slots.tolist(), known.tolist())
        ]
        return known, values, tops, totals


def plurality(label_codes: Sequence[int]) -> Tuple[int, int]:
    """``(winner code, count)`` of a small code sequence, with
    ``Counter.most_common``'s first-inserted tie-break."""
    from collections import Counter

    return Counter(label_codes).most_common(1)[0]


class LocalVoteIndex:
    """Vectorized neighborhood gather for local (1-hop) votes.

    The historical local vote walked every neighborhood carrier's sample
    keys through three dicts per sample (``samples``, ``weights``,
    ``voters_by_label``) — hashing composite dataclass keys millions of
    times across a LOO sweep.  This index assigns each fitted sample a
    dense position once, interns its cell and label as small integer
    codes, and stores each carrier's sample positions as one array; a
    neighborhood's electorate is then a concatenation of per-carrier
    position arrays and its vote a ``Counter`` over an integer slice.

    Only valid for models whose weights are all 1.0 (the same gate as
    :class:`CellVoteTable`): every vote then counts exactly one, so
    integer counts equal the historical float sums.
    """

    __slots__ = (
        "key_pos",
        "positions_by_carrier",
        "cell_codes",
        "label_codes",
        "cell_slot",
        "cells",
        "labels",
    )

    def __init__(
        self,
        samples: Dict[Hashable, Tuple[Tuple, ParameterValue]],
        by_carrier: Dict[CarrierId, List[Hashable]],
    ) -> None:
        n = len(samples)
        key_pos: Dict[Hashable, int] = {}
        cell_slot: Dict[Tuple, int] = {}
        label_slot: Dict[ParameterValue, int] = {}
        cells: List[Tuple] = []
        labels: List[ParameterValue] = []
        cell_codes = np.empty(n, dtype=np.intp)
        label_codes = np.empty(n, dtype=np.intp)
        for i, (key, (cell, label)) in enumerate(samples.items()):
            key_pos[key] = i
            code = cell_slot.get(cell)
            if code is None:
                code = cell_slot[cell] = len(cells)
                cells.append(cell)
            cell_codes[i] = code
            lcode = label_slot.get(label)
            if lcode is None:
                lcode = label_slot[label] = len(labels)
                labels.append(label)
            label_codes[i] = lcode
        self.key_pos = key_pos
        self.cell_slot = cell_slot
        self.cells = cells
        self.labels = labels
        self.cell_codes = cell_codes
        self.label_codes = label_codes
        self.positions_by_carrier = {
            carrier: np.fromiter(
                (key_pos[k] for k in keys), dtype=np.intp, count=len(keys)
            )
            for carrier, keys in by_carrier.items()
        }
        obs_metrics.counter(
            "repro_vote_vectorized_cells_total",
            "Distinct vote cells computed by vectorized kernels",
        ).inc(float(len(cells)))

    @classmethod
    def from_encoded(
        cls,
        encoded: "EncodedVotes",
        samples: Dict[Hashable, Tuple[Tuple, ParameterValue]],
    ) -> "LocalVoteIndex":
        """Build from a fit-time :class:`EncodedVotes` stash.

        Equivalent to the dict constructor: the stash's arrays are in
        sample insertion order, its label vocab *is* the label
        first-appearance order, and cell codes are re-ranked to
        first-appearance here — only the per-sample Python loop (and
        its millions of tuple hashes) is replaced by array kernels.
        """
        index = cls.__new__(cls)
        index.key_pos = dict(zip(samples, range(len(samples))))
        uniq, first, inverse = np.unique(
            encoded.cell_codes, return_index=True, return_inverse=True
        )
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.intp)
        rank[order] = np.arange(len(uniq), dtype=np.intp)
        index.cell_codes = rank[inverse.reshape(-1)]
        index.cells = [
            encoded.cell_tuples[code] for code in uniq[order].tolist()
        ]
        index.cell_slot = {cell: slot for slot, cell in enumerate(index.cells)}
        index.label_codes = encoded.label_codes.astype(np.intp)
        index.labels = list(encoded.label_vocab)
        sort_order = np.argsort(encoded.sources, kind="stable").astype(np.intp)
        slots, counts = np.unique(encoded.sources, return_counts=True)
        chunks = np.split(sort_order, np.cumsum(counts)[:-1])
        carrier_ids = encoded.carrier_ids
        index.positions_by_carrier = {
            carrier_ids[slot]: chunk
            for slot, chunk in zip(slots.tolist(), chunks)
        }
        obs_metrics.counter(
            "repro_vote_vectorized_cells_total",
            "Distinct vote cells computed by vectorized kernels",
        ).inc(float(len(index.cells)))
        return index

    def electorate(
        self, neighborhood, exclude: Optional[Hashable]
    ) -> Optional[np.ndarray]:
        """Sample positions voting from ``neighborhood``, in the same
        (neighborhood iteration x per-carrier insertion) order the
        historical loop visited them, minus the excluded target."""
        chunks = []
        positions = self.positions_by_carrier
        for carrier in neighborhood:
            pos = positions.get(carrier)
            if pos is not None:
                chunks.append(pos)
        if not chunks:
            return None
        pos = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        if exclude is not None:
            excluded = self.key_pos.get(exclude)
            if excluded is not None:
                pos = pos[pos != excluded]
        return pos if len(pos) else None


class EncodedVotes:
    """Fit-time stash of one model's encoded vote columns.

    Captured by the columnar fit (sample order = sorted-key order) and
    consumed to build the plurality table, every relaxed-level table and
    the local vote index with array kernels instead of per-sample dict
    loops.  Describes the fit-time electorate only: the owning model
    drops the stash whenever its samples change (``add_sample`` /
    ``remove_sample``), and it is never captured for weighted models —
    the same gate the fast paths already apply.
    """

    __slots__ = (
        "cell_codes",
        "label_codes",
        "label_vocab",
        "prefix_sizes",
        "cell_tuples",
        "dep_vocabs",
        "sources",
        "carrier_ids",
    )

    def __init__(
        self,
        cell_codes: np.ndarray,
        label_codes: np.ndarray,
        label_vocab: List[ParameterValue],
        prefix_sizes: List[int],
        cell_tuples: Dict[int, Tuple],
        dep_vocabs: List[List[AttributeValue]],
        sources: np.ndarray,
        carrier_ids: List[CarrierId],
    ) -> None:
        self.cell_codes = cell_codes
        self.label_codes = label_codes
        self.label_vocab = label_vocab
        self.prefix_sizes = prefix_sizes
        self.cell_tuples = cell_tuples
        self.dep_vocabs = dep_vocabs
        self.sources = sources
        self.carrier_ids = carrier_ids

    def vote_table(self) -> CellVoteTable:
        """The exact-cell plurality table, built vectorized."""
        groups = grouped_votes(
            self.cell_codes, self.label_codes, len(self.label_vocab)
        )
        tuples = self.cell_tuples
        return CellVoteTable.from_grouped(
            *groups,
            lambda keys: [tuples[key] for key in keys.tolist()],
            self.label_vocab,
        )

    def relaxed_table(self, level: int) -> CellVoteTable:
        """The plurality table over level-``level`` cell prefixes.

        Mixed-radix packing puts the first dependent column at stride 1,
        so a prefix key is just the full key modulo the product of the
        first ``level`` vocab sizes — no repacking pass needed.
        """
        modulo = 1
        for size in self.prefix_sizes[:level]:
            modulo *= max(int(size), 1)
        groups = grouped_votes(
            self.cell_codes % modulo, self.label_codes, len(self.label_vocab)
        )
        return CellVoteTable.from_grouped(
            *groups,
            lambda keys: self._decode_prefixes(keys, level),
            self.label_vocab,
        )

    def _decode_prefixes(
        self, keys: np.ndarray, level: int
    ) -> List[Tuple[AttributeValue, ...]]:
        """Unpack an array of prefix keys column by column (one modulo
        pass per column instead of a Python loop per key)."""
        columns = []
        remaining = keys
        for vocab, size in zip(self.dep_vocabs[:level], self.prefix_sizes[:level]):
            size = max(int(size), 1)
            columns.append([vocab[code] for code in (remaining % size).tolist()])
            remaining = remaining // size
        return list(zip(*columns))


class ParameterColumns:
    """One parameter's encoded samples over a :class:`ColumnarSnapshot`.

    ``sources`` (and ``neighbors`` for pair-wise parameters) index into
    the snapshot's carrier rows, in sorted-key order — the same order
    the engine's ``_collect_samples`` produces — so the original target
    keys are rebuilt on demand instead of being stored (or pickled, or
    persisted) as object lists.
    """

    __slots__ = (
        "parameter",
        "pairwise",
        "sources",
        "neighbors",
        "label_codes",
        "label_vocab",
        "_keys",
    )

    def __init__(
        self,
        parameter: str,
        pairwise: bool,
        sources: np.ndarray,
        neighbors: Optional[np.ndarray],
        label_codes: np.ndarray,
        label_vocab: List[ParameterValue],
    ) -> None:
        self.parameter = parameter
        self.pairwise = pairwise
        self.sources = sources
        self.neighbors = neighbors
        self.label_codes = label_codes
        self.label_vocab = label_vocab
        self._keys: Optional[List[Hashable]] = None

    def __len__(self) -> int:
        return len(self.sources)

    @classmethod
    def encode(
        cls,
        store: ConfigurationStore,
        spec: ParameterSpec,
        carrier_slots: Dict[CarrierId, int],
    ) -> "ParameterColumns":
        if spec.is_pairwise:
            values = store.pairwise_values(spec.name)
            keys: List[Hashable] = sorted(values)
            sources = np.fromiter(
                (carrier_slots[k.carrier] for k in keys),
                dtype=np.int32,
                count=len(keys),
            )
            neighbors = np.fromiter(
                (carrier_slots[k.neighbor] for k in keys),
                dtype=np.int32,
                count=len(keys),
            )
        else:
            values = store.singular_values(spec.name)
            keys = sorted(values)
            sources = np.fromiter(
                (carrier_slots[k] for k in keys), dtype=np.int32, count=len(keys)
            )
            neighbors = None
        vocab_map: Dict[ParameterValue, int] = {}
        label_codes = np.fromiter(
            (vocab_map.setdefault(values[k], len(vocab_map)) for k in keys),
            dtype=np.int32,
            count=len(keys),
        )
        columns = cls(
            parameter=spec.name,
            pairwise=spec.is_pairwise,
            sources=sources,
            neighbors=neighbors,
            label_codes=label_codes,
            label_vocab=list(vocab_map),
        )
        columns._keys = keys
        return columns

    def keys(self, carrier_ids: Sequence[CarrierId]) -> List[Hashable]:
        """The target keys in stored (sorted) order, rebuilt lazily."""
        if self._keys is None:
            if self.pairwise:
                self._keys = [
                    PairKey(carrier_ids[s], carrier_ids[n])
                    for s, n in zip(self.sources.tolist(), self.neighbors.tolist())
                ]
            else:
                self._keys = [carrier_ids[s] for s in self.sources.tolist()]
        return self._keys

    def labels(self) -> List[ParameterValue]:
        """The configured values in stored order (decoded)."""
        vocab = self.label_vocab
        return [vocab[code] for code in self.label_codes.tolist()]

    def to_dict(self) -> Dict:
        return {
            "parameter": self.parameter,
            "pairwise": self.pairwise,
            "sources": self.sources.tolist(),
            "neighbors": None if self.neighbors is None else self.neighbors.tolist(),
            "label_codes": self.label_codes.tolist(),
            "label_vocab": list(self.label_vocab),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ParameterColumns":
        neighbors = payload["neighbors"]
        return cls(
            parameter=payload["parameter"],
            pairwise=bool(payload["pairwise"]),
            sources=np.asarray(payload["sources"], dtype=np.int32),
            neighbors=(
                None if neighbors is None else np.asarray(neighbors, dtype=np.int32)
            ),
            label_codes=np.asarray(payload["label_codes"], dtype=np.int32),
            label_vocab=list(payload["label_vocab"]),
        )


class ColumnarSnapshot:
    """Integer-encoded snapshot: attribute code matrix + label columns.

    Built once per :meth:`AuricEngine.fit` (or loaded from a serve
    artifact) and shared by every parameter fit, vote-table build and
    pool worker.  Treat as immutable once built — pool transport and
    the engine's caches rely on it.
    """

    def __init__(
        self,
        carrier_ids: List[CarrierId],
        codes: np.ndarray,
        vocabs: List[List[AttributeValue]],
        parameters: Optional[Dict[str, ParameterColumns]] = None,
    ) -> None:
        self.carrier_ids = carrier_ids
        self.codes = codes
        self.vocabs = vocabs
        self.parameters: Dict[str, ParameterColumns] = parameters or {}
        self._carrier_slots: Optional[Dict[CarrierId, int]] = None
        self._shm_segment = None  # worker-side attachment handle
        # Store-file mmap bookkeeping (repro.store.mmapfile attaches a
        # repro.parallel.shm.FileBacking when the arrays are zero-copy
        # views over a persisted store file).
        self._backing = None

    # -- construction -----------------------------------------------------

    @classmethod
    def encode(
        cls,
        network: Network,
        store: ConfigurationStore,
        specs: Sequence[ParameterSpec] = (),
    ) -> "ColumnarSnapshot":
        """Encode a snapshot's attribute matrix and parameter columns."""
        started = time.perf_counter()
        with tracing.span("columnar.encode", parameters=len(specs)) as span:
            carrier_ids = sorted(
                carrier.carrier_id for carrier in network.carriers()
            )
            n_attrs = len(ATTRIBUTE_SCHEMA.names)
            codes = np.empty((len(carrier_ids), n_attrs), dtype=np.int32)
            vocab_maps: List[Dict[AttributeValue, int]] = [
                {} for _ in range(n_attrs)
            ]
            for i, carrier_id in enumerate(carrier_ids):
                row = network.carrier(carrier_id).attributes.as_tuple()
                for j, value in enumerate(row):
                    vocab = vocab_maps[j]
                    code = vocab.get(value)
                    if code is None:
                        code = vocab[value] = len(vocab)
                    codes[i, j] = code
            snapshot = cls(
                carrier_ids=carrier_ids,
                codes=codes,
                vocabs=[list(vocab) for vocab in vocab_maps],
            )
            for spec in specs:
                snapshot.add_parameter(store, spec)
            span.set("carriers", len(carrier_ids))
            elapsed = time.perf_counter() - started
            span.set("seconds", round(elapsed, 6))
        obs_metrics.counter(
            "repro_columnar_encode_seconds_total",
            "Wall-clock seconds spent encoding columnar snapshots",
        ).inc(elapsed)
        return snapshot

    def add_parameter(
        self, store: ConfigurationStore, spec: ParameterSpec
    ) -> ParameterColumns:
        """Encode one parameter's samples (idempotent)."""
        columns = self.parameters.get(spec.name)
        if columns is None:
            columns = ParameterColumns.encode(store, spec, self.carrier_slots())
            self.parameters[spec.name] = columns
        return columns

    def fingerprint(self) -> str:
        """A content hash of the encoded snapshot (hex, 16 chars).

        Hashes the raw integer buffers instead of re-serializing the
        dataset, so it is cheap enough for the lifecycle journal to
        stamp on every fit record: same carriers, same attribute codes,
        same encoded samples → same fingerprint.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(repr([str(c) for c in self.carrier_ids]).encode())
        digest.update(np.ascontiguousarray(self.codes).tobytes())
        digest.update(repr(self.vocabs).encode())
        for name in sorted(self.parameters):
            columns = self.parameters[name]
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(columns.sources).tobytes())
            if columns.neighbors is not None:
                digest.update(
                    np.ascontiguousarray(columns.neighbors).tobytes()
                )
            digest.update(
                np.ascontiguousarray(columns.label_codes).tobytes()
            )
            digest.update(repr(columns.label_vocab).encode())
        return digest.hexdigest()[:16]

    # -- access -----------------------------------------------------------

    def carrier_slots(self) -> Dict[CarrierId, int]:
        """Carrier id -> row index in the code matrix (cached)."""
        if self._carrier_slots is None:
            self._carrier_slots = {
                carrier_id: i for i, carrier_id in enumerate(self.carrier_ids)
            }
        return self._carrier_slots

    def has_parameter(self, name: str) -> bool:
        return name in self.parameters

    def parameter(self, name: str) -> ParameterColumns:
        try:
            return self.parameters[name]
        except KeyError:
            raise RecommendationError(
                f"parameter {name} is not encoded in this columnar snapshot"
            ) from None

    def n_attributes(self) -> int:
        return self.codes.shape[1]

    def row_codes(self, name: str) -> np.ndarray:
        """The encoded sample-attribute matrix for one parameter.

        Singular parameters: one row per configured carrier.  Pair-wise:
        own attributes then neighbor attributes, matching the layout of
        ``AuricEngine.pair_row``.
        """
        columns = self.parameter(name)
        own = self.codes[columns.sources]
        if not columns.pairwise:
            return own
        return np.concatenate((own, self.codes[columns.neighbors]), axis=1)

    def column_vocab(self, name: str, column: int) -> List[AttributeValue]:
        """The vocab of one row column (own/neighbor halves share)."""
        return self.vocabs[column % self.n_attributes()]

    def column_sizes(self, name: str) -> List[int]:
        """Per-row-column vocab sizes, aligned with :meth:`row_codes`."""
        sizes = [len(vocab) for vocab in self.vocabs]
        if self.parameter(name).pairwise:
            return sizes + sizes
        return sizes

    def decode_cell(
        self, name: str, columns: Sequence[int], key: int
    ) -> Tuple[AttributeValue, ...]:
        """Decode one packed cell key back to its raw attribute values."""
        sizes = self.column_sizes(name)
        codes = unpack_key(key, columns, sizes)
        return tuple(
            self.column_vocab(name, col)[code]
            for col, code in zip(columns, codes)
        )

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable form (serve artifacts)."""
        from repro.dataio.keys import carrier_key_to_str

        return {
            "carrier_ids": [carrier_key_to_str(c) for c in self.carrier_ids],
            "codes": self.codes.tolist(),
            "vocabs": [list(vocab) for vocab in self.vocabs],
            "parameters": [
                columns.to_dict() for _, columns in sorted(self.parameters.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ColumnarSnapshot":
        from repro.dataio.keys import carrier_key_from_str

        return cls(
            carrier_ids=[carrier_key_from_str(t) for t in payload["carrier_ids"]],
            codes=np.asarray(payload["codes"], dtype=np.int32),
            vocabs=[list(vocab) for vocab in payload["vocabs"]],
            parameters={
                columns["parameter"]: ParameterColumns.from_dict(columns)
                for columns in payload["parameters"]
            },
        )

    # -- pool transport ---------------------------------------------------

    def _arrays(self) -> List[Tuple[str, Optional[str], np.ndarray]]:
        """Every numpy buffer with its (attribute, parameter) address."""
        arrays: List[Tuple[str, Optional[str], np.ndarray]] = [
            ("codes", None, self.codes)
        ]
        for name, columns in self.parameters.items():
            arrays.append(("sources", name, columns.sources))
            if columns.neighbors is not None:
                arrays.append(("neighbors", name, columns.neighbors))
            arrays.append(("label_codes", name, columns.label_codes))
        return arrays

    def __getstate__(self) -> Dict:
        from repro.parallel import shm

        state = {
            "carrier_ids": self.carrier_ids,
            "vocabs": self.vocabs,
            "parameters": {
                name: {
                    "parameter": columns.parameter,
                    "pairwise": columns.pairwise,
                    "label_vocab": columns.label_vocab,
                }
                for name, columns in self.parameters.items()
            },
        }
        arrays = self._arrays()
        backing = getattr(self, "_backing", None)
        if backing is not None and all(
            backing.arrays.get((field, name)) is array
            for field, name, array in arrays
        ):
            # Every buffer is still the store file's mapped view: ship a
            # (path, layouts) reference and let the consumer re-map the
            # file — no copy on either side, pages shared host-wide.
            state["mmap_path"] = backing.path
            state["mmap_layouts"] = [
                (field, name, backing.layouts[(field, name)])
                for field, name, _ in arrays
            ]
            return state
        segment = None
        if shm.exporting():
            total = 0
            for _, _, array in arrays:
                total = shm.aligned(total) + array.nbytes
            segment = shm.create_segment(total)
        if segment is None:
            # Plain pickle: serial paths, fork pools, shm unavailable.
            state["arrays"] = [
                (field, name, array) for field, name, array in arrays
            ]
            return state
        offset = 0
        layouts = []
        for field, name, array in arrays:
            offset = shm.aligned(offset)
            layout = shm.write_array(segment, array, offset)
            layouts.append((field, name, layout))
            offset += array.nbytes
        state["shm_name"] = segment.name
        state["shm_layouts"] = layouts
        return state

    def __setstate__(self, state: Dict) -> None:
        self.carrier_ids = state["carrier_ids"]
        self.vocabs = state["vocabs"]
        self._carrier_slots = None
        self._shm_segment = None
        self._backing = None
        meta = state["parameters"]
        buffers: Dict[Tuple[str, Optional[str]], np.ndarray] = {}
        if "mmap_path" in state:
            from repro.parallel import shm

            mapped = shm.map_file(state["mmap_path"])
            layouts: Dict[Tuple[str, Optional[str]], shm.SegmentLayout] = {}
            for field, name, layout in state["mmap_layouts"]:
                layouts[(field, name)] = layout
                buffers[(field, name)] = mapped.read(layout)
            # Re-attach the backing so onward pickles (nested pools)
            # stay (path, layouts) references too.
            self._backing = shm.FileBacking(
                path=state["mmap_path"],
                mapped=mapped,
                layouts=layouts,
                arrays=dict(buffers),
            )
        elif "shm_name" in state:
            from repro.parallel import shm

            segment = shm.attach_segment(state["shm_name"])
            self._shm_segment = segment  # keep the mapping alive
            for field, name, layout in state["shm_layouts"]:
                buffers[(field, name)] = shm.read_array(segment, layout)
        else:
            for field, name, array in state["arrays"]:
                buffers[(field, name)] = array
        self.codes = buffers[("codes", None)]
        self.parameters = {}
        for name, columns_meta in meta.items():
            self.parameters[name] = ParameterColumns(
                parameter=columns_meta["parameter"],
                pairwise=columns_meta["pairwise"],
                sources=buffers[("sources", name)],
                neighbors=buffers.get(("neighbors", name)),
                label_codes=buffers[("label_codes", name)],
                label_vocab=columns_meta["label_vocab"],
            )
