"""Recommendation request/result types.

This module is the single vocabulary every recommendation entry point
speaks: the engine (:meth:`repro.core.auric.AuricEngine.handle`), the
launch pipeline (:meth:`repro.core.pipeline.RecommendationPipeline.handle`)
and the long-lived service
(:meth:`repro.serve.service.RecommendationService.handle`) all accept a
:class:`RecommendRequest` and return a :class:`RecommendResult`.  The
older per-layer positional signatures are **retired**: calling one
raises :class:`RetiredSignatureError` naming the unified replacement
(they spent a deprecation cycle as warning shims first; see
``docs/serving.md`` for the migration table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, NoReturn, Optional, Tuple

from repro.netmodel.attributes import CarrierAttributes
from repro.netmodel.identifiers import CarrierId, ENodeBId
from repro.obs.provenance import ResultExplanation
from repro.types import ParameterValue


class RetiredSignatureError(TypeError):
    """A retired legacy entry point was called.

    The per-layer positional recommendation signatures went through a
    deprecation-warning cycle and are now removed; the error message
    names the unified replacement.
    """


def reject_retired_signature(old: str, new: str) -> NoReturn:
    """Raise the standard error for a retired legacy entry point."""
    raise RetiredSignatureError(
        f"{old} was retired; use {new} with a RecommendRequest "
        f"(see docs/serving.md for the migration table)"
    )


@dataclass(frozen=True)
class ParameterRecommendation:
    """Auric's recommendation for one parameter on one target.

    ``scope`` records which vote produced the value: ``"local"`` (1-hop
    X2 voting), ``"global"`` (network-wide voting) or ``"rulebook"``
    (cold-start fallback to the operational rule-book).  ``support`` is
    the winning value's share of the vote, ``matched`` the number of
    carriers that voted.  ``confident`` is True when support reaches the
    engine's threshold (75% in the paper).

    ``votes`` is the full vote distribution (winner first) as
    ``(value, weight)`` pairs.  It is captured only when the request
    asked for provenance (``RecommendRequest.explain``); the hot voting
    path leaves it empty.
    """

    parameter: str
    value: ParameterValue
    support: float
    matched: float
    confident: bool
    scope: str
    dependent_attributes: Tuple[str, ...] = ()
    votes: Tuple[Tuple[ParameterValue, float], ...] = ()

    def __str__(self) -> str:
        marker = "" if self.confident else " (low support)"
        return (
            f"{self.parameter} = {self.value!r} "
            f"[{self.scope}, {self.support:.0%} of {self.matched:g}]{marker}"
        )


@dataclass
class CarrierRecommendation:
    """The full set of parameter recommendations for one carrier."""

    target: str
    recommendations: Dict[str, ParameterRecommendation] = field(default_factory=dict)

    def add(self, recommendation: ParameterRecommendation) -> None:
        self.recommendations[recommendation.parameter] = recommendation

    def value_map(self, confident_only: bool = False) -> Dict[str, ParameterValue]:
        """parameter → value, optionally restricted to confident votes."""
        return {
            name: rec.value
            for name, rec in self.recommendations.items()
            if rec.confident or not confident_only
        }

    def mismatches_against(
        self, current: Mapping[str, ParameterValue]
    ) -> List[ParameterRecommendation]:
        """Recommendations that differ from the current configuration."""
        return [
            rec
            for name, rec in sorted(self.recommendations.items())
            if name in current and current[name] != rec.value
        ]

    def __len__(self) -> int:
        return len(self.recommendations)

    def __str__(self) -> str:
        lines = [f"recommendations for {self.target}:"]
        lines.extend(f"  {rec}" for _, rec in sorted(self.recommendations.items()))
        return "\n".join(lines)


@dataclass(frozen=True)
class RecommendRequest:
    """One recommendation query, understood by every entry point.

    The target is either a genuinely *new* carrier (``attributes`` set,
    optionally with a launch ``enodeb_id`` and/or explicit ANR
    ``neighbor_carriers`` for local voting) or an *existing* carrier
    (``carrier_id`` set — its attributes and X2 neighborhood come from
    the network snapshot, and ``leave_one_out`` excludes its own
    configured values from the vote, the paper's evaluation
    methodology).

    ``parameters`` restricts the query (None = the layer's default set);
    ``include_enumerations`` lets layers with a rule-book also fill
    enumeration parameters; ``local=False`` forces network-wide voting.
    ``explain=True`` asks the serving layer to attach a
    :class:`~repro.obs.provenance.ResultExplanation` — the chi-square
    dependencies, vote distribution and serving disposition behind every
    recommended value — to the result.
    """

    attributes: Optional[CarrierAttributes] = None
    carrier_id: Optional[CarrierId] = None
    enodeb_id: Optional[ENodeBId] = None
    neighbor_carriers: Tuple[CarrierId, ...] = ()
    parameters: Optional[Tuple[str, ...]] = None
    include_enumerations: bool = True
    local: bool = True
    leave_one_out: bool = False
    explain: bool = False

    def __post_init__(self) -> None:
        if (self.attributes is None) == (self.carrier_id is None):
            raise ValueError(
                "exactly one of attributes (new carrier) or carrier_id "
                "(existing carrier) must identify the target"
            )
        if self.leave_one_out and self.carrier_id is None:
            raise ValueError(
                "leave_one_out only applies to existing-carrier targets"
            )

    @classmethod
    def from_new_carrier(
        cls,
        request,
        parameters: Optional[Tuple[str, ...]] = None,
        include_enumerations: bool = True,
        local: bool = True,
    ) -> "RecommendRequest":
        """Adapt a legacy :class:`~repro.core.pipeline.NewCarrierRequest`
        (or anything with its attributes/enodeb_id/neighbor_carriers
        shape) to the unified request type."""
        return cls(
            attributes=request.attributes,
            enodeb_id=request.enodeb_id,
            neighbor_carriers=tuple(request.neighbor_carriers),
            parameters=tuple(parameters) if parameters is not None else None,
            include_enumerations=include_enumerations,
            local=local,
        )

    def label(self) -> str:
        if self.carrier_id is not None:
            return str(self.carrier_id)
        if self.enodeb_id is not None:
            return f"new-carrier@{self.enodeb_id}"
        return "new-carrier"


@dataclass
class RecommendResult:
    """What a recommendation entry point answered, plus provenance.

    ``source`` names the layer that served the query ("engine",
    "pipeline" or "service"), ``duration_s`` its wall-clock cost, and
    ``exclude`` the leave-one-out key (if any) that was withheld from
    the electorate.  ``explain`` carries the per-parameter provenance
    records when the request asked for them (None otherwise).
    ``generation`` is the serving snapshot generation that answered
    (service layer only; None elsewhere) — under concurrent snapshot
    refresh it always matches the engine that actually voted, because
    the service reads both from one immutable state object.
    """

    request: RecommendRequest
    recommendation: CarrierRecommendation
    source: str = ""
    duration_s: float = 0.0
    exclude: Optional[Hashable] = None
    explain: Optional[ResultExplanation] = None
    generation: Optional[int] = None

    @property
    def parameters(self) -> Tuple[str, ...]:
        return tuple(sorted(self.recommendation.recommendations))

    def scope_counts(self) -> Dict[str, int]:
        """How many parameters each vote scope answered."""
        counts: Dict[str, int] = {}
        for rec in self.recommendation.recommendations.values():
            counts[rec.scope] = counts.get(rec.scope, 0) + 1
        return counts

    def value_map(self, confident_only: bool = False) -> Dict[str, ParameterValue]:
        return self.recommendation.value_map(confident_only)

    def __len__(self) -> int:
        return len(self.recommendation)

    def __str__(self) -> str:
        return str(self.recommendation)
