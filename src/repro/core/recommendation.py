"""Recommendation result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.types import ParameterValue


@dataclass(frozen=True)
class ParameterRecommendation:
    """Auric's recommendation for one parameter on one target.

    ``scope`` records which vote produced the value: ``"local"`` (1-hop
    X2 voting), ``"global"`` (network-wide voting) or ``"rulebook"``
    (cold-start fallback to the operational rule-book).  ``support`` is
    the winning value's share of the vote, ``matched`` the number of
    carriers that voted.  ``confident`` is True when support reaches the
    engine's threshold (75% in the paper).
    """

    parameter: str
    value: ParameterValue
    support: float
    matched: float
    confident: bool
    scope: str
    dependent_attributes: Tuple[str, ...] = ()

    def __str__(self) -> str:
        marker = "" if self.confident else " (low support)"
        return (
            f"{self.parameter} = {self.value!r} "
            f"[{self.scope}, {self.support:.0%} of {self.matched:g}]{marker}"
        )


@dataclass
class CarrierRecommendation:
    """The full set of parameter recommendations for one carrier."""

    target: str
    recommendations: Dict[str, ParameterRecommendation] = field(default_factory=dict)

    def add(self, recommendation: ParameterRecommendation) -> None:
        self.recommendations[recommendation.parameter] = recommendation

    def value_map(self, confident_only: bool = False) -> Dict[str, ParameterValue]:
        """parameter → value, optionally restricted to confident votes."""
        return {
            name: rec.value
            for name, rec in self.recommendations.items()
            if rec.confident or not confident_only
        }

    def mismatches_against(
        self, current: Mapping[str, ParameterValue]
    ) -> List[ParameterRecommendation]:
        """Recommendations that differ from the current configuration."""
        return [
            rec
            for name, rec in sorted(self.recommendations.items())
            if name in current and current[name] != rec.value
        ]

    def __len__(self) -> int:
        return len(self.recommendations)

    def __str__(self) -> str:
        lines = [f"recommendations for {self.target}:"]
        lines.extend(f"  {rec}" for _, rec in sorted(self.recommendations.items()))
        return "\n".join(lines)
