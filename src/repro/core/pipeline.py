"""End-to-end recommendation pipeline for genuinely new carriers.

A *new* carrier is not yet in the network snapshot: it has attributes
(known at activation time, section 3) and a launch location — from which
its future X2 neighborhood can be predicted (co-sited carriers plus
carriers on nearby eNodeBs).  The pipeline runs the Auric engine for
every range parameter (local vote first, global fallback) and fills
enumeration parameters and cold-start cases from the operational
rule-book, exactly the deployment behaviour described in sections 5-6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, NoReturn, Optional, Set, Tuple

from repro.config.rulebook import RuleBook
from repro.core.auric import AuricEngine
from repro.core.recommendation import (
    CarrierRecommendation,
    ParameterRecommendation,
    RecommendRequest,
    RecommendResult,
    reject_retired_signature,
)
from repro.exceptions import RecommendationError
from repro.netmodel.attributes import CarrierAttributes
from repro.netmodel.identifiers import CarrierId, ENodeBId
from repro.obs import tracing
from repro.obs.provenance import ResultExplanation


@dataclass(frozen=True)
class NewCarrierRequest:
    """Everything known about a carrier at launch time."""

    attributes: CarrierAttributes
    #: The eNodeB the carrier is installed on (its co-sited and X2
    #: neighbor carriers become the local voters).
    enodeb_id: Optional[ENodeBId] = None
    #: Explicit neighbor carriers, if ANR data is already available.
    neighbor_carriers: Tuple[CarrierId, ...] = ()

    def label(self) -> str:
        if self.enodeb_id is not None:
            return f"new-carrier@{self.enodeb_id}"
        return "new-carrier"


def resolve_neighborhood(
    engine: AuricEngine, request: NewCarrierRequest
) -> Set[CarrierId]:
    """The local voters for a new-carrier request: its explicit ANR
    neighbors plus, when the eNodeB is known, the co-sited carriers and
    their X2 neighborhoods (shared with :mod:`repro.serve.service`)."""
    return engine.request_neighborhood(request)


def default_parameter_names(
    catalog, rulebook: Optional[RuleBook], include_enumerations: bool
) -> List[str]:
    """The parameter set a rule-book-backed layer serves by default:
    every singular range parameter, plus the singular enumerations when
    a rule-book can answer them (shared by pipeline and service)."""
    names = [s.name for s in catalog.singular_parameters()]
    if include_enumerations and rulebook is not None:
        names += [
            s.name
            for s in catalog.enumeration_parameters()
            if s.kind.value == "singular"
        ]
    return names


class RecommendationPipeline:
    """Auric engine + rule-book fallback, packaged for launch workflows."""

    def __init__(self, engine: AuricEngine, rulebook: Optional[RuleBook] = None):
        self.engine = engine
        self.rulebook = rulebook

    def _neighborhood(self, request: NewCarrierRequest) -> Set[CarrierId]:
        return resolve_neighborhood(self.engine, request)

    def handle(self, request: RecommendRequest) -> RecommendResult:
        """Serve one unified request: engine vote with rule-book fallback.

        This is the canonical entry point; the retired positional
        :meth:`recommend` signature raises
        :class:`~repro.core.recommendation.RetiredSignatureError`.
        """
        started = time.perf_counter()
        with tracing.span("pipeline.handle", target=request.label()) as sp:
            catalog = self.engine.catalog
            if request.parameters is not None:
                names = list(request.parameters)
            else:
                names = default_parameter_names(
                    catalog, self.rulebook, request.include_enumerations
                )
            sp.set("parameters", len(names))
            attributes, row, neighborhood, exclude = self.engine.resolve_request(
                request
            )
            result = CarrierRecommendation(target=request.label())
            fallback_reasons: Dict[str, str] = {}
            previous_capture = self.engine._capture_votes
            self.engine._capture_votes = request.explain or previous_capture
            try:
                for name in names:
                    spec = catalog.spec(name)
                    if spec.is_range and name in self.engine.fitted_parameters():
                        try:
                            if neighborhood:
                                rec = self.engine.recommend_local(
                                    name, row, neighborhood, exclude=exclude
                                )
                            else:
                                rec = self.engine.recommend_global(
                                    name, row, exclude=exclude
                                )
                            result.add(rec)
                            continue
                        except RecommendationError as error:
                            # fall through to the rule-book
                            fallback_reasons[name] = f"vote failed: {error}"
                    elif spec.is_range:
                        fallback_reasons[name] = "parameter not fitted (cold start)"
                    else:
                        fallback_reasons[name] = "enumeration parameter (rule-book)"
                    if self.rulebook is None:
                        raise RecommendationError(
                            f"cannot recommend {name}: not fitted and no "
                            f"rule-book fallback"
                        )
                    result.add(
                        ParameterRecommendation(
                            parameter=name,
                            value=self.rulebook.value_for(name, attributes),
                            support=1.0,
                            matched=0.0,
                            confident=False,
                            scope="rulebook",
                        )
                    )
            finally:
                self.engine._capture_votes = previous_capture
            explanation = None
            if request.explain:
                explanation = ResultExplanation(
                    target=request.label(),
                    source="pipeline",
                    lineage=self.engine.lineage,
                )
                context = tracing.current_context()
                if context is not None:
                    explanation.trace_id = context[0]
                for name, rec in result.recommendations.items():
                    explanation.parameters[name] = self.engine.explain_parameter(
                        rec,
                        row,
                        neighborhood=neighborhood if request.local else None,
                        fallback_reason=fallback_reasons.get(name),
                    )
            return RecommendResult(
                request=request,
                recommendation=result,
                source="pipeline",
                duration_s=time.perf_counter() - started,
                exclude=exclude,
                explain=explanation,
            )

    def recommend(self, *args, **kwargs) -> NoReturn:
        """Retired legacy entry point — use :meth:`handle`.

        The positional ``recommend(NewCarrierRequest, ...)`` signature
        spent a deprecation cycle as a warning shim and is now removed;
        build a :class:`~repro.core.recommendation.RecommendRequest`
        (``RecommendRequest.from_new_carrier`` adapts the old request
        type) and call :meth:`handle`.
        """
        reject_retired_signature(
            "RecommendationPipeline.recommend(NewCarrierRequest, ...)",
            "RecommendationPipeline.handle",
        )
