"""Shared light-weight types used across the library."""

from __future__ import annotations

import enum
from typing import Union

#: A configuration parameter value.  Range parameters carry numeric values
#: (quantized to their step size); enumeration parameters carry strings or
#: booleans.  Values are hashable so they can be vote-counted and used as
#: classification labels.
ParameterValue = Union[int, float, str, bool]

#: Attribute values are categorical (strings) or small integers.
AttributeValue = Union[str, int]


class Band(enum.Enum):
    """LTE frequency band groups used for carrier layer management.

    The paper (section 2.1) distinguishes low band (broad reach, higher
    interference exposure), mid band and high band; users are steered to
    high band first and spill down as it congests.
    """

    LOW = "LB"
    MID = "MB"
    HIGH = "HB"


class Morphology(enum.Enum):
    """Geographic morphology of the area a carrier serves (Table 1)."""

    URBAN = "urban"
    SUBURBAN = "suburban"
    RURAL = "rural"


class CarrierType(enum.Enum):
    """Carrier service type (Table 1)."""

    STANDARD = "standard"
    FIRSTNET = "FirstNet"
    NB_IOT = "NB-IoT"


class Vendor(enum.Enum):
    """Radio equipment vendor.  Parameter naming is vendor-specific, so the
    recommendation problem is formulated independently per vendor (section
    2.2)."""

    VENDOR_A = "VendorA"
    VENDOR_B = "VendorB"
    VENDOR_C = "VendorC"


class Timezone(enum.Enum):
    """US timezones used to pick the four in-depth markets (Table 3)."""

    EASTERN = "Eastern"
    CENTRAL = "Central"
    MOUNTAIN = "Mountain"
    PACIFIC = "Pacific"
