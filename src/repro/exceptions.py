"""Exception hierarchy for the Auric reproduction.

Every error raised by this library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value violates its parameter specification."""


class UnknownParameterError(ConfigurationError):
    """A parameter name is not present in the parameter catalog."""


class UnknownCarrierError(ReproError):
    """A carrier identifier is not present in the network."""


class UnknownMarketError(ReproError):
    """A market identifier is not present in the network."""


class NotFittedError(ReproError):
    """A learner was asked to predict before :meth:`fit` was called."""


class EncodingError(ReproError):
    """One-hot encoding was asked to transform an unseen category."""


class GenerationError(ReproError):
    """The synthetic data generator was given inconsistent settings."""


class RecommendationError(ReproError):
    """The recommendation engine could not produce a recommendation."""


class ColdStartError(RecommendationError):
    """No similar carriers exist for the new carrier's attribute values.

    This is the "bootstrapping configuration for the unobserved" limitation
    discussed in section 6 of the paper: a carrier with never-seen attribute
    values cannot be matched against historical data.
    """


class OperationalError(ReproError):
    """An error in the operational (EMS / SmartLaunch) layer."""


class CarrierLockedError(OperationalError):
    """An EMS operation required an unlocked carrier (or vice versa)."""


class EMSTimeoutError(OperationalError):
    """The element management system timed out executing a change batch."""
