"""Command-line interface.

Usage::

    python -m repro list
    python -m repro generate --workload four-markets --scale 0.02 --seed 7
    python -m repro experiment fig4 --jobs 4
    python -m repro experiment table4 -o table4.txt --format json
    python -m repro serve-batch snapshot.json requests.json \
        --parameters pMax,qHyst --save-artifact engine.json -j 2

``experiment`` accepts every id in :data:`repro.experiments.EXPERIMENTS`;
results render in the paper's table/series layout.  ``serve-batch``
loads a snapshot (``repro.dataio`` format), fits or loads a persistent
engine artifact, and answers a batch of new-carrier requests through
:class:`repro.serve.RecommendationService`, printing each
recommendation and the service metrics.

The work-producing subcommands share one option vocabulary:

* ``--jobs/-j N`` fans engine fitting and LOO evaluation across N
  worker processes (:mod:`repro.parallel`; ``0`` = all cores).  Results
  are identical to ``-j 1`` by construction.  ``generate`` accepts the
  flag for interface consistency, but generation itself is
  single-process.
* ``--seed`` propagates into workload construction (``generate``,
  ``experiment``) and engine fitting (``serve-batch``) so runs are
  reproducible end-to-end from the command line.
* ``--format table`` (default) renders the human tables; ``--format
  json`` emits one machine-readable JSON document instead.
* ``-o/--output`` additionally writes whatever was printed to a file.
* ``--trace PATH`` exports every tracing span the run produced (master
  process *and* pool workers, re-parented into one trace) as JSON
  lines; ``--log-level``/``-v`` turn on key=value structured logging.

``serve`` boots the sharded asyncio HTTP front end
(:mod:`repro.serve.front`) over a workload or snapshot — consistent-hash
routing, micro-batch coalescing, admission control, zero-downtime
``/admin/swap`` — and either serves until interrupted or, with
``--storm N``, fires an audited self-test storm (optionally hot-swapping
mid-run via ``--swap-at``) and exits 0 only when every answer was
correct.  With ``--tracing`` the server answers W3C ``traceparent``,
keeps a span ring behind ``/debug/trace/<id>``, and the storm self-test
additionally audits one request's span tree end to end; the black-box
flight recorder (``/debug/flight``, dump on SLO breach / shed burst /
exit) is on unless ``--no-flight``.  ``trace <trace_id>`` renders a
trace's span tree from a ``--trace`` JSONL export (``--input``) or a
running front end (``--url``).

``explain`` answers one leave-one-out recommendation with full
provenance — the chi-square-selected attributes (with achieved
p-values), the vote distribution and the serving disposition behind
every value.  ``metrics`` runs a small serving exercise against the
unified metrics registry and prints the registry in Prometheus text
(or JSON) exposition.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import List, Optional

from repro.datagen import four_markets_workload, full_network_workload, tiny_workload
from repro.experiments import EXPERIMENTS, run_experiment
from repro.rng import DEFAULT_SEED

_WORKLOADS = {
    "tiny": lambda scale, seed: tiny_workload(seed=seed),
    "four-markets": lambda scale, seed: four_markets_workload(scale=scale, seed=seed),
    "full-network": lambda scale, seed: full_network_workload(scale=scale, seed=seed),
}


def _build_workload(name: str, scale: Optional[float], seed: Optional[int]):
    return _WORKLOADS[name](scale, seed if seed is not None else DEFAULT_SEED)


def _common_options() -> argparse.ArgumentParser:
    """The option vocabulary every work-producing subcommand shares."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for fitting/evaluation (0 = all cores, "
        "default 1; results are identical at any value)",
    )
    common.add_argument(
        "--seed", type=int, default=None,
        help="random seed (default: the library seed)",
    )
    common.add_argument(
        "--no-columnar", action="store_true",
        help="pin the engine to the legacy tuple/Counter path instead "
        "of the columnar fast paths (results are identical either way; "
        "A/B escape hatch)",
    )
    common.add_argument(
        "--store", choices=("memory", "file", "mmap"), default=None,
        help="columnar snapshot store backend (default memory; file/"
        "mmap persist the encoded snapshot next to saved artifacts so "
        "cold starts open instead of re-encoding — see "
        "docs/performance.md)",
    )
    common.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    common.add_argument(
        "-o", "--output", default=None,
        help="also write the printed output to this file",
    )
    common.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export tracing spans (master + pool workers) to this "
        "JSONL file",
    )
    common.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append engine-lifecycle journal records (fit, refresh, "
        "hot swap, rollback, ...) to this JSONL file; read it back "
        "with `repro timeline`",
    )
    common.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error", "critical"),
        help="enable key=value structured logging at this level",
    )
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="shortcut for --log-level info (-vv: debug)",
    )
    return common


def _workload_options() -> argparse.ArgumentParser:
    workload = argparse.ArgumentParser(add_help=False)
    workload.add_argument("--scale", type=float, default=None)
    return workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auric (SIGCOMM 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_options()
    workload = _workload_options()

    sub.add_parser("list", help="list available experiments")

    generate = sub.add_parser(
        "generate",
        parents=[common, workload],
        help="generate a synthetic workload",
    )
    generate.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="four-markets",
    )

    experiment = sub.add_parser(
        "experiment",
        parents=[common, workload],
        help="run one paper experiment",
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default=None,
        help="override the experiment's default workload",
    )

    serve = sub.add_parser(
        "serve-batch",
        parents=[common],
        help="serve a batch of new-carrier requests from a snapshot",
    )
    serve.add_argument("snapshot", help="snapshot JSON (repro.dataio format)")
    serve.add_argument("requests", help="requests JSON (list or {'requests': [...]})")
    serve.add_argument(
        "--parameters", default=None,
        help="comma-separated parameters to serve "
        "(default: every singular range parameter)",
    )
    serve.add_argument(
        "--artifact", default=None,
        help="load this fitted engine artifact instead of fitting",
    )
    serve.add_argument(
        "--save-artifact", default=None,
        help="persist the fitted engine artifact here",
    )
    serve.add_argument(
        "--no-verify-artifact", action="store_true",
        help="serve an artifact even if it was fitted on another snapshot",
    )
    serve.add_argument("--cache-size", type=int, default=None)
    serve.add_argument(
        "--no-batch-planner", action="store_true",
        help="pin the serial per-request loop instead of the "
        "one-vote-per-distinct-cell batch planner (A/B escape hatch)",
    )

    front = sub.add_parser(
        "serve",
        parents=[common, workload],
        help="run the sharded HTTP serving front end (optionally fire a "
        "self-test storm and exit)",
    )
    front.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="tiny",
        help="workload to fit and serve (default: tiny)",
    )
    front.add_argument(
        "--snapshot", default=None,
        help="snapshot JSON (repro.dataio format) to serve instead of a "
        "generated workload",
    )
    front.add_argument(
        "--parameters", default="pMax,inactivityTimer",
        help="comma-separated singular parameters to serve",
    )
    front.add_argument("--host", default="127.0.0.1")
    front.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral; the bound port is printed)",
    )
    front.add_argument(
        "--shards", type=int, default=2,
        help="engine shards behind the consistent-hash ring (default 2)",
    )
    front.add_argument(
        "--max-inflight", type=int, default=512,
        help="global admission ceiling before 503 shedding (default 512)",
    )
    front.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="micro-batch coalescing window in milliseconds (default 2.0)",
    )
    front.add_argument(
        "--max-batch", type=int, default=32,
        help="flush a micro-batch at this size regardless of the window",
    )
    front.add_argument(
        "--max-queue", type=int, default=256,
        help="per-shard batch queue bound (default 256)",
    )
    front.add_argument("--cache-size", type=int, default=None)
    front.add_argument(
        "--no-batch-planner", action="store_true",
        help="pin shard workers to the serial per-request loop instead "
        "of the one-vote-per-distinct-cell batch planner",
    )
    front.add_argument(
        "--storm", type=int, default=None, metavar="N",
        help="self-test mode: fire N audited requests at the booted "
        "server, print the report and exit (0 iff error rate is 0)",
    )
    front.add_argument(
        "--connections", type=int, default=8,
        help="concurrent storm connections (default 8)",
    )
    front.add_argument(
        "--swap-at", type=float, default=None, metavar="FRACTION",
        help="fire one hot swap after this fraction of the storm "
        "(e.g. 0.5; storm mode only)",
    )
    front.add_argument(
        "--tracing", action="store_true",
        help="enable in-process tracing (the span ring behind "
        "/debug/trace/<id>); storm mode additionally verifies one "
        "request's span tree end to end",
    )
    front.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="flight-recorder dump directory (default: flight-dumps)",
    )
    front.add_argument(
        "--no-flight", action="store_true",
        help="disable the black-box flight recorder",
    )

    trace = sub.add_parser(
        "trace",
        parents=[common],
        help="render one trace's span tree from a span JSONL file or a "
        "running front end",
    )
    trace.add_argument("trace_id", help="trace id (16 or 32 hex chars)")
    trace.add_argument(
        "--input", default=None, metavar="PATH",
        help="span JSONL file (a --trace export or a flight dump)",
    )
    trace.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a running front end "
        "(e.g. http://127.0.0.1:8080); queries /debug/trace/<id>",
    )

    timeline = sub.add_parser(
        "timeline",
        parents=[common],
        help="reconstruct the generation lineage (fits, refreshes, hot "
        "swaps, rollbacks) from an engine-lifecycle journal",
    )
    timeline.add_argument(
        "--check", action="store_true",
        help="exit 1 if any transition references a generation the "
        "journal never recorded (missing parent links)",
    )

    explain = sub.add_parser(
        "explain",
        parents=[common, workload],
        help="explain one leave-one-out recommendation (provenance)",
    )
    explain.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="tiny",
        help="workload to fit and explain against (default: tiny)",
    )
    explain.add_argument(
        "--parameters", default="pMax,inactivityTimer",
        help="comma-separated parameters to explain "
        "(default: pMax,inactivityTimer)",
    )
    explain.add_argument(
        "--carrier", default=None,
        help="existing carrier to explain (default: the first carrier "
        "in the snapshot); leave-one-out excludes its own values",
    )

    metrics = sub.add_parser(
        "metrics",
        parents=[common, workload],
        help="exercise the serving path and dump the metrics registry",
    )
    metrics.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="tiny",
        help="workload for the serving exercise (default: tiny)",
    )
    metrics.add_argument(
        "--parameters", default="pMax,inactivityTimer",
        help="comma-separated parameters to serve",
    )
    metrics.add_argument(
        "--requests", type=int, default=20,
        help="leave-one-out requests to serve (default: 20)",
    )

    health = sub.add_parser(
        "health",
        parents=[common, workload],
        help="serve an exercise stream and report drift / SLO / profile "
        "health (exit 0 healthy, 1 degraded, 2 failing)",
    )
    _health_options(health)

    dashboard = sub.add_parser(
        "dashboard",
        parents=[common, workload],
        help="write a static-HTML health snapshot (metrics, drift, "
        "SLOs, top profile frames)",
    )
    _health_options(dashboard)
    return parser


def _health_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``health`` and ``dashboard``."""
    parser.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="tiny",
        help="workload to fit and exercise (default: tiny)",
    )
    parser.add_argument(
        "--snapshot", default=None,
        help="snapshot JSON (repro.dataio format) to fit/serve instead "
        "of a generated workload",
    )
    parser.add_argument(
        "--parameters", default="pMax,inactivityTimer",
        help="comma-separated parameters to serve",
    )
    parser.add_argument(
        "--artifact", default=None,
        help="load this fitted engine artifact instead of fitting",
    )
    parser.add_argument(
        "--save-artifact", default=None,
        help="persist the fitted engine artifact here",
    )
    parser.add_argument(
        "--no-verify-artifact", action="store_true",
        help="serve an artifact even if it was fitted on another snapshot",
    )
    parser.add_argument(
        "--live", default=None, metavar="PATH",
        help="live snapshot JSON to score drift against (default: the "
        "served request stream itself)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="leave-one-out requests to serve (default: two passes over "
        "the carrier population — stationary by construction, and the "
        "second pass exercises the vote cache)",
    )
    parser.add_argument(
        "--shadow-targets", type=int, default=25,
        help="LOO targets per parameter for the shadow accuracy audit "
        "(0 disables; default: 25)",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the sampling wall-clock profiler",
    )
    parser.add_argument(
        "--profile-output", default=None, metavar="PATH",
        help="write flamegraph-collapsed profiler stacks here",
    )
    parser.add_argument(
        "--slo-latency-p99", type=float, default=0.1,
        help="latency SLO: p99 served-request seconds (default: 0.1)",
    )


def _engine_config(args):
    """An :class:`AuricConfig` reflecting --seed / --no-columnar /
    --store, or ``None`` when every engine option is at its default."""
    from repro.core.auric import AuricConfig

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if getattr(args, "no_columnar", False):
        kwargs["columnar"] = False
    if getattr(args, "store", None) is not None:
        kwargs["store"] = args.store
    return AuricConfig(**kwargs) if kwargs else None


def _emit(text: str, args) -> None:
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")


def _run_generate(args) -> int:
    dataset = _build_workload(args.workload, args.scale, args.seed)
    snapshot_path = None
    if args.output and args.format == "table":
        # Historical behaviour: -o on the table rendering exports the
        # snapshot itself (the JSON document goes to -o under --format
        # json instead).
        snapshot_path = args.output
    if snapshot_path:
        from repro.dataio import export_dataset_json

        export_dataset_json(dataset, snapshot_path)
    if args.format == "json":
        singular, pairwise = dataset.store.value_counts()
        document = {
            "command": "generate",
            "workload": args.workload,
            "scale": args.scale,
            "seed": args.seed if args.seed is not None else DEFAULT_SEED,
            "summary": dataset.summary(),
            "markets": len(dataset.network.markets),
            "singular_values": singular,
            "pairwise_values": pairwise,
        }
        _emit(json.dumps(document, indent=2), args)
        return 0
    print(dataset.summary())
    if snapshot_path:
        print(f"snapshot written to {snapshot_path}")
    return 0


def _run_experiment(args) -> int:
    kwargs = {}
    run = EXPERIMENTS[args.id]
    if args.workload is not None:
        kwargs["dataset"] = _build_workload(args.workload, args.scale, args.seed)
    if args.jobs != 1 and "jobs" in inspect.signature(run).parameters:
        kwargs["jobs"] = args.jobs
    result = run_experiment(args.id, **kwargs)
    text = result.render()
    if args.format == "json":
        document = {
            "command": "experiment",
            "experiment": args.id,
            "workload": args.workload,
            "jobs": args.jobs,
            "render": text,
        }
        _emit(json.dumps(document, indent=2), args)
        return 0
    _emit(text, args)
    return 0


def _run_serve_batch(args) -> int:
    # Imported lazily so `repro list` stays fast.
    from repro.config.rulebook import RuleBook
    from repro.core.auric import AuricEngine
    from repro.core.recommendation import RecommendRequest
    from repro.dataio import load_dataset_json
    from repro.serve import (
        RecommendationService,
        load_engine,
        requests_from_json,
        save_engine,
    )
    from repro.serve.service import DEFAULT_CACHE_SIZE

    from repro.exceptions import ReproError

    snapshot = load_dataset_json(args.snapshot)
    parameters = (
        [p for p in args.parameters.split(",") if p]
        if args.parameters is not None
        else None
    )
    if parameters:
        for name in parameters:
            if name not in snapshot.store.catalog:
                print(f"error: unknown parameter {name!r}", file=sys.stderr)
                return 2
            if snapshot.store.catalog.spec(name).is_pairwise:
                print(
                    f"error: {name} is pair-wise and needs a neighbor "
                    "carrier; serve-batch answers singular parameters only",
                    file=sys.stderr,
                )
                return 2

    if args.artifact is not None:
        try:
            engine = load_engine(
                args.artifact,
                snapshot.network,
                snapshot.store,
                verify_fingerprint=not args.no_verify_artifact,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                "hint: --no-verify-artifact serves an artifact fitted on "
                "another snapshot",
                file=sys.stderr,
            )
            return 2
    else:
        engine = AuricEngine(
            snapshot.network, snapshot.store, _engine_config(args)
        ).fit(parameters, jobs=args.jobs)
    if args.save_artifact is not None:
        save_engine(engine, args.save_artifact)

    service = RecommendationService(
        engine,
        rulebook=RuleBook(snapshot.store.catalog),
        cache_size=args.cache_size or DEFAULT_CACHE_SIZE,
        batch_planner=not args.no_batch_planner,
    )
    with open(args.requests) as handle:
        requests = requests_from_json(json.load(handle))
    unified = [
        RecommendRequest.from_new_carrier(
            request,
            parameters=tuple(parameters) if parameters is not None else None,
        )
        for request in requests
    ]
    results = service.handle_batch(unified)

    if args.format == "json":
        document = {
            "command": "serve-batch",
            "jobs": args.jobs,
            "results": [
                {
                    "target": result.recommendation.target,
                    "values": {
                        name: rec.value
                        for name, rec in sorted(
                            result.recommendation.recommendations.items()
                        )
                    },
                    "scopes": result.scope_counts(),
                    "duration_s": result.duration_s,
                }
                for result in results
            ],
            "metrics": service.metrics.as_dict(),
        }
        _emit(json.dumps(document, indent=2), args)
        return 0

    lines: List[str] = []
    for result in results:
        lines.append(str(result.recommendation))
    lines.append(f"service metrics: {service.metrics.summary()}")
    _emit("\n".join(lines), args)
    return 0


def _run_serve(args) -> int:
    """Boot the sharded HTTP front end; optionally storm-test it."""
    import time

    from repro.config.rulebook import RuleBook
    from repro.core.auric import AuricEngine
    from repro.core.recommendation import RecommendRequest
    from repro.dataio import load_dataset_json
    from repro.dataio.keys import carrier_key_to_str
    from repro.obs import flight, tracing
    from repro.obs import metrics as obs_metrics
    from repro.serve import RecommendationService
    from repro.serve.front import (
        FrontConfig,
        ShardSet,
        StormProfile,
        run_storm,
        serve_in_thread,
    )
    from repro.serve.service import DEFAULT_CACHE_SIZE

    if args.snapshot is not None:
        dataset = load_dataset_json(args.snapshot)
    else:
        dataset = _build_workload(args.workload, args.scale, args.seed)
    parameters = [p for p in args.parameters.split(",") if p]
    for name in parameters:
        if name not in dataset.store.catalog:
            print(f"error: unknown parameter {name!r}", file=sys.stderr)
            return 2
        if dataset.store.catalog.spec(name).is_pairwise:
            print(
                f"error: {name} is pair-wise; the front end serves "
                "singular parameters",
                file=sys.stderr,
            )
            return 2

    obs_metrics.enable()
    if args.tracing and not tracing.active():
        # No exporters here: the front end attaches its span ring (the
        # /debug/trace store) at start; --trace adds a JSONL file.
        tracing.configure([])
    recorder = None
    if not args.no_flight:
        recorder = flight.configure(
            dump_dir=args.flight_dir or "flight-dumps"
        )
        recorder.arm_exit_dump()
    engine = AuricEngine(
        dataset.network, dataset.store, _engine_config(args)
    ).fit(parameters, jobs=args.jobs)
    shard_set = ShardSet(
        engine,
        RuleBook(dataset.store.catalog),
        shards=args.shards,
        cache_size=args.cache_size or DEFAULT_CACHE_SIZE,
        max_queue=args.max_queue,
        batch_planner=not args.no_batch_planner,
    )
    config = FrontConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        max_inflight=args.max_inflight,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        cache_size=args.cache_size or DEFAULT_CACHE_SIZE,
        parameters=tuple(parameters),
    )
    handle = serve_in_thread(shard_set, config)
    try:
        print(
            f"serving on {args.host}:{handle.port} "
            f"({args.shards} shards, {len(parameters)} parameters)",
            flush=True,
        )
        if args.storm is None:
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                return 0

        # Storm self-test: audit every answer against the same engine
        # served directly, so a mid-storm hot swap that surfaced a wrong
        # or partial value would fail the run.
        carriers = sorted(dataset.store.carriers())[: max(args.connections * 4, 16)]
        payloads = [{"carrier": carrier_key_to_str(c)} for c in carriers]
        oracle = RecommendationService(engine, RuleBook(dataset.store.catalog))
        expected = []
        for carrier_id in carriers:
            result = oracle.handle(
                RecommendRequest(
                    carrier_id=carrier_id, parameters=tuple(parameters)
                )
            )
            expected.append(
                {
                    name: rec.value
                    for name, rec in result.recommendation.recommendations.items()
                }
            )
        profile = StormProfile(
            requests=args.storm,
            connections=args.connections,
            swap_at=args.swap_at,
            swap_jobs=args.jobs,
        )
        report = run_storm(
            args.host, handle.port, payloads, profile, expected
        )
        document = {"command": "serve", "storm": report.to_dict()}
        trace_ok = True
        if tracing.active() and recorder is not None:
            # End-to-end trace audit: pull one served request's trace id
            # from the flight ring and assert its span tree is complete.
            summary = _verify_storm_trace(args.host, handle.port)
            document["trace"] = summary
            trace_ok = bool(summary.get("complete"))
        _emit(json.dumps(document, indent=2), args)
        ok = report.error_rate == 0.0 and report.ok == report.sent
        return 0 if ok and trace_ok else 1
    finally:
        handle.stop()
        shard_set.stop()
        if recorder is not None:
            recorder.disarm_exit_dump()
            flight.disable()


#: The span levels one served request must traverse, front door to
#: engine; ``service.handle`` is the engine-side span.
_TRACE_LEVELS = (
    "front.request",
    "front.admission",
    "front.coalesce",
    "shard.handle",
    "service.handle",
)


def _verify_storm_trace(host: str, port: int) -> dict:
    """Reconstruct one storm request's trace via the debug endpoints.

    Returns a summary dict: the trace id, span/orphan counts, which
    :data:`_TRACE_LEVELS` showed up, and ``complete`` — true iff every
    level is present and no span is orphaned.
    """
    import http.client

    if host in ("0.0.0.0", "::"):
        host = "127.0.0.1"
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/debug/flight")
        response = conn.getresponse()
        body = json.loads(response.read())
        if response.status != 200:
            return {"error": "flight_unavailable", "complete": False}
        traced = [
            digest for digest in body.get("digests", [])
            if digest.get("status") == 200 and digest.get("trace_id")
        ]
        if not traced:
            return {"error": "no_traced_requests", "complete": False}
        trace_id = traced[-1]["trace_id"]
        conn.request("GET", f"/debug/trace/{trace_id}")
        response = conn.getresponse()
        tree = json.loads(response.read())
        if response.status != 200:
            return {
                "error": "trace_not_found",
                "trace_id": trace_id,
                "complete": False,
            }
        names = set()

        def walk(nodes):
            for node in nodes:
                names.add(node["name"])
                walk(node["children"])

        walk(tree["roots"])
        walk(tree["orphans"])
        levels = {name: name in names for name in _TRACE_LEVELS}
        return {
            "trace_id": trace_id,
            "span_count": tree["span_count"],
            "orphan_count": tree["orphan_count"],
            "levels": levels,
            "complete": tree["orphan_count"] == 0 and all(levels.values()),
        }
    finally:
        conn.close()


def _run_trace(args) -> int:
    """Render one trace's span tree (the ``repro trace <id>`` command)."""
    from repro.obs import tracing

    trace_id = args.trace_id.strip().lower()
    if args.input is None and args.url is None:
        print("error: provide --input PATH or --url URL", file=sys.stderr)
        return 2

    spans: List[dict] = []
    if args.input is not None:
        with open(args.input) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                # Flight dumps interleave meta/digest records; keep
                # only span-shaped lines.
                if "span_id" in record and "name" in record:
                    spans.append(record)
    else:
        import http.client
        from urllib.parse import urlsplit

        parts = urlsplit(
            args.url if "//" in args.url else f"http://{args.url}"
        )
        conn = http.client.HTTPConnection(
            parts.hostname, parts.port or 80, timeout=30
        )
        try:
            conn.request("GET", f"/debug/trace/{trace_id}")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        if response.status != 200:
            print(
                f"error: {body.get('error', 'trace_not_found')} "
                f"(trace {trace_id})",
                file=sys.stderr,
            )
            return 1

        def flatten(nodes):
            for node in nodes:
                children = node.pop("children", [])
                spans.append(node)
                flatten(children)

        flatten(body.get("roots", []))
        flatten(body.get("orphans", []))

    tree = tracing.assemble_trace(spans, trace_id)
    if not tree.spans:
        print(f"error: no spans for trace {trace_id}", file=sys.stderr)
        return 1
    if args.format == "json":
        _emit(json.dumps(tree.to_dict(), indent=2), args)
    else:
        _emit(tree.render(), args)
    return 0


def _run_timeline(args) -> int:
    """Render the generation DAG from a lifecycle journal
    (the ``repro timeline`` command)."""
    from repro.obs import journal as obs_journal

    if args.journal is None:
        print("error: provide --journal PATH", file=sys.stderr)
        return 2
    try:
        scan = obs_journal.read_journal(args.journal)
    except OSError as exc:
        print(f"error: cannot read journal: {exc}", file=sys.stderr)
        return 2
    if not scan.records:
        print(f"error: no journal records in {args.journal}", file=sys.stderr)
        return 1
    timeline = obs_journal.assemble_timeline(scan.records)
    if args.format == "json":
        payload = timeline.to_dict()
        payload["skipped_lines"] = scan.skipped
        _emit(json.dumps(payload, indent=2), args)
    else:
        text = timeline.render()
        if scan.skipped:
            text += f"\n({scan.skipped} corrupt line(s) skipped)"
        _emit(text, args)
    if args.check and not timeline.complete:
        print(
            f"error: {len(timeline.missing_parents)} transition(s) "
            "reference generations the journal never recorded",
            file=sys.stderr,
        )
        return 1
    return 0


def _build_service(args, parameters: List[str]):
    """Fit a service over the chosen workload (explain / metrics)."""
    from repro.config.rulebook import RuleBook
    from repro.core.auric import AuricEngine
    from repro.serve import RecommendationService

    dataset = _build_workload(args.workload, args.scale, args.seed)
    for name in parameters:
        if name not in dataset.store.catalog:
            raise SystemExit(f"error: unknown parameter {name!r}")
    engine = AuricEngine(dataset.network, dataset.store, _engine_config(args)).fit(
        parameters, jobs=args.jobs
    )
    service = RecommendationService(
        engine, rulebook=RuleBook(dataset.store.catalog)
    )
    return dataset, service


def _run_explain(args) -> int:
    from repro.core.recommendation import RecommendRequest
    from repro.dataio.keys import carrier_key_from_str

    parameters = [p for p in args.parameters.split(",") if p]
    dataset, service = _build_service(args, parameters)
    if args.carrier is not None:
        carrier_id = carrier_key_from_str(args.carrier)
    else:
        carrier_id = sorted(dataset.store.carriers())[0]
    request = RecommendRequest(
        carrier_id=carrier_id,
        parameters=tuple(parameters),
        leave_one_out=True,
        explain=True,
    )
    result = service.handle(request)
    explanation = result.explain

    if args.format == "json":
        document = {
            "command": "explain",
            "workload": args.workload,
            "carrier": str(carrier_id),
            "explanation": explanation.to_dict() if explanation else None,
        }
        _emit(json.dumps(document, indent=2), args)
        return 0
    _emit(str(explanation), args)
    return 0


def _run_metrics(args) -> int:
    from repro.core.recommendation import RecommendRequest
    from repro.obs import metrics as obs_metrics
    from repro.obs.metrics import ServiceMetrics

    # A fresh registry per run: the exposition covers exactly this
    # exercise, even when main() is driven repeatedly in-process.
    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.get_registry()
    obs_metrics.set_registry(registry)
    try:
        parameters = [p for p in args.parameters.split(",") if p]
        dataset, service = _build_service(args, parameters)
        # Route the service's own instruments into the same registry so
        # one exposition covers the whole run.
        service.metrics = ServiceMetrics(registry=registry)
        carriers = sorted(dataset.store.carriers())
        for index in range(max(args.requests, 0)):
            carrier_id = carriers[index % len(carriers)]
            service.handle(
                RecommendRequest(
                    carrier_id=carrier_id,
                    parameters=tuple(parameters),
                    leave_one_out=True,
                )
            )
    finally:
        obs_metrics.set_registry(previous)

    if args.format == "json":
        document = {"command": "metrics", "registry": registry.to_dict()}
        _emit(json.dumps(document, indent=2), args)
        return 0
    _emit(registry.to_prometheus_text().rstrip("\n"), args)
    return 0


def _collect_health(args):
    """The shared engine behind ``health`` and ``dashboard``.

    Fits (or loads) an engine, serves a leave-one-out exercise stream
    through a drift-tracking service under the sampling profiler, runs
    the shadow accuracy audit, scores drift (against ``--live`` or the
    served stream) and evaluates the stock SLOs.  Returns
    ``(HealthReport, MetricsRegistry)``.
    """
    from repro.config.rulebook import RuleBook
    from repro.core.auric import AuricEngine
    from repro.core.recommendation import RecommendRequest
    from repro.dataio import load_dataset_json
    from repro.eval.runner import EvaluationRunner
    from repro.obs import metrics as obs_metrics
    from repro.obs.health import HealthReport, attribute_distributions
    from repro.obs.profiler import SamplingProfiler
    from repro.obs.slo import SLOEngine, default_service_slos
    from repro.serve import RecommendationService, load_engine, save_engine
    from repro.obs.metrics import ServiceMetrics

    if args.snapshot is not None:
        dataset = load_dataset_json(args.snapshot)
    else:
        dataset = _build_workload(args.workload, args.scale, args.seed)
    parameters = [p for p in args.parameters.split(",") if p]
    for name in parameters:
        if name not in dataset.store.catalog:
            raise SystemExit(f"error: unknown parameter {name!r}")

    # A fresh registry, installed globally for the duration so the
    # drift/shadow-audit gauges and the service instruments land in one
    # exposition the SLO rules can read.
    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.get_registry()
    obs_metrics.set_registry(registry)
    try:
        if args.artifact is not None:
            engine = load_engine(
                args.artifact,
                dataset.network,
                dataset.store,
                verify_fingerprint=not args.no_verify_artifact,
            )
        else:
            engine = AuricEngine(
                dataset.network, dataset.store, _engine_config(args)
            ).fit(parameters, jobs=args.jobs)
        if args.save_artifact is not None:
            save_engine(engine, args.save_artifact)

        service = RecommendationService(
            engine, rulebook=RuleBook(dataset.store.catalog)
        )
        service.metrics = ServiceMetrics(registry=registry)
        service.enable_drift_tracking(sample_every=1)

        notes: List[str] = []
        profiler = None
        if not args.no_profile:
            profiler = SamplingProfiler(interval=0.002).start()
        try:
            carriers = sorted(dataset.store.carriers())
            # Default: two passes over the population — the stream then
            # matches the fitted distributions exactly (stationary by
            # construction) and the second pass exercises the vote cache.
            requests = (
                args.requests
                if args.requests is not None
                else 2 * len(carriers)
            )
            for index in range(max(requests, 0)):
                service.handle(
                    RecommendRequest(
                        carrier_id=carriers[index % len(carriers)],
                        parameters=tuple(parameters),
                        leave_one_out=True,
                    )
                )
            if args.shadow_targets > 0:
                runner = EvaluationRunner(
                    dataset,
                    seed=args.seed if args.seed is not None else DEFAULT_SEED,
                )
                runner.shadow_audit(
                    engine,
                    parameters,
                    max_targets_per_parameter=args.shadow_targets,
                )
        finally:
            if profiler is not None:
                profiler.stop()

        if args.live is not None:
            live = load_dataset_json(args.live)
            drift = service.drift_report(
                attribute_distributions(live.network)
            )
            notes.append(f"drift scored against live snapshot {args.live}")
        else:
            drift = service.drift_report()
            notes.append(
                f"drift scored over the served stream "
                f"({service.drift_window.sampled} sampled requests)"
            )
        if drift is None:
            notes.append(
                "no drift baseline (pre-v3 artifact?) — drift not scored"
            )

        slo = SLOEngine(
            default_service_slos(latency_p99=args.slo_latency_p99)
        ).evaluate(registry)

        profile = ()
        if profiler is not None:
            profile = profiler.top(10)
            if args.profile_output is not None:
                stacks = profiler.write_collapsed(args.profile_output)
                notes.append(
                    f"{stacks} collapsed stacks written to "
                    f"{args.profile_output}"
                )
        report = HealthReport(
            drift=drift, slo=slo, profile=profile, notes=notes
        )
        return report, registry
    finally:
        obs_metrics.set_registry(previous)


def _run_health(args) -> int:
    report, registry = _collect_health(args)
    if args.format == "json":
        document = {
            "command": "health",
            "report": report.to_dict(),
            "registry": registry.to_dict(),
        }
        _emit(json.dumps(document, indent=2), args)
    else:
        _emit(report.to_text(), args)
    return report.exit_code


def _run_dashboard(args) -> int:
    from repro.obs.dashboard import render_dashboard

    from repro.obs import journal as obs_journal

    report, registry = _collect_health(args)
    active_journal = obs_journal.get_journal()
    journal_records = (
        active_journal.tail() if active_journal is not None else None
    )
    html = render_dashboard(
        report, registry=registry, journal_records=journal_records
    )
    path = args.output or "dashboard.html"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"dashboard written to {path} (status: {report.status})")
    return 0


def _configure_observability(args):
    """Wire --trace / --log-level / -v; returns a cleanup callable."""
    from repro.obs import logs, tracing

    level = getattr(args, "log_level", None)
    verbose = getattr(args, "verbose", 0)
    if level is None and verbose:
        level = "debug" if verbose > 1 else "info"
    if level is not None:
        logs.configure_logging(level)

    journal_path = getattr(args, "journal", None)
    journal_handle = None
    if journal_path is not None and args.command != "timeline":
        # `timeline` *reads* the journal; don't open it for append (the
        # torn-tail recovery would truncate a file we only inspect).
        from repro.obs import journal as obs_journal

        journal_handle = obs_journal.configure(journal_path)

    trace_path = getattr(args, "trace", None)
    exporter = None
    if trace_path is not None:
        exporter = tracing.JsonlExporter(trace_path)
        tracing.configure([exporter])
        # Flush the JSONL file even when the run exits abnormally
        # (atexit, SIGTERM/SIGINT) — a killed serve-batch keeps its
        # spans.
        tracing.install_exit_flush(exporter)

    def cleanup() -> None:
        if exporter is not None:
            tracing.disable()
            tracing.uninstall_exit_flush(exporter)
            exporter.close()
        if journal_handle is not None:
            from repro.obs import journal as obs_journal

            obs_journal.disable()

    return cleanup


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    cleanup = _configure_observability(args)
    try:
        if args.command == "generate":
            return _run_generate(args)

        if args.command == "experiment":
            return _run_experiment(args)

        if args.command == "serve-batch":
            return _run_serve_batch(args)

        if args.command == "serve":
            return _run_serve(args)

        if args.command == "trace":
            return _run_trace(args)

        if args.command == "timeline":
            return _run_timeline(args)

        if args.command == "explain":
            return _run_explain(args)

        if args.command == "metrics":
            return _run_metrics(args)

        if args.command == "health":
            return _run_health(args)

        if args.command == "dashboard":
            return _run_dashboard(args)
    finally:
        cleanup()

    return 2  # unreachable with required=True


if __name__ == "__main__":
    sys.exit(main())
