"""Command-line interface.

Usage::

    python -m repro list
    python -m repro generate --workload four-markets --scale 0.02 --seed 7
    python -m repro experiment fig4
    python -m repro experiment table4 -o table4.txt
    python -m repro serve-batch snapshot.json requests.json \
        --parameters pMax,qHyst --save-artifact engine.json

``experiment`` accepts every id in :data:`repro.experiments.EXPERIMENTS`;
results render in the paper's table/series layout.  ``serve-batch``
loads a snapshot (``repro.dataio`` format), fits or loads a persistent
engine artifact, and answers a batch of new-carrier requests through
:class:`repro.serve.RecommendationService`, printing each
recommendation and the service metrics.

``--seed`` propagates into workload construction (``generate``) and
engine fitting (``serve-batch``) so runs are reproducible end-to-end
from the command line.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.datagen import four_markets_workload, full_network_workload, tiny_workload
from repro.experiments import EXPERIMENTS, run_experiment
from repro.rng import DEFAULT_SEED

_WORKLOADS = {
    "tiny": lambda scale, seed: tiny_workload(seed=seed),
    "four-markets": lambda scale, seed: four_markets_workload(scale=scale, seed=seed),
    "full-network": lambda scale, seed: full_network_workload(scale=scale, seed=seed),
}


def _build_workload(name: str, scale: Optional[float], seed: Optional[int]):
    return _WORKLOADS[name](scale, seed if seed is not None else DEFAULT_SEED)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auric (SIGCOMM 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    generate = sub.add_parser("generate", help="generate a synthetic workload")
    generate.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="four-markets",
    )
    generate.add_argument("--scale", type=float, default=None)
    generate.add_argument(
        "--seed", type=int, default=None,
        help="generation seed (default: the library seed)",
    )
    generate.add_argument(
        "-o", "--output", default=None,
        help="also export the snapshot JSON here",
    )

    experiment = sub.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default=None,
        help="override the experiment's default workload",
    )
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument(
        "--seed", type=int, default=None,
        help="seed for the overridden workload",
    )
    experiment.add_argument(
        "-o", "--output", default=None, help="also write the rendering here"
    )

    serve = sub.add_parser(
        "serve-batch",
        help="serve a batch of new-carrier requests from a snapshot",
    )
    serve.add_argument("snapshot", help="snapshot JSON (repro.dataio format)")
    serve.add_argument("requests", help="requests JSON (list or {'requests': [...]})")
    serve.add_argument(
        "--parameters", default=None,
        help="comma-separated parameters to serve "
        "(default: every singular range parameter)",
    )
    serve.add_argument(
        "--artifact", default=None,
        help="load this fitted engine artifact instead of fitting",
    )
    serve.add_argument(
        "--save-artifact", default=None,
        help="persist the fitted engine artifact here",
    )
    serve.add_argument(
        "--no-verify-artifact", action="store_true",
        help="serve an artifact even if it was fitted on another snapshot",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="engine fit seed (reproducible attribute-selection sampling)",
    )
    serve.add_argument("--cache-size", type=int, default=None)
    serve.add_argument(
        "-o", "--output", default=None, help="also write the renderings here"
    )
    return parser


def _run_serve_batch(args) -> int:
    # Imported lazily so `repro list` stays fast.
    from repro.config.rulebook import RuleBook
    from repro.core.auric import AuricConfig, AuricEngine
    from repro.dataio import load_dataset_json
    from repro.serve import (
        RecommendationService,
        load_engine,
        requests_from_json,
        save_engine,
    )
    from repro.serve.service import DEFAULT_CACHE_SIZE

    from repro.exceptions import ReproError

    snapshot = load_dataset_json(args.snapshot)
    parameters = (
        [p for p in args.parameters.split(",") if p]
        if args.parameters is not None
        else None
    )
    if parameters:
        for name in parameters:
            if name not in snapshot.store.catalog:
                print(f"error: unknown parameter {name!r}", file=sys.stderr)
                return 2
            if snapshot.store.catalog.spec(name).is_pairwise:
                print(
                    f"error: {name} is pair-wise and needs a neighbor "
                    "carrier; serve-batch answers singular parameters only",
                    file=sys.stderr,
                )
                return 2

    if args.artifact is not None:
        try:
            engine = load_engine(
                args.artifact,
                snapshot.network,
                snapshot.store,
                verify_fingerprint=not args.no_verify_artifact,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                "hint: --no-verify-artifact serves an artifact fitted on "
                "another snapshot",
                file=sys.stderr,
            )
            return 2
    else:
        config = AuricConfig(seed=args.seed) if args.seed is not None else None
        engine = AuricEngine(snapshot.network, snapshot.store, config).fit(
            parameters
        )
    if args.save_artifact is not None:
        save_engine(engine, args.save_artifact)

    service = RecommendationService(
        engine,
        rulebook=RuleBook(snapshot.store.catalog),
        cache_size=args.cache_size or DEFAULT_CACHE_SIZE,
    )
    with open(args.requests) as handle:
        requests = requests_from_json(json.load(handle))

    lines: List[str] = []
    for result in service.recommend_batch(requests, parameters=parameters):
        lines.append(str(result))
    lines.append(f"service metrics: {service.metrics.summary()}")
    text = "\n".join(lines)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "generate":
        dataset = _build_workload(args.workload, args.scale, args.seed)
        print(dataset.summary())
        if args.output:
            from repro.dataio import export_dataset_json

            export_dataset_json(dataset, args.output)
            print(f"snapshot written to {args.output}")
        return 0

    if args.command == "experiment":
        kwargs = {}
        if args.workload is not None:
            kwargs["dataset"] = _build_workload(args.workload, args.scale, args.seed)
        result = run_experiment(args.id, **kwargs)
        text = result.render()
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
        return 0

    if args.command == "serve-batch":
        return _run_serve_batch(args)

    return 2  # unreachable with required=True


if __name__ == "__main__":
    sys.exit(main())
