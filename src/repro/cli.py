"""Command-line interface.

Usage::

    python -m repro list
    python -m repro generate --workload four-markets --scale 0.02
    python -m repro experiment fig4
    python -m repro experiment table4 -o table4.txt

``experiment`` accepts every id in :data:`repro.experiments.EXPERIMENTS`;
results render in the paper's table/series layout.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.datagen import four_markets_workload, full_network_workload, tiny_workload
from repro.experiments import EXPERIMENTS, run_experiment

_WORKLOADS = {
    "tiny": lambda scale: tiny_workload(),
    "four-markets": lambda scale: four_markets_workload(scale=scale),
    "full-network": lambda scale: full_network_workload(scale=scale),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auric (SIGCOMM 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    generate = sub.add_parser("generate", help="generate a synthetic workload")
    generate.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default="four-markets",
    )
    generate.add_argument("--scale", type=float, default=None)

    experiment = sub.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--workload",
        choices=sorted(_WORKLOADS),
        default=None,
        help="override the experiment's default workload",
    )
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument(
        "-o", "--output", default=None, help="also write the rendering here"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "generate":
        dataset = _WORKLOADS[args.workload](args.scale)
        print(dataset.summary())
        return 0

    if args.command == "experiment":
        kwargs = {}
        if args.workload is not None:
            kwargs["dataset"] = _WORKLOADS[args.workload](args.scale)
        result = run_experiment(args.id, **kwargs)
        text = result.render()
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
        return 0

    return 2  # unreachable with required=True


if __name__ == "__main__":
    sys.exit(main())
