"""Rule-book baseline.

Today's operational practice (section 2.4): domain experts maintain
rule-books that map carrier attributes to default parameter values.  SON
then enforces compliance with the rule-book but cannot pick a value from
a range.  We implement the rule-book both as a comparison baseline and as
the fallback Auric uses for unobserved attribute values (section 6,
"bootstrapping configuration for the unobserved").

A rule matches a carrier when every (attribute, value) condition it
carries holds; the most specific matching rule (most conditions, then
highest priority) wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.config.parameters import ParameterCatalog, ParameterSpec
from repro.config.values import quantize, validate_value
from repro.exceptions import UnknownParameterError
from repro.netmodel.attributes import CarrierAttributes
from repro.types import AttributeValue, ParameterValue


@dataclass(frozen=True)
class Rule:
    """One rule-book entry: conditions → a value for one parameter."""

    parameter: str
    value: ParameterValue
    conditions: Tuple[Tuple[str, AttributeValue], ...] = ()
    priority: int = 0
    comment: str = ""

    def matches(self, attributes: CarrierAttributes) -> bool:
        return all(attributes.get(name) == value for name, value in self.conditions)

    @property
    def specificity(self) -> int:
        return len(self.conditions)


class RuleBook:
    """An ordered collection of rules with most-specific-wins lookup."""

    def __init__(self, catalog: ParameterCatalog, name: str = "default"):
        self._catalog = catalog
        self.name = name
        self._rules_by_parameter: Dict[str, List[Rule]] = {}

    @property
    def catalog(self) -> ParameterCatalog:
        return self._catalog

    def add_rule(self, rule: Rule) -> None:
        spec = self._catalog.spec(rule.parameter)
        validate_value(spec, rule.value)
        self._rules_by_parameter.setdefault(rule.parameter, []).append(rule)

    def add_rules(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.add_rule(rule)

    def rules_for(self, parameter: str) -> List[Rule]:
        return list(self._rules_by_parameter.get(parameter, []))

    def rule_count(self) -> int:
        return sum(len(r) for r in self._rules_by_parameter.values())

    def lookup(
        self, parameter: str, attributes: CarrierAttributes
    ) -> Optional[ParameterValue]:
        """The rule-book's value for a carrier, or None without a match.

        Most conditions wins; ties break on priority, then insertion
        order (earlier wins, as engineers put canonical rules first).
        """
        best: Optional[Rule] = None
        best_rank: Tuple[int, int, int] = (-1, -1, 0)
        for index, rule in enumerate(self._rules_by_parameter.get(parameter, [])):
            if not rule.matches(attributes):
                continue
            rank = (rule.specificity, rule.priority, -index)
            if rank > best_rank:
                best, best_rank = rule, rank
        return best.value if best is not None else None

    def default_for(self, parameter: str) -> ParameterValue:
        """The catalog-level default used when no rule matches.

        For range parameters this is the mid-range value (the paper notes
        rule-books define an "initial default" for range parameters); for
        enumerations it is the first listed value.
        """
        spec = self._catalog.spec(parameter)
        if spec.is_range:
            assert spec.minimum is not None and spec.maximum is not None
            return quantize(spec, (spec.minimum + spec.maximum) / 2.0)
        return spec.enum_values[0]

    def value_for(self, parameter: str, attributes: CarrierAttributes) -> ParameterValue:
        """Rule-book lookup with fallback to the catalog default."""
        value = self.lookup(parameter, attributes)
        return value if value is not None else self.default_for(parameter)

    def configuration_for(
        self, attributes: CarrierAttributes, parameters: Optional[Iterable[str]] = None
    ) -> Dict[str, ParameterValue]:
        """The full rule-book configuration for one carrier."""
        names = list(parameters) if parameters is not None else list(self._catalog.names)
        for name in names:
            if name not in self._catalog:
                raise UnknownParameterError(name)
        return {name: self.value_for(name, attributes) for name in names}
