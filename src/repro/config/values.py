"""Value quantization and validation against parameter specs."""

from __future__ import annotations

from repro.config.parameters import ParameterSpec, _normalize_number
from repro.exceptions import ConfigurationError
from repro.types import ParameterValue


def quantize(spec: ParameterSpec, raw: float) -> ParameterValue:
    """Snap ``raw`` to the nearest legal value of a range parameter.

    Used by the synthetic generator and by any caller holding a
    continuous estimate (e.g. a regression output) that must become a
    legal configuration value.
    """
    if not spec.is_range:
        raise ConfigurationError(f"{spec.name} is not a range parameter")
    assert spec.minimum is not None and spec.maximum is not None
    clamped = min(max(float(raw), spec.minimum), spec.maximum)
    step = spec.effective_step
    k = round((clamped - spec.minimum) / step)
    k = min(max(k, 0), spec.value_count() - 1)
    return _normalize_number(spec.minimum + k * step)


def validate_value(spec: ParameterSpec, value: ParameterValue) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is legal."""
    if not spec.contains(value):
        raise ConfigurationError(
            f"value {value!r} is not legal for parameter {spec.name} "
            f"({_describe_domain(spec)})"
        )


def _describe_domain(spec: ParameterSpec) -> str:
    if spec.is_range:
        return f"range {spec.minimum}..{spec.maximum} step {spec.effective_step}"
    return f"enumeration {spec.enum_values}"
