"""Configuration parameter specifications.

Section 2.2 of the paper describes thousands of parameters across
functions (radio connection management, power control, link adaptation,
scheduling, capacity/layer management, mobility).  Auric's focus is the
65 *range* parameters that engineers tune per location: 39 are singular
(one value per carrier) and 26 are pair-wise (one value per carrier +
X2-neighbor pair, used for mobility/handover).

A :class:`ParameterSpec` captures everything the rest of the system needs
about one parameter: its kind, the value model (numeric range + step, or
an enumeration of allowed values) and its functional category.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, UnknownParameterError
from repro.types import ParameterValue


class ParameterKind(enum.Enum):
    """Whether a parameter is set per carrier or per carrier pair."""

    SINGULAR = "singular"
    PAIRWISE = "pairwise"


class ParameterCategory(enum.Enum):
    """Functional category of a parameter (section 2.2)."""

    RADIO_CONNECTION = "radio-connection"
    POWER_CONTROL = "power-control"
    LINK_ADAPTATION = "link-adaptation"
    SCHEDULING = "scheduling"
    CAPACITY = "capacity"
    LAYER_MANAGEMENT = "layer-management"
    LOAD_BALANCING = "load-balancing"
    MOBILITY = "mobility"
    HANDOVER = "handover"
    TIMERS = "timers"


@dataclass(frozen=True)
class ParameterSpec:
    """The specification of one configuration parameter.

    Range parameters carry ``minimum`` / ``maximum`` / ``step``; the set
    of legal values is ``minimum + k*step`` for integer ``k`` up to
    ``maximum``.  Enumeration parameters instead carry ``enum_values``.
    """

    name: str
    kind: ParameterKind
    category: ParameterCategory
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    step: Optional[float] = None
    enum_values: Tuple[ParameterValue, ...] = ()
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.is_range:
            if self.enum_values:
                raise ValueError(f"{self.name}: cannot have both a range and an enumeration")
            assert self.minimum is not None and self.maximum is not None
            if self.minimum > self.maximum:
                raise ValueError(f"{self.name}: minimum exceeds maximum")
            if self.step is not None and self.step <= 0:
                raise ValueError(f"{self.name}: step must be positive")
        elif not self.enum_values:
            raise ValueError(f"{self.name}: needs either a range or an enumeration")

    @property
    def is_range(self) -> bool:
        """True for range parameters (the 65 Auric targets)."""
        return self.minimum is not None and self.maximum is not None

    @property
    def is_pairwise(self) -> bool:
        return self.kind is ParameterKind.PAIRWISE

    @property
    def effective_step(self) -> float:
        """The quantization step; defaults to 1 for integer-like ranges."""
        if not self.is_range:
            raise ConfigurationError(f"{self.name} is not a range parameter")
        return self.step if self.step is not None else 1.0

    def value_count(self) -> int:
        """How many distinct legal values the parameter admits."""
        if self.is_range:
            assert self.minimum is not None and self.maximum is not None
            span = self.maximum - self.minimum
            return int(math.floor(span / self.effective_step + 1e-9)) + 1
        return len(self.enum_values)

    def legal_values(self, limit: Optional[int] = None) -> List[ParameterValue]:
        """Enumerate legal values (optionally only the first ``limit``)."""
        if not self.is_range:
            values: List[ParameterValue] = list(self.enum_values)
            return values[:limit] if limit is not None else values
        assert self.minimum is not None
        count = self.value_count()
        if limit is not None:
            count = min(count, limit)
        step = self.effective_step
        out: List[ParameterValue] = []
        for k in range(count):
            out.append(_normalize_number(self.minimum + k * step))
        return out

    def contains(self, value: ParameterValue) -> bool:
        """Whether ``value`` is legal for this parameter."""
        if not self.is_range:
            return value in self.enum_values
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        assert self.minimum is not None and self.maximum is not None
        if not self.minimum - 1e-9 <= float(value) <= self.maximum + 1e-9:
            return False
        steps = (float(value) - self.minimum) / self.effective_step
        return abs(steps - round(steps)) < 1e-6


def _normalize_number(x: float) -> ParameterValue:
    """Collapse float values that are integral to ints (stable labels)."""
    rounded = round(x, 9)
    if abs(rounded - round(rounded)) < 1e-9:
        return int(round(rounded))
    return rounded


class ParameterCatalog:
    """An ordered, name-indexed collection of parameter specs."""

    def __init__(self, specs: Sequence[ParameterSpec]):
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in catalog")
        self._specs: Tuple[ParameterSpec, ...] = tuple(specs)
        self._by_name: Dict[str, ParameterSpec] = {s.name: s for s in specs}

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ParameterSpec]:
        return iter(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def spec(self, name: str) -> ParameterSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownParameterError(name) from None

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._specs)

    def range_parameters(self) -> List[ParameterSpec]:
        """The range parameters — Auric's predictees."""
        return [s for s in self._specs if s.is_range]

    def singular_parameters(self) -> List[ParameterSpec]:
        return [s for s in self._specs if s.is_range and s.kind is ParameterKind.SINGULAR]

    def pairwise_parameters(self) -> List[ParameterSpec]:
        return [s for s in self._specs if s.is_range and s.kind is ParameterKind.PAIRWISE]

    def enumeration_parameters(self) -> List[ParameterSpec]:
        return [s for s in self._specs if not s.is_range]

    def subset(self, names: Sequence[str]) -> "ParameterCatalog":
        """A catalog restricted to the given parameter names, in that order."""
        return ParameterCatalog([self.spec(n) for n in names])
