"""Vendor managed-object (MO) schema.

Section 5 of the paper: cellular equipment vendors organize configuration
parameters into a hierarchical structure called *managed objects* —
analogous to interfaces on routers — and expose them through an element
management system (EMS).  The controller renders Auric's recommendations
into this hierarchy before pushing them.

We model an MO tree whose leaves are parameter names; each vendor gets a
different (deterministic) arrangement, mirroring the lack of cross-vendor
standardization the paper notes in section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.config.parameters import ParameterCatalog, ParameterCategory
from repro.exceptions import UnknownParameterError
from repro.types import Vendor


@dataclass
class ManagedObject:
    """A node in the managed-object hierarchy."""

    name: str
    children: List["ManagedObject"] = field(default_factory=list)
    parameters: List[str] = field(default_factory=list)

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "ManagedObject"]]:
        """Yield (path, node) for this node and all descendants."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for child in self.children:
            yield from child.walk(path)


class ManagedObjectSchema:
    """A vendor's MO tree with a parameter-name → MO-path index."""

    def __init__(self, vendor: Vendor, root: ManagedObject):
        self.vendor = vendor
        self.root = root
        self._path_by_parameter: Dict[str, str] = {}
        for path, node in root.walk():
            for parameter in node.parameters:
                if parameter in self._path_by_parameter:
                    raise ValueError(
                        f"parameter {parameter} appears in two managed objects"
                    )
                self._path_by_parameter[parameter] = path

    def path_for(self, parameter: str) -> str:
        """The MO path holding ``parameter`` (e.g. ``ENodeBFunction/EUtranCell/Mobility``)."""
        try:
            return self._path_by_parameter[parameter]
        except KeyError:
            raise UnknownParameterError(parameter) from None

    def parameters(self) -> List[str]:
        return sorted(self._path_by_parameter)

    def mo_count(self) -> int:
        return sum(1 for _ in self.root.walk())


#: How each vendor groups parameter categories into MOs.  VendorA uses a
#: fine-grained tree, VendorB a flatter one, VendorC a two-level split —
#: arbitrary but stable, standing in for real vendor schema diversity.
_VENDOR_LAYOUTS: Dict[Vendor, Dict[str, Tuple[ParameterCategory, ...]]] = {
    Vendor.VENDOR_A: {
        "CellConnection": (ParameterCategory.RADIO_CONNECTION,),
        "PowerControl": (ParameterCategory.POWER_CONTROL,),
        "LinkAdaptation": (ParameterCategory.LINK_ADAPTATION,),
        "Scheduler": (ParameterCategory.SCHEDULING,),
        "Capacity": (ParameterCategory.CAPACITY, ParameterCategory.LOAD_BALANCING),
        "LayerManagement": (ParameterCategory.LAYER_MANAGEMENT,),
        "Mobility": (ParameterCategory.MOBILITY, ParameterCategory.HANDOVER),
        "Timers": (ParameterCategory.TIMERS,),
    },
    Vendor.VENDOR_B: {
        "RadioResource": (
            ParameterCategory.RADIO_CONNECTION,
            ParameterCategory.POWER_CONTROL,
            ParameterCategory.LINK_ADAPTATION,
            ParameterCategory.SCHEDULING,
        ),
        "TrafficManagement": (
            ParameterCategory.CAPACITY,
            ParameterCategory.LOAD_BALANCING,
            ParameterCategory.LAYER_MANAGEMENT,
        ),
        "MobilityControl": (
            ParameterCategory.MOBILITY,
            ParameterCategory.HANDOVER,
            ParameterCategory.TIMERS,
        ),
    },
    Vendor.VENDOR_C: {
        "AccessStratum": (
            ParameterCategory.RADIO_CONNECTION,
            ParameterCategory.TIMERS,
            ParameterCategory.LINK_ADAPTATION,
        ),
        "RfManagement": (
            ParameterCategory.POWER_CONTROL,
            ParameterCategory.SCHEDULING,
        ),
        "LoadAndMobility": (
            ParameterCategory.CAPACITY,
            ParameterCategory.LOAD_BALANCING,
            ParameterCategory.LAYER_MANAGEMENT,
            ParameterCategory.MOBILITY,
            ParameterCategory.HANDOVER,
        ),
    },
}


def build_vendor_schema(
    vendor: Vendor, catalog: ParameterCatalog, cell_mo_name: str = "EUtranCell"
) -> ManagedObjectSchema:
    """Build the MO schema for one vendor over the given catalog."""
    layout = _VENDOR_LAYOUTS[vendor]
    cell = ManagedObject(cell_mo_name)
    for mo_name, categories in layout.items():
        parameters = [s.name for s in catalog if s.category in categories]
        cell.children.append(ManagedObject(mo_name, parameters=parameters))
    root = ManagedObject("ENodeBFunction", children=[cell])
    return ManagedObjectSchema(vendor, root)
