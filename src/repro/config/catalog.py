"""The default parameter catalog: 65 range parameters (39 singular,
26 pair-wise) plus a handful of enumeration parameters.

The six parameters the paper describes by name (section 2.2) are
reproduced with their exact ranges and step sizes:

* ``actInterFreqLB`` — boolean IFLB activation (enumeration, handled by
  the rule-book, not a recommendation target),
* ``sFreqPrio`` — 1..10000,
* ``hysA3Offset`` — 0..15 step 0.5 (pair-wise handover margin),
* ``pMax`` — 0..60 step 0.6 dBm,
* ``qrxlevmin`` — -156..-44,
* ``inactivityTimer`` — 1..65535.

The remaining names are realistic 3GPP/vendor LTE parameters so the
catalog reads like a production rule-book; their ranges follow the
corresponding specifications where one exists.
"""

from __future__ import annotations

from repro.config.parameters import (
    ParameterCatalog,
    ParameterCategory,
    ParameterKind,
    ParameterSpec,
)

_S = ParameterKind.SINGULAR
_P = ParameterKind.PAIRWISE

_C = ParameterCategory

# name, kind, category, min, max, step, unit
_RANGE_PARAMETERS = [
    # --- paper-named parameters -----------------------------------------
    ("sFreqPrio", _S, _C.LOAD_BALANCING, 1, 10000, 1, ""),
    ("pMax", _S, _C.POWER_CONTROL, 0, 60, 0.6, "dBm"),
    ("qrxlevmin", _S, _C.RADIO_CONNECTION, -156, -44, 2, "dBm"),
    ("inactivityTimer", _S, _C.TIMERS, 1, 65535, 1, "s"),
    ("hysA3Offset", _P, _C.HANDOVER, 0, 15, 0.5, "dB"),
    # --- singular: load balancing / capacity ----------------------------
    ("lbCapacityThreshold", _S, _C.LOAD_BALANCING, 0, 100, 1, "%"),
    ("lbCeiling", _S, _C.LOAD_BALANCING, 0, 100, 1, "%"),
    ("lbUtilizationOffset", _S, _C.LOAD_BALANCING, 0, 50, 1, "%"),
    ("admissionThreshold", _S, _C.CAPACITY, 0, 100, 1, "%"),
    ("congestionThreshold", _S, _C.CAPACITY, 0, 100, 1, "%"),
    ("prbLoadThreshold", _S, _C.CAPACITY, 0, 100, 1, "%"),
    ("maxNumRrcConnections", _S, _C.CAPACITY, 100, 4000, 50, ""),
    # --- singular: radio connection / reselection -----------------------
    ("qqualmin", _S, _C.RADIO_CONNECTION, -34, -3, 1, "dB"),
    ("cellReselectionPriority", _S, _C.LAYER_MANAGEMENT, 0, 7, 1, ""),
    ("threshServingLow", _S, _C.LAYER_MANAGEMENT, 0, 62, 2, "dB"),
    ("sNonIntraSearch", _S, _C.LAYER_MANAGEMENT, 0, 62, 2, "dB"),
    ("sIntraSearch", _S, _C.LAYER_MANAGEMENT, 0, 62, 2, "dB"),
    ("qHyst", _S, _C.MOBILITY, 0, 24, 1, "dB"),
    ("tReselectionEutra", _S, _C.MOBILITY, 0, 7, 1, "s"),
    # --- singular: power control -----------------------------------------
    ("pZeroNominalPusch", _S, _C.POWER_CONTROL, -126, 24, 1, "dBm"),
    ("pZeroNominalPucch", _S, _C.POWER_CONTROL, -127, -96, 1, "dBm"),
    ("alphaPusch", _S, _C.POWER_CONTROL, 0, 1, 0.1, ""),
    ("crsGain", _S, _C.POWER_CONTROL, 0, 6, 0.5, "dB"),
    ("paOffset", _S, _C.POWER_CONTROL, -6, 3, 1, "dB"),
    ("pbOffset", _S, _C.POWER_CONTROL, 0, 3, 1, ""),
    # --- singular: scheduling / link adaptation --------------------------
    ("dlSchedulerWeight", _S, _C.SCHEDULING, 0, 100, 1, ""),
    ("ulSchedulerWeight", _S, _C.SCHEDULING, 0, 100, 1, ""),
    ("cqiReportPeriodicity", _S, _C.LINK_ADAPTATION, 1, 160, 1, "ms"),
    ("srsPeriodicity", _S, _C.LINK_ADAPTATION, 2, 320, 2, "ms"),
    ("initialCqi", _S, _C.LINK_ADAPTATION, 1, 15, 1, ""),
    # --- singular: timers / RRC ------------------------------------------
    ("drxInactivityTimer", _S, _C.TIMERS, 1, 2560, 1, "ms"),
    ("drxLongCycle", _S, _C.TIMERS, 10, 2560, 10, "ms"),
    ("t300", _S, _C.TIMERS, 100, 2000, 100, "ms"),
    ("t301", _S, _C.TIMERS, 100, 2000, 100, "ms"),
    ("t310", _S, _C.TIMERS, 0, 2000, 50, "ms"),
    ("n310", _S, _C.TIMERS, 1, 20, 1, ""),
    # --- singular: access ------------------------------------------------
    ("ueMeasGapOffset", _S, _C.MOBILITY, 0, 79, 1, ""),
    ("prachConfigIndex", _S, _C.RADIO_CONNECTION, 0, 63, 1, ""),
    ("siPeriodicity", _S, _C.RADIO_CONNECTION, 8, 512, 8, "rf"),
    # --- pair-wise: intra-frequency handover (A3) ------------------------
    ("a3Offset", _P, _C.HANDOVER, -15, 15, 0.5, "dB"),
    ("timeToTriggerA3", _P, _C.HANDOVER, 0, 5120, 40, "ms"),
    ("cellIndividualOffset", _P, _C.HANDOVER, -24, 24, 1, "dB"),
    ("qOffsetCell", _P, _C.MOBILITY, -24, 24, 1, "dB"),
    # --- pair-wise: inter-frequency handover (A5) ------------------------
    ("a5Threshold1Rsrp", _P, _C.HANDOVER, -140, -44, 1, "dBm"),
    ("a5Threshold2Rsrp", _P, _C.HANDOVER, -140, -44, 1, "dBm"),
    ("a5Threshold1Rsrq", _P, _C.HANDOVER, -20, -3, 1, "dB"),
    ("a5Threshold2Rsrq", _P, _C.HANDOVER, -20, -3, 1, "dB"),
    ("hysteresisA5", _P, _C.HANDOVER, 0, 15, 0.5, "dB"),
    ("timeToTriggerA5", _P, _C.HANDOVER, 0, 5120, 40, "ms"),
    # --- pair-wise: measurement events ------------------------------------
    ("a1ThresholdRsrp", _P, _C.MOBILITY, -140, -44, 1, "dBm"),
    ("a2ThresholdRsrp", _P, _C.MOBILITY, -140, -44, 1, "dBm"),
    ("hysteresisA1", _P, _C.MOBILITY, 0, 15, 0.5, "dB"),
    ("hysteresisA2", _P, _C.MOBILITY, 0, 15, 0.5, "dB"),
    ("b2Threshold1Rsrp", _P, _C.MOBILITY, -140, -44, 1, "dBm"),
    ("b2Threshold2Rsrp", _P, _C.MOBILITY, -140, -44, 1, "dBm"),
    ("timeToTriggerB2", _P, _C.MOBILITY, 0, 5120, 40, "ms"),
    # --- pair-wise: inter-frequency load balancing ------------------------
    ("iflbA5Threshold1", _P, _C.LOAD_BALANCING, -140, -44, 1, "dBm"),
    ("iflbA5Threshold2", _P, _C.LOAD_BALANCING, -140, -44, 1, "dBm"),
    ("iflbHysteresis", _P, _C.LOAD_BALANCING, 0, 15, 0.5, "dB"),
    ("loadBalancingOffset", _P, _C.LOAD_BALANCING, 0, 20, 1, "dB"),
    ("x2HoThreshold", _P, _C.HANDOVER, 0, 100, 1, "%"),
    ("anrCellWeight", _P, _C.MOBILITY, 0, 100, 1, ""),
    ("handoverMarginRsrp", _P, _C.HANDOVER, 0, 10, 0.5, "dB"),
    ("handoverMarginRsrq", _P, _C.HANDOVER, 0, 10, 0.5, "dB"),
    ("ttBetweenHoAttempts", _S, _C.HANDOVER, 0, 60, 1, "s"),
]

# Enumeration parameters: representable by the rule-book (section 2.4),
# kept in the catalog so the operational layer can configure them, but
# excluded from the recommendation predictee set.
_ENUM_PARAMETERS = [
    ("actInterFreqLB", _S, _C.LOAD_BALANCING, (False, True),
     "Activates inter-carrier-frequency load balancing (IFLB)"),
    ("actIfLbMeasurement", _S, _C.LOAD_BALANCING, (False, True),
     "Enables inter-frequency load measurements"),
    ("schedulingStrategy", _S, _C.SCHEDULING,
     ("round-robin", "proportional-fair", "max-cqi"),
     "Downlink scheduler strategy"),
    ("anrEnabled", _S, _C.MOBILITY, (False, True),
     "Automatic neighbor relations"),
    ("txDiversity", _S, _C.LINK_ADAPTATION, ("open", "closed"),
     "Transmit diversity mode"),
]

EXPECTED_RANGE_PARAMETER_COUNT = 65
EXPECTED_SINGULAR_COUNT = 39
EXPECTED_PAIRWISE_COUNT = 26


def build_default_catalog() -> ParameterCatalog:
    """Build the default catalog (65 range + 5 enumeration parameters)."""
    specs = [
        ParameterSpec(
            name=name,
            kind=kind,
            category=category,
            minimum=lo,
            maximum=hi,
            step=float(step),
            unit=unit,
        )
        for name, kind, category, lo, hi, step, unit in _RANGE_PARAMETERS
    ]
    specs.extend(
        ParameterSpec(
            name=name,
            kind=kind,
            category=category,
            enum_values=values,
            description=description,
        )
        for name, kind, category, values, description in _ENUM_PARAMETERS
    )
    catalog = ParameterCatalog(specs)
    # The catalog shape is load-bearing for every experiment; fail fast if
    # an edit above breaks the 39 + 26 split the paper reports.
    assert len(catalog.range_parameters()) == EXPECTED_RANGE_PARAMETER_COUNT
    assert len(catalog.singular_parameters()) == EXPECTED_SINGULAR_COUNT
    assert len(catalog.pairwise_parameters()) == EXPECTED_PAIRWISE_COUNT
    return catalog
