"""Configuration storage for a network snapshot.

The store holds, per carrier, the values of singular parameters, and per
ordered (carrier, neighbor) pair, the values of pair-wise parameters
(one entry for each direction of a handover relation, as in a real RAN
where carrier j's handover settings *toward* neighbor k are configured on
j).

All writes are validated against the catalog, so an in-range store is an
invariant the rest of the library can rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.config.parameters import ParameterCatalog, ParameterKind
from repro.config.values import validate_value
from repro.exceptions import ConfigurationError
from repro.netmodel.identifiers import CarrierId
from repro.types import ParameterValue


@dataclass(frozen=True, order=True)
class PairKey:
    """An ordered (carrier, neighbor) pair for pair-wise parameters."""

    carrier: CarrierId
    neighbor: CarrierId

    def __post_init__(self) -> None:
        if self.carrier == self.neighbor:
            raise ValueError("pair-wise parameters need two distinct carriers")

    def reversed(self) -> "PairKey":
        return PairKey(self.neighbor, self.carrier)


class ConfigurationStore:
    """Per-carrier and per-pair parameter values, validated on write."""

    def __init__(self, catalog: ParameterCatalog):
        self._catalog = catalog
        self._singular: Dict[CarrierId, Dict[str, ParameterValue]] = {}
        self._pairwise: Dict[PairKey, Dict[str, ParameterValue]] = {}

    @property
    def catalog(self) -> ParameterCatalog:
        return self._catalog

    # -- writes -----------------------------------------------------------

    def set_singular(self, carrier: CarrierId, name: str, value: ParameterValue) -> None:
        spec = self._catalog.spec(name)
        if spec.kind is not ParameterKind.SINGULAR:
            raise ConfigurationError(f"{name} is a pair-wise parameter")
        validate_value(spec, value)
        self._singular.setdefault(carrier, {})[name] = value

    def set_pairwise(self, pair: PairKey, name: str, value: ParameterValue) -> None:
        spec = self._catalog.spec(name)
        if spec.kind is not ParameterKind.PAIRWISE:
            raise ConfigurationError(f"{name} is a singular parameter")
        validate_value(spec, value)
        self._pairwise.setdefault(pair, {})[name] = value

    def remove_carrier(self, carrier: CarrierId) -> None:
        """Drop all configuration touching ``carrier`` (decommissioning)."""
        self._singular.pop(carrier, None)
        stale = [p for p in self._pairwise if carrier in (p.carrier, p.neighbor)]
        for pair in stale:
            del self._pairwise[pair]

    # -- reads ------------------------------------------------------------

    def get_singular(self, carrier: CarrierId, name: str) -> Optional[ParameterValue]:
        return self._singular.get(carrier, {}).get(name)

    def get_pairwise(self, pair: PairKey, name: str) -> Optional[ParameterValue]:
        return self._pairwise.get(pair, {}).get(name)

    def carrier_config(self, carrier: CarrierId) -> Dict[str, ParameterValue]:
        """All singular values configured on ``carrier`` (a copy)."""
        return dict(self._singular.get(carrier, {}))

    def pair_config(self, pair: PairKey) -> Dict[str, ParameterValue]:
        return dict(self._pairwise.get(pair, {}))

    # -- iteration --------------------------------------------------------

    def carriers(self) -> Iterator[CarrierId]:
        return iter(self._singular)

    def pairs(self) -> Iterator[PairKey]:
        return iter(self._pairwise)

    def pairs_for_carrier(self, carrier: CarrierId) -> List[PairKey]:
        """Pairs whose source side is ``carrier``."""
        return [p for p in self._pairwise if p.carrier == carrier]

    def singular_values(self, name: str) -> Dict[CarrierId, ParameterValue]:
        """All configured values of one singular parameter."""
        out: Dict[CarrierId, ParameterValue] = {}
        for carrier, values in self._singular.items():
            if name in values:
                out[carrier] = values[name]
        return out

    def pairwise_values(self, name: str) -> Dict[PairKey, ParameterValue]:
        out: Dict[PairKey, ParameterValue] = {}
        for pair, values in self._pairwise.items():
            if name in values:
                out[pair] = values[name]
        return out

    # -- counts -----------------------------------------------------------

    def total_value_count(self) -> int:
        """Total number of stored parameter values (singular + pair-wise).

        This is the paper's "configuration parameter values" count (15M+
        in the production dataset).
        """
        singular = sum(len(v) for v in self._singular.values())
        pairwise = sum(len(v) for v in self._pairwise.values())
        return singular + pairwise

    def value_counts(self) -> Tuple[int, int]:
        """(singular, pair-wise) stored value counts."""
        return (
            sum(len(v) for v in self._singular.values()),
            sum(len(v) for v in self._pairwise.values()),
        )
