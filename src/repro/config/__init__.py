"""Configuration substrate.

Models the carrier configuration surface of an LTE RAN: the parameter
catalog (section 2.2 of the paper), per-carrier and per-carrier-pair
configuration storage, the vendor managed-object schema, the operational
rule-book baseline (section 2.4), configuration templates and diffing.
"""

from repro.config.catalog import build_default_catalog
from repro.config.diff import ConfigDiff, DiffEntry, diff_against_recommendations
from repro.config.managed_objects import ManagedObject, ManagedObjectSchema, build_vendor_schema
from repro.config.parameters import (
    ParameterCatalog,
    ParameterCategory,
    ParameterKind,
    ParameterSpec,
)
from repro.config.rulebook import Rule, RuleBook
from repro.config.store import ConfigurationStore, PairKey
from repro.config.templates import ConfigTemplate, render_config_file
from repro.config.values import quantize, validate_value

__all__ = [
    "build_default_catalog",
    "ConfigDiff",
    "DiffEntry",
    "diff_against_recommendations",
    "ManagedObject",
    "ManagedObjectSchema",
    "build_vendor_schema",
    "ParameterCatalog",
    "ParameterCategory",
    "ParameterKind",
    "ParameterSpec",
    "Rule",
    "RuleBook",
    "ConfigurationStore",
    "PairKey",
    "ConfigTemplate",
    "render_config_file",
    "quantize",
    "validate_value",
]
