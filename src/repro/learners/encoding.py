"""One-hot encoding of categorical attribute rows and label indexing.

Section 3.1: "Since X and Y can contain nominal variables, we use one-hot
encoding to translate them" — a hardware attribute with values H1, H2, H3
becomes three binary columns whose per-row sum is 1.

Unseen categories at transform time encode to all-zeros for that
attribute (the new carrier contributes no evidence on that column group);
callers that need hard cold-start detection can ask the encoder directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import EncodingError, NotFittedError
from repro.learners.base import Label, Row
from repro.types import AttributeValue


class OneHotEncoder:
    """Column-wise one-hot encoder for categorical rows."""

    def __init__(self) -> None:
        self._categories: List[Dict[AttributeValue, int]] = []
        self._offsets: List[int] = []
        self._width = 0
        self._fitted = False

    @property
    def width(self) -> int:
        """Number of output columns after encoding."""
        self._require_fitted()
        return self._width

    @property
    def n_columns_in(self) -> int:
        self._require_fitted()
        return len(self._categories)

    def fit(self, rows: Sequence[Row]) -> "OneHotEncoder":
        if not rows:
            raise EncodingError("cannot fit an encoder on zero rows")
        n_cols = len(rows[0])
        self._categories = [{} for _ in range(n_cols)]
        for row in rows:
            if len(row) != n_cols:
                raise EncodingError("inconsistent row widths")
            for col, value in enumerate(row):
                mapping = self._categories[col]
                if value not in mapping:
                    mapping[value] = len(mapping)
        self._offsets = []
        offset = 0
        for mapping in self._categories:
            self._offsets.append(offset)
            offset += len(mapping)
        self._width = offset
        self._fitted = True
        return self

    def transform(self, rows: Sequence[Row]) -> np.ndarray:
        """Encode rows into a dense (n, width) float64 matrix."""
        self._require_fitted()
        out = np.zeros((len(rows), self._width), dtype=np.float64)
        for i, row in enumerate(rows):
            if len(row) != len(self._categories):
                raise EncodingError(
                    f"row {i} has {len(row)} columns, expected {len(self._categories)}"
                )
            for col, value in enumerate(row):
                index = self._categories[col].get(value)
                if index is not None:
                    out[i, self._offsets[col] + index] = 1.0
        return out

    def fit_transform(self, rows: Sequence[Row]) -> np.ndarray:
        return self.fit(rows).transform(rows)

    def is_known(self, row: Row) -> bool:
        """Whether every value in ``row`` was seen during fitting."""
        self._require_fitted()
        if len(row) != len(self._categories):
            return False
        return all(
            value in self._categories[col] for col, value in enumerate(row)
        )

    def unseen_columns(self, row: Row) -> List[int]:
        """Input-column indices whose value was never seen in training."""
        self._require_fitted()
        return [
            col for col, value in enumerate(row)
            if value not in self._categories[col]
        ]

    def feature_names(self, column_names: Sequence[str]) -> List[str]:
        """Names for each encoded column, e.g. ``hardware=RRH2``."""
        self._require_fitted()
        if len(column_names) != len(self._categories):
            raise EncodingError("column_names length mismatch")
        names = [""] * self._width
        for col, mapping in enumerate(self._categories):
            for value, index in mapping.items():
                names[self._offsets[col] + index] = f"{column_names[col]}={value}"
        return names

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("OneHotEncoder has not been fitted")


class LabelCodec:
    """Bidirectional mapping between hashable labels and class indices."""

    def __init__(self) -> None:
        self._to_index: Dict[Label, int] = {}
        self._to_label: List[Label] = []

    def fit(self, labels: Sequence[Label]) -> "LabelCodec":
        for label in labels:
            if label not in self._to_index:
                self._to_index[label] = len(self._to_label)
                self._to_label.append(label)
        return self

    @property
    def n_classes(self) -> int:
        return len(self._to_label)

    def encode(self, labels: Sequence[Label]) -> np.ndarray:
        try:
            return np.array([self._to_index[l] for l in labels], dtype=np.int64)
        except KeyError as exc:
            raise EncodingError(f"unknown label {exc.args[0]!r}") from None

    def decode(self, indices: Sequence[int]) -> List[Label]:
        return [self._to_label[int(i)] for i in indices]

    def decode_one(self, index: int) -> Label:
        return self._to_label[int(index)]
