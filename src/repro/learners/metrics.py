"""Shared metrics: impurity measures and accuracy.

Accuracy is the paper's sole evaluation metric (section 4.2): the number
of recommendations matching the current configured value divided by the
total number of recommendations.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np


def gini_impurity(class_counts: np.ndarray) -> float:
    """Gini impurity of a node given its per-class counts."""
    total = float(class_counts.sum())
    if total <= 0.0:
        return 0.0
    p = class_counts / total
    return float(1.0 - np.sum(p * p))


def entropy(class_counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a node given its per-class counts."""
    total = float(class_counts.sum())
    if total <= 0.0:
        return 0.0
    p = class_counts / total
    p = p[p > 0.0]
    return float(-np.sum(p * np.log2(p)))


def accuracy_score(
    truth: Sequence[Hashable], predicted: Sequence[Hashable]
) -> float:
    """Fraction of predictions equal to the truth."""
    if len(truth) != len(predicted):
        raise ValueError("truth and predicted lengths differ")
    if not truth:
        raise ValueError("cannot score zero predictions")
    hits = sum(1 for t, p in zip(truth, predicted) if t == p)
    return hits / len(truth)
