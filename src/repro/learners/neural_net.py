"""Deep neural network learner (multi-layer perceptron).

Paper configuration (section 4.2): 7 hidden layers sized
100/100/100/50/50/50/10, adam optimizer, relu activations, L2 penalty
1e-5, random state 1, maximum iteration 10000.

Implemented directly on numpy: dense layers, relu, softmax
cross-entropy, adam with minibatches, L2 weight decay in the gradient,
and early stopping when the training loss plateaus (so the 10000-epoch
cap of the paper stays a cap, not a cost).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.learners.base import Label, Learner, Row
from repro.learners.encoding import LabelCodec, OneHotEncoder

PAPER_HIDDEN_LAYERS: Tuple[int, ...] = (100, 100, 100, 50, 50, 50, 10)


class DeepNeuralNetworkLearner(Learner):
    """MLP classifier with relu hidden layers and adam training."""

    name = "deep-neural-network"

    def __init__(
        self,
        hidden_layers: Sequence[int] = PAPER_HIDDEN_LAYERS,
        alpha: float = 1e-5,
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        max_iter: int = 10000,
        tol: float = 1e-4,
        n_iter_no_change: int = 10,
        random_state: int = 1,
    ) -> None:
        super().__init__()
        if any(h < 1 for h in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.hidden_layers = tuple(hidden_layers)
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.random_state = random_state
        self._encoder = OneHotEncoder()
        self._codec = LabelCodec()
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self.n_iter_: int = 0
        self.loss_: float = float("inf")

    # -- fitting ----------------------------------------------------------

    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        X = self._encoder.fit_transform(rows)
        self._codec = LabelCodec().fit(labels)
        y = self._codec.encode(labels)
        n, d = X.shape
        n_classes = max(self._codec.n_classes, 2)

        rng = np.random.default_rng(self.random_state)
        sizes = [d, *self.hidden_layers, n_classes]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialization suits relu layers.
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        # Adam state.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        batch = min(self.batch_size, n)
        best_loss = float("inf")
        stale_epochs = 0

        for epoch in range(self.max_iter):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start:start + batch]
                xb, yb = X[idx], y[idx]
                loss, grads_w, grads_b = self._backprop(xb, yb)
                epoch_loss += loss * len(idx)
                step += 1
                for layer in range(len(self._weights)):
                    gw = grads_w[layer] + self.alpha * self._weights[layer]
                    gb = grads_b[layer]
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * gw
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * gw * gw
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * gb
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * gb * gb
                    m_hat_w = m_w[layer] / (1 - beta1**step)
                    v_hat_w = v_w[layer] / (1 - beta2**step)
                    m_hat_b = m_b[layer] / (1 - beta1**step)
                    v_hat_b = v_b[layer] / (1 - beta2**step)
                    self._weights[layer] -= (
                        self.learning_rate * m_hat_w / (np.sqrt(v_hat_w) + eps)
                    )
                    self._biases[layer] -= (
                        self.learning_rate * m_hat_b / (np.sqrt(v_hat_b) + eps)
                    )
            epoch_loss /= n
            self.loss_ = epoch_loss
            self.n_iter_ = epoch + 1
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= self.n_iter_no_change:
                    break

    def _forward(self, X: np.ndarray) -> List[np.ndarray]:
        """Activations per layer; the last entry is the softmax output."""
        activations = [X]
        a = X
        last = len(self._weights) - 1
        for layer, (w, b) in enumerate(zip(self._weights, self._biases)):
            z = a @ w + b
            a = _softmax(z) if layer == last else np.maximum(z, 0.0)
            activations.append(a)
        return activations

    def _backprop(self, X: np.ndarray, y: np.ndarray):
        activations = self._forward(X)
        probs = activations[-1]
        n = X.shape[0]
        loss = -float(np.mean(np.log(probs[np.arange(n), y] + 1e-12)))

        grads_w: List[np.ndarray] = [np.empty(0)] * len(self._weights)
        grads_b: List[np.ndarray] = [np.empty(0)] * len(self._biases)

        delta = probs.copy()
        delta[np.arange(n), y] -= 1.0
        delta /= n
        for layer in range(len(self._weights) - 1, -1, -1):
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self._weights[layer].T) * (activations[layer] > 0.0)
        return loss, grads_w, grads_b

    # -- prediction -------------------------------------------------------

    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        X = self._encoder.transform(rows)
        probs = self._forward(X)[-1]
        return self._codec.decode(np.argmax(probs, axis=1))

    def predict_proba(self, rows: Sequence[Row]) -> np.ndarray:
        """Class probabilities in label-codec order."""
        self._require_fitted()
        X = self._encoder.transform(rows)
        return self._forward(X)[-1]


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)
