"""Random forest learner.

Paper configuration (section 4.2): "We use 100 trees in the forest, and
Gini score for decision to split. Tree is expanded until all leaves are
pure."  Standard bagging: each tree sees a bootstrap resample and
considers sqrt(d) features per split; the forest predicts the majority
class over trees.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.learners.base import Label, Learner, Row
from repro.learners.decision_tree import DecisionTreeLearner
from repro.learners.encoding import LabelCodec, OneHotEncoder


class RandomForestLearner(Learner):
    """Bagged ensemble of Gini decision trees with majority voting."""

    name = "random-forest"

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._encoder = OneHotEncoder()
        self._codec = LabelCodec()
        self._trees: List[DecisionTreeLearner] = []

    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        X = self._encoder.fit_transform(rows)
        self._codec = LabelCodec().fit(labels)
        y = self._codec.encode(labels)
        n, d = X.shape
        max_features = max(1, int(math.sqrt(d)))
        rng = np.random.default_rng(self.seed)

        self._trees = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeLearner(
                max_depth=self.max_depth,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(0, 2**63 - 1)),
            )
            tree.fit_encoded(X[sample], y[sample], self._codec, self._encoder)
            self._trees.append(tree)

    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        X = self._encoder.transform(rows)
        n_classes = self._codec.n_classes
        votes = np.zeros((X.shape[0], n_classes), dtype=np.int64)
        for tree in self._trees:
            predictions = tree.predict_encoded(X)
            votes[np.arange(X.shape[0]), predictions] += 1
        return self._codec.decode(np.argmax(votes, axis=1))

    @property
    def tree_count(self) -> int:
        return len(self._trees)
