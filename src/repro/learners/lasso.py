"""Lasso regression (coordinate descent).

Section 3.2, equation (1): linear regression with an L1 regularizer so
the dependency model is sparse — "the configuration parameter values
should be associated with a small number of carrier attributes".

Two interfaces are provided:

* :class:`LassoRegression` — plain numeric lasso on arrays, used by the
  ablation benchmarks and available as a library primitive.
* :class:`LassoDependencyLearner` — a :class:`~repro.learners.base.Learner`
  adapter that one-hot encodes attribute rows, regresses the numeric
  parameter value, and snaps predictions to the nearest value observed
  in training (parameter values are discrete, so regression output must
  land on a legal label).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import NotFittedError
from repro.learners.base import Label, Learner, Row
from repro.learners.encoding import OneHotEncoder


class LassoRegression:
    """L1-regularized least squares, solved by cyclic coordinate descent.

    Minimizes ``(1/2n) ||y - Xb - b0||^2 + lam * ||b||_1`` with an
    unpenalized intercept.  Features are internally centered/scaled so
    the penalty treats columns symmetrically; coefficients are reported
    in the original scale.
    """

    def __init__(self, lam: float = 0.01, max_iter: int = 1000, tol: float = 1e-6):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        self.lam = lam
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray = np.empty(0)
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LassoRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree in sample count")
        n, d = X.shape

        x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        Xs = (X - x_mean) / x_scale
        y_mean = float(y.mean())
        yc = y - y_mean

        beta = np.zeros(d)
        residual = yc.copy()
        col_sq = (Xs * Xs).sum(axis=0)

        for iteration in range(self.max_iter):
            max_delta = 0.0
            for j in range(d):
                if col_sq[j] == 0.0:
                    continue
                rho = Xs[:, j] @ residual + beta[j] * col_sq[j]
                new = _soft_threshold(rho / n, self.lam) / (col_sq[j] / n)
                delta = new - beta[j]
                if delta != 0.0:
                    residual -= delta * Xs[:, j]
                    beta[j] = new
                    max_delta = max(max_delta, abs(delta))
            self.n_iter_ = iteration + 1
            if max_delta < self.tol:
                break

        self.coef_ = beta / x_scale
        self.intercept_ = y_mean - float(self.coef_ @ x_mean)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("LassoRegression has not been fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def sparsity(self, threshold: float = 1e-8) -> float:
        """Fraction of coefficients shrunk (effectively) to zero."""
        if not self._fitted:
            raise NotFittedError("LassoRegression has not been fitted")
        if self.coef_.size == 0:
            return 1.0
        return float(np.mean(np.abs(self.coef_) <= threshold))


class LassoDependencyLearner(Learner):
    """Learner adapter: lasso regression snapped to observed values."""

    name = "lasso"

    def __init__(self, lam: float = 0.01, max_iter: int = 1000):
        super().__init__()
        self.lam = lam
        self.max_iter = max_iter
        self._encoder = OneHotEncoder()
        self._model = LassoRegression(lam=lam, max_iter=max_iter)
        self._observed_values: np.ndarray = np.empty(0)

    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        numeric = np.array([float(l) for l in labels], dtype=np.float64)
        X = self._encoder.fit_transform(rows)
        self._model = LassoRegression(lam=self.lam, max_iter=self.max_iter).fit(
            X, numeric
        )
        self._observed_values = np.unique(numeric)

    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        X = self._encoder.transform(rows)
        raw = self._model.predict(X)
        snapped = []
        for value in raw:
            nearest = int(np.argmin(np.abs(self._observed_values - value)))
            snapped.append(_as_label(self._observed_values[nearest]))
        return snapped

    @property
    def coefficients(self) -> np.ndarray:
        self._require_fitted()
        return self._model.coef_


def _soft_threshold(value: float, lam: float) -> float:
    if value > lam:
        return value - lam
    if value < -lam:
        return value + lam
    return 0.0


def _as_label(value: float) -> Label:
    if abs(value - round(value)) < 1e-9:
        return int(round(value))
    return float(value)
