"""k-nearest-neighbors learner.

Paper configuration (section 4.2): "We use k = 5, equal weighting across
neighbors and distance metric of Euclidean."

Section 3.2 explains kNN's weakness — it "does not filter out the
attributes that do not have a strong correlation with the configuration
parameters", so irrelevant attributes pull genuinely-similar carriers
apart.  We reproduce that behaviour faithfully: distances run over the
full one-hot encoding with no feature selection.

Distances are computed blockwise via the identity
``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` so prediction is a matmul.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.learners.base import Label, Learner, Row
from repro.learners.encoding import LabelCodec, OneHotEncoder

_BLOCK = 512  # test rows per distance block, bounds peak memory


class KNearestNeighborsLearner(Learner):
    """Brute-force kNN over one-hot encoded attributes."""

    name = "k-nearest-neighbors"

    def __init__(self, k: int = 5) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._encoder = OneHotEncoder()
        self._codec = LabelCodec()
        self._X = np.empty((0, 0))
        self._y = np.empty(0, dtype=np.int64)

    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        self._X = self._encoder.fit_transform(rows)
        self._codec = LabelCodec().fit(labels)
        self._y = self._codec.encode(labels)

    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        Q = self._encoder.transform(rows)
        k = min(self.k, self._X.shape[0])
        train_sq = np.sum(self._X * self._X, axis=1)
        n_classes = self._codec.n_classes
        out = np.empty(Q.shape[0], dtype=np.int64)

        for start in range(0, Q.shape[0], _BLOCK):
            block = Q[start:start + _BLOCK]
            block_sq = np.sum(block * block, axis=1)
            d2 = block_sq[:, None] + train_sq[None, :] - 2.0 * (block @ self._X.T)
            # argpartition gives the k nearest in O(n); ties inside the
            # cut are broken by train index, matching a stable kNN.
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            for i in range(block.shape[0]):
                votes = np.bincount(self._y[nearest[i]], minlength=n_classes)
                out[start + i] = int(np.argmax(votes))
        return self._codec.decode(out)
