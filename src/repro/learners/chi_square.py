"""Chi-square test of independence between attributes and parameters.

Implements equations (3) and (4) of the paper: a contingency table lays
out counts for each (attribute value, parameter value) pair; the test
statistic is the normalized squared deviation of observed from expected
counts, compared against the chi-square critical value at degrees of
freedom (R-1)(C-1) and the chosen significance level (p = 0.01 in the
paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np
from scipy import stats


def contingency_table(
    xs: Sequence[Hashable], ys: Sequence[Hashable]
) -> Tuple[np.ndarray, List[Hashable], List[Hashable]]:
    """Build the observed-count table O for two categorical sequences.

    Returns ``(table, row_values, col_values)`` where ``table[a, b]`` is
    the number of samples with ``xs == row_values[a]`` and
    ``ys == col_values[b]``.  Row/column orders follow first appearance,
    which keeps tables deterministic for a fixed dataset order.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("cannot build a contingency table from zero samples")
    row_index: Dict[Hashable, int] = {}
    col_index: Dict[Hashable, int] = {}
    cells: Dict[Tuple[int, int], int] = {}
    for x, y in zip(xs, ys):
        r = row_index.setdefault(x, len(row_index))
        c = col_index.setdefault(y, len(col_index))
        cells[(r, c)] = cells.get((r, c), 0) + 1
    table = np.zeros((len(row_index), len(col_index)), dtype=np.float64)
    for (r, c), count in cells.items():
        table[r, c] = count
    rows = [None] * len(row_index)
    cols = [None] * len(col_index)
    for value, index in row_index.items():
        rows[index] = value
    for value, index in col_index.items():
        cols[index] = value
    return table, rows, cols


def chi_square_statistic(table: np.ndarray) -> float:
    """The chi-square statistic of an observed-count table (equation 3).

    Expected counts come from the marginals (equation 4).  Cells whose
    expected count is zero (an all-zero row or column) contribute nothing.
    """
    if table.ndim != 2:
        raise ValueError("contingency table must be 2-dimensional")
    total = table.sum()
    if total <= 0:
        raise ValueError("contingency table has no observations")
    row_sums = table.sum(axis=1, keepdims=True)
    col_sums = table.sum(axis=0, keepdims=True)
    expected = row_sums @ col_sums / total
    mask = expected > 0
    deviation = np.zeros_like(table)
    deviation[mask] = (table[mask] - expected[mask]) ** 2 / expected[mask]
    return float(deviation.sum())


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of one independence test.

    ``cramers_v`` is the Cramér's V effect size in [0, 1]: with very
    large samples the chi-square test flags even negligible associations
    as significant, so association *strength* must be judged separately.
    """

    statistic: float
    dof: int
    critical_value: float
    p_value: float
    dependent: bool
    cramers_v: float = 0.0


#: Strata smaller than this are excluded from the stratified test: in a
#: 2-3 sample stratum almost any pair of variables looks perfectly
#: associated, and summing thousands of such strata manufactures a
#: spuriously "significant" dependence (with Cramér's V near 1).
DEFAULT_MIN_STRATUM_SIZE = 8


def test_conditional_independence(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    strata: Sequence[Hashable],
    p_value: float = 0.01,
    min_stratum_size: int = DEFAULT_MIN_STRATUM_SIZE,
) -> ChiSquareResult:
    """Chi-square test of ``xs`` vs ``ys`` *conditioned on* ``strata``.

    A Cochran–Mantel–Haenszel-style stratified test: within each stratum
    (each distinct value of ``strata``) the ordinary chi-square statistic
    is computed, and statistics and degrees of freedom are summed across
    strata.  An attribute whose marginal association with the parameter
    flows entirely through already-selected attributes comes out
    independent here — exactly the redundancy the recommender must not
    match on.

    Degenerate strata (a single distinct x or y value) contribute zero
    statistic and zero degrees of freedom.  The pooled Cramér's V uses
    the number of samples in non-degenerate strata.
    """
    if not (len(xs) == len(ys) == len(strata)):
        raise ValueError("xs, ys and strata must have equal length")
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must be in (0, 1)")
    groups: Dict[Hashable, List[int]] = {}
    for i, stratum in enumerate(strata):
        groups.setdefault(stratum, []).append(i)

    total_statistic = 0.0
    total_dof = 0
    effective_n = 0
    min_dim_weighted = 0.0
    for indices in groups.values():
        if len(indices) < min_stratum_size:
            continue
        sub_x = [xs[i] for i in indices]
        sub_y = [ys[i] for i in indices]
        table, rows, cols = contingency_table(sub_x, sub_y)
        dof = (len(rows) - 1) * (len(cols) - 1)
        if dof == 0:
            continue
        total_statistic += chi_square_statistic(table)
        total_dof += dof
        effective_n += len(indices)
        min_dim_weighted += len(indices) * min(len(rows) - 1, len(cols) - 1)
    if total_dof == 0 or effective_n == 0:
        return ChiSquareResult(0.0, 0, float("inf"), p_value, False, 0.0)
    critical = float(stats.chi2.ppf(1.0 - p_value, total_dof))
    mean_min_dim = max(min_dim_weighted / effective_n, 1.0)
    v = float(np.sqrt(total_statistic / (effective_n * mean_min_dim)))
    return ChiSquareResult(
        total_statistic,
        total_dof,
        critical,
        p_value,
        total_statistic > critical,
        min(v, 1.0),
    )


def test_independence(  # noqa: PT028 - library function, not a pytest test
    xs: Sequence[Hashable], ys: Sequence[Hashable], p_value: float = 0.01
) -> ChiSquareResult:
    """Chi-square test of independence between two categorical variables.

    ``dependent`` is True when the statistic exceeds the critical value,
    i.e. the null hypothesis of independence is rejected at significance
    ``p_value``.  A degenerate table (single distinct value on either
    side) has zero degrees of freedom and can never reject the null.
    """
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must be in (0, 1)")
    table, rows, cols = contingency_table(xs, ys)
    dof = (len(rows) - 1) * (len(cols) - 1)
    if dof == 0:
        return ChiSquareResult(0.0, 0, float("inf"), p_value, False)
    statistic = chi_square_statistic(table)
    critical = float(stats.chi2.ppf(1.0 - p_value, dof))
    n = float(table.sum())
    v = float(np.sqrt(statistic / (n * min(len(rows) - 1, len(cols) - 1))))
    return ChiSquareResult(
        statistic, dof, critical, p_value, statistic > critical, min(v, 1.0)
    )


# These are statistical tests, not pytest tests; prevent collection when
# imported into test modules.
test_independence.__test__ = False  # type: ignore[attr-defined]
test_conditional_independence.__test__ = False  # type: ignore[attr-defined]
