"""Chi-square test of independence between attributes and parameters.

Implements equations (3) and (4) of the paper: a contingency table lays
out counts for each (attribute value, parameter value) pair; the test
statistic is the normalized squared deviation of observed from expected
counts, compared against the chi-square critical value at degrees of
freedom (R-1)(C-1) and the chosen significance level (p = 0.01 in the
paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats


def factorize(values: Sequence[Hashable]) -> Tuple[np.ndarray, List[Hashable]]:
    """Integer-encode a categorical sequence in first-appearance order.

    Returns ``(codes, uniques)`` where ``codes[i] == uniques.index(values[i])``.
    First-appearance ordering (not sorted order) keeps downstream
    contingency tables byte-identical to the historical dict-based
    builder for a fixed dataset order.

    Numpy arrays with a non-object dtype (including pre-encoded integer
    columns) take a fully vectorized path; lists and object arrays fall
    back to a single dict-encoding pass.
    """
    if isinstance(values, np.ndarray) and values.dtype != np.dtype(object):
        if values.ndim != 1:
            raise ValueError("can only factorize 1-dimensional arrays")
        codes, ordered = _factorize_codes(values)
        uniques = [u.item() if isinstance(u, np.generic) else u for u in ordered]
        return codes, uniques
    index: Dict[Hashable, int] = {}
    codes = np.fromiter(
        (index.setdefault(v, len(index)) for v in values),
        dtype=np.intp,
        count=len(values),
    )
    return codes, list(index)


def _factorize_codes(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`factorize` for a non-object 1-D array, without decoding the
    unique values to Python objects: ``(codes, ordered_uniques)`` where
    the uniques stay a numpy array in first-appearance order."""
    uniq, first, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.intp)
    rank[order] = np.arange(len(uniq), dtype=np.intp)
    return rank[inverse.reshape(-1)], uniq[order]


def _encoded_column(
    values: Sequence[Hashable],
) -> Tuple[np.ndarray, int]:
    """Codes plus a distinct-count bound for one stratified-test column.

    A pre-encoded non-negative integer column passes through untouched:
    the stratified builder only re-ranks codes *within* each stratum
    (first-appearance order), so any bijective encoding yields identical
    tables, and the bound merely sizes the key packing.  Anything else
    is factorized.
    """
    if (
        isinstance(values, np.ndarray)
        and values.ndim == 1
        and np.issubdtype(values.dtype, np.integer)
        and (len(values) == 0 or int(values.min()) >= 0)
    ):
        return values, int(values.max()) + 1 if len(values) else 0
    codes, uniques = factorize(values)
    return codes, len(uniques)


def contingency_from_codes(
    x_codes: np.ndarray,
    y_codes: np.ndarray,
    n_rows: Optional[int] = None,
    n_cols: Optional[int] = None,
) -> np.ndarray:
    """The observed-count table for two pre-encoded integer columns.

    One vectorized ``bincount`` pass — no per-cell Python dict.  Codes
    must be non-negative; ``n_rows``/``n_cols`` default to the observed
    maxima.
    """
    if len(x_codes) != len(y_codes):
        raise ValueError("xs and ys must have equal length")
    if len(x_codes) == 0:
        raise ValueError("cannot build a contingency table from zero samples")
    if n_rows is None:
        n_rows = int(x_codes.max()) + 1
    if n_cols is None:
        n_cols = int(y_codes.max()) + 1
    flat = np.asarray(x_codes, dtype=np.intp) * n_cols + np.asarray(
        y_codes, dtype=np.intp
    )
    counts = np.bincount(flat, minlength=n_rows * n_cols)
    return counts.reshape(n_rows, n_cols).astype(np.float64)


def contingency_table(
    xs: Sequence[Hashable], ys: Sequence[Hashable]
) -> Tuple[np.ndarray, List[Hashable], List[Hashable]]:
    """Build the observed-count table O for two categorical sequences.

    Returns ``(table, row_values, col_values)`` where ``table[a, b]`` is
    the number of samples with ``xs == row_values[a]`` and
    ``ys == col_values[b]``.  Row/column orders follow first appearance,
    which keeps tables deterministic for a fixed dataset order.

    Accepts plain sequences, numpy arrays, and pre-encoded integer
    columns alike; counting is a single vectorized pass.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) == 0:
        raise ValueError("cannot build a contingency table from zero samples")
    x_codes, rows = factorize(xs)
    y_codes, cols = factorize(ys)
    table = contingency_from_codes(x_codes, y_codes, len(rows), len(cols))
    return table, rows, cols


def chi_square_statistic(table: np.ndarray) -> float:
    """The chi-square statistic of an observed-count table (equation 3).

    Expected counts come from the marginals (equation 4).  Cells whose
    expected count is zero (an all-zero row or column) contribute nothing.
    """
    if table.ndim != 2:
        raise ValueError("contingency table must be 2-dimensional")
    total = table.sum()
    if total <= 0:
        raise ValueError("contingency table has no observations")
    row_sums = table.sum(axis=1, keepdims=True)
    col_sums = table.sum(axis=0, keepdims=True)
    expected = row_sums @ col_sums / total
    mask = expected > 0
    deviation = np.zeros_like(table)
    deviation[mask] = (table[mask] - expected[mask]) ** 2 / expected[mask]
    return float(deviation.sum())


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of one independence test.

    ``cramers_v`` is the Cramér's V effect size in [0, 1]: with very
    large samples the chi-square test flags even negligible associations
    as significant, so association *strength* must be judged separately.
    """

    statistic: float
    dof: int
    critical_value: float
    p_value: float
    dependent: bool
    cramers_v: float = 0.0


#: Strata smaller than this are excluded from the stratified test: in a
#: 2-3 sample stratum almost any pair of variables looks perfectly
#: associated, and summing thousands of such strata manufactures a
#: spuriously "significant" dependence (with Cramér's V near 1).
DEFAULT_MIN_STRATUM_SIZE = 8


def _subtable_from_codes(
    x_codes: np.ndarray, y_codes: np.ndarray
) -> Tuple[np.ndarray, int, int]:
    """Contingency table of a code subset, re-encoded to the values that
    actually appear (first-appearance order), as the dict builder did."""
    sub_x, x_uniques = factorize(x_codes)
    sub_y, y_uniques = factorize(y_codes)
    table = contingency_from_codes(sub_x, sub_y, len(x_uniques), len(y_uniques))
    return table, len(x_uniques), len(y_uniques)


def _stratum_local_codes(
    stratum_codes: np.ndarray, codes: np.ndarray, n_strata: int, n_values: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-encode ``codes`` *within each stratum* in first-appearance
    order, for every stratum at once.

    Returns ``(local_codes, counts)`` where ``local_codes[i]`` is the
    rank of ``codes[i]``'s first appearance among its stratum's distinct
    values (exactly the code the per-stratum dict re-encoder assigned)
    and ``counts[s]`` is stratum ``s``'s number of distinct values.
    """
    pair = stratum_codes.astype(np.int64) * n_values + codes
    uniq, first, inverse = np.unique(
        pair, return_index=True, return_inverse=True
    )
    pair_stratum = (uniq // n_values).astype(np.intp)
    counts = np.bincount(pair_stratum, minlength=n_strata)
    # Rank each stratum's distinct values by first appearance: sort the
    # unique pairs by (stratum, first position) and number them within
    # their stratum block.
    order = np.lexsort((first, pair_stratum))
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.empty(len(uniq), dtype=np.intp)
    rank[order] = np.arange(len(uniq), dtype=np.intp) - np.repeat(
        starts, counts
    )
    return rank[inverse.reshape(-1)], counts


def test_conditional_independence(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    strata: Sequence[Hashable],
    p_value: float = 0.01,
    min_stratum_size: int = DEFAULT_MIN_STRATUM_SIZE,
) -> ChiSquareResult:
    """Chi-square test of ``xs`` vs ``ys`` *conditioned on* ``strata``.

    A Cochran–Mantel–Haenszel-style stratified test: within each stratum
    (each distinct value of ``strata``) the ordinary chi-square statistic
    is computed, and statistics and degrees of freedom are summed across
    strata.  An attribute whose marginal association with the parameter
    flows entirely through already-selected attributes comes out
    independent here — exactly the redundancy the recommender must not
    match on.

    Degenerate strata (a single distinct x or y value) contribute zero
    statistic and zero degrees of freedom.  The pooled Cramér's V uses
    the number of samples in non-degenerate strata.
    """
    if not (len(xs) == len(ys) == len(strata)):
        raise ValueError("xs, ys and strata must have equal length")
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must be in (0, 1)")
    if isinstance(strata, np.ndarray) and strata.dtype != np.dtype(object):
        # Pre-encoded strata (the columnar fit path packs the selected
        # columns into one integer key per sample) take the fully
        # vectorized builder — pre-encoded x/y columns skip their
        # factorize pass entirely; the object path below is the
        # historical implementation, kept as the ``columnar=False``
        # A/B reference.
        x_codes, n_x = _encoded_column(xs)
        y_codes, n_y = _encoded_column(ys)
        return _conditional_from_encoded(
            x_codes,
            n_x,
            y_codes,
            n_y,
            strata,
            p_value,
            min_stratum_size,
        )
    x_codes, x_uniques = factorize(xs)
    y_codes, y_uniques = factorize(ys)
    groups: Dict[Hashable, List[int]] = {}
    for i, stratum in enumerate(strata):
        groups.setdefault(stratum, []).append(i)

    total_statistic = 0.0
    total_dof = 0
    effective_n = 0
    min_dim_weighted = 0.0
    for indices in groups.values():
        if len(indices) < min_stratum_size:
            continue
        idx = np.asarray(indices, dtype=np.intp)
        table, n_rows, n_cols = _subtable_from_codes(x_codes[idx], y_codes[idx])
        dof = (n_rows - 1) * (n_cols - 1)
        if dof == 0:
            continue
        total_statistic += chi_square_statistic(table)
        total_dof += dof
        effective_n += len(idx)
        min_dim_weighted += len(idx) * min(n_rows - 1, n_cols - 1)
    return _pooled_result(
        total_statistic, total_dof, effective_n, min_dim_weighted, p_value
    )


def _conditional_from_encoded(
    x_codes: np.ndarray,
    n_x: int,
    y_codes: np.ndarray,
    n_y: int,
    strata: np.ndarray,
    p_value: float,
    min_stratum_size: int,
) -> ChiSquareResult:
    """The stratified test over pre-encoded integer strata.

    All per-stratum contingency tables are laid out by one vectorized
    pass — within-stratum first-appearance re-encoding via
    :func:`_stratum_local_codes`, then a single ``bincount`` over
    per-stratum cell offsets — producing, stratum for stratum, exactly
    the tables (same counts, same row/column order, visited in the same
    first-appearance stratum order) the dict builder produced, so the
    pooled statistic accumulates identical floats.
    """
    stratum_codes, stratum_uniques = _factorize_codes(strata)
    sizes_all = np.bincount(stratum_codes, minlength=len(stratum_uniques))
    keep = sizes_all >= min_stratum_size

    total_statistic = 0.0
    total_dof = 0
    effective_n = 0
    min_dim_weighted = 0.0
    if keep.any():
        mask = keep[stratum_codes]
        remap = np.cumsum(keep) - 1  # old stratum id -> dense kept id
        s = remap[stratum_codes[mask]]
        n_strata = int(keep.sum())
        sub_x, nx = _stratum_local_codes(s, x_codes[mask], n_strata, n_x)
        sub_y, ny = _stratum_local_codes(s, y_codes[mask], n_strata, n_y)
        cells = nx * ny
        offsets = np.concatenate(([0], np.cumsum(cells)[:-1]))
        flat = offsets[s] + sub_x * ny[s] + sub_y
        counts = np.bincount(flat, minlength=int(cells.sum()))
        nx_list = nx.tolist()
        ny_list = ny.tolist()
        offset_list = offsets.tolist()
        size_list = sizes_all[keep].tolist()
        for t in range(n_strata):
            n_rows = nx_list[t]
            n_cols = ny_list[t]
            dof = (n_rows - 1) * (n_cols - 1)
            if dof == 0:
                continue
            start = offset_list[t]
            table = (
                counts[start : start + n_rows * n_cols]
                .astype(np.float64)
                .reshape(n_rows, n_cols)
            )
            total_statistic += chi_square_statistic(table)
            total_dof += dof
            effective_n += size_list[t]
            min_dim_weighted += size_list[t] * min(n_rows - 1, n_cols - 1)
    return _pooled_result(
        total_statistic, total_dof, effective_n, min_dim_weighted, p_value
    )


def _pooled_result(
    total_statistic: float,
    total_dof: int,
    effective_n: int,
    min_dim_weighted: float,
    p_value: float,
) -> ChiSquareResult:
    """The pooled CMH-style outcome shared by both stratified builders."""
    if total_dof == 0 or effective_n == 0:
        return ChiSquareResult(0.0, 0, float("inf"), p_value, False, 0.0)
    critical = float(stats.chi2.ppf(1.0 - p_value, total_dof))
    mean_min_dim = max(min_dim_weighted / effective_n, 1.0)
    v = float(np.sqrt(total_statistic / (effective_n * mean_min_dim)))
    return ChiSquareResult(
        total_statistic,
        total_dof,
        critical,
        p_value,
        total_statistic > critical,
        min(v, 1.0),
    )


def _result_from_table(
    table: np.ndarray, n_rows: int, n_cols: int, p_value: float
) -> ChiSquareResult:
    dof = (n_rows - 1) * (n_cols - 1)
    if dof == 0:
        return ChiSquareResult(0.0, 0, float("inf"), p_value, False)
    statistic = chi_square_statistic(table)
    critical = float(stats.chi2.ppf(1.0 - p_value, dof))
    n = float(table.sum())
    v = float(np.sqrt(statistic / (n * min(n_rows - 1, n_cols - 1))))
    return ChiSquareResult(
        statistic, dof, critical, p_value, statistic > critical, min(v, 1.0)
    )


def test_independence(  # noqa: PT028 - library function, not a pytest test
    xs: Sequence[Hashable], ys: Sequence[Hashable], p_value: float = 0.01
) -> ChiSquareResult:
    """Chi-square test of independence between two categorical variables.

    ``dependent`` is True when the statistic exceeds the critical value,
    i.e. the null hypothesis of independence is rejected at significance
    ``p_value``.  A degenerate table (single distinct value on either
    side) has zero degrees of freedom and can never reject the null.
    """
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must be in (0, 1)")
    table, rows, cols = contingency_table(xs, ys)
    return _result_from_table(table, len(rows), len(cols), p_value)


def marginal_tests(
    columns: Sequence[Sequence[Hashable]],
    labels: Sequence[Hashable],
    p_value: float = 0.01,
) -> List[ChiSquareResult]:
    """Chi-square test of every attribute column against one label vector.

    The batched fitting entry point: the label vector is integer-encoded
    once and each column's contingency table is a single ``bincount``
    pass, instead of re-hashing every (sample, column) pair through a
    Python dict per test.  Results are element-wise identical to calling
    :func:`test_independence` per column.
    """
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must be in (0, 1)")
    y_codes, n_cols = _codes_and_count(labels)
    results: List[ChiSquareResult] = []
    for xs in columns:
        if len(xs) != len(labels):
            raise ValueError("every column must match the label count")
        x_codes, n_rows = _codes_and_count(xs)
        table = contingency_from_codes(x_codes, y_codes, n_rows, n_cols)
        results.append(_result_from_table(table, n_rows, n_cols, p_value))
    return results


def _codes_and_count(values: Sequence[Hashable]) -> Tuple[np.ndarray, int]:
    """First-appearance codes and distinct count, skipping the Python
    decode of the unique values (which only :func:`factorize` callers
    need).  The re-rank is kept — contingency row/column order feeds the
    statistic's float summation."""
    if isinstance(values, np.ndarray) and values.dtype != np.dtype(object):
        codes, ordered = _factorize_codes(values)
        return codes, len(ordered)
    codes, uniques = factorize(values)
    return codes, len(uniques)


# These are statistical tests, not pytest tests; prevent collection when
# imported into test modules.
test_independence.__test__ = False  # type: ignore[attr-defined]
test_conditional_independence.__test__ = False  # type: ignore[attr-defined]
