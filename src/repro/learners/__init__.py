"""Dependency-model learners.

Implements, from scratch on numpy, the five learners evaluated in the
paper (section 4.2) plus the lasso regression option of section 3.2:

* decision tree (Gini, grown until leaves are pure),
* random forest (100 trees),
* k-nearest neighbors (k=5, Euclidean, equal weights),
* deep neural network (7 hidden layers 100/100/100/50/50/50/10, adam,
  relu, L2 1e-5),
* collaborative filtering with chi-square tests of independence and a
  75%-support voting recommender,
* lasso regression (coordinate descent).

All learners share one interface (:class:`~repro.learners.base.Learner`)
over *categorical* attribute rows; numeric learners one-hot encode
internally, exactly as the paper's methodology prescribes.
"""

from repro.learners.base import Learner
from repro.learners.chi_square import (
    ChiSquareResult,
    chi_square_statistic,
    contingency_table,
    test_independence,
)
from repro.learners.collaborative_filtering import CollaborativeFilteringRecommender
from repro.learners.decision_tree import DecisionTreeLearner
from repro.learners.encoding import LabelCodec, OneHotEncoder
from repro.learners.knn import KNearestNeighborsLearner
from repro.learners.lasso import LassoRegression
from repro.learners.metrics import accuracy_score, gini_impurity
from repro.learners.neural_net import DeepNeuralNetworkLearner
from repro.learners.random_forest import RandomForestLearner
from repro.learners.registry import paper_learner_factories, make_paper_learner

__all__ = [
    "Learner",
    "ChiSquareResult",
    "chi_square_statistic",
    "contingency_table",
    "test_independence",
    "CollaborativeFilteringRecommender",
    "DecisionTreeLearner",
    "LabelCodec",
    "OneHotEncoder",
    "KNearestNeighborsLearner",
    "LassoRegression",
    "accuracy_score",
    "gini_impurity",
    "DeepNeuralNetworkLearner",
    "RandomForestLearner",
    "paper_learner_factories",
    "make_paper_learner",
]
