"""Decision tree learner (CART, Gini).

Paper configuration (section 4.2): "We use Gini score to determine how to
split and the tree is expanded until all leaves are pure (i.e., all data
points contain the same label)."

Because inputs are one-hot encoded, every feature is binary and a split
is simply ``feature == 0`` vs ``feature == 1``.  The per-node split
search is vectorized: with ``C`` the (n, K) class-indicator matrix and
``X`` the (n, d) feature matrix, the class counts on the feature==1 side
of every candidate split are computed at once as ``X.T @ C``.

The tree also provides path explanations (Fig 8 of the paper shows the
engineers' preferred decision-tree explanation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.learners.base import Label, Learner, Row
from repro.learners.encoding import LabelCodec, OneHotEncoder


@dataclass
class _Node:
    """A tree node: either a leaf (prediction) or an internal split."""

    prediction: int
    feature: Optional[int] = None
    left: Optional["_Node"] = None  # feature == 0
    right: Optional["_Node"] = None  # feature == 1

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeLearner(Learner):
    """CART classifier over one-hot encoded attributes.

    ``max_depth=None`` and ``min_samples_split=2`` grow the tree to pure
    leaves, matching the paper.  ``max_features`` enables per-node feature
    subsampling (used by the random forest); ``rng`` only matters when
    ``max_features`` is set.
    """

    name = "decision-tree"

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if max_features is not None and max_features < 1:
            raise ValueError("max_features must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._encoder = OneHotEncoder()
        self._codec = LabelCodec()
        self._root: Optional[_Node] = None
        self._node_count = 0
        self._feature_names: Optional[List[str]] = None

    # -- fitting ----------------------------------------------------------

    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        X = self._encoder.fit_transform(rows)
        self._codec = LabelCodec().fit(labels)
        y = self._codec.encode(labels)
        self._node_count = 0
        self._root = self._build(X, y, depth=0)

    def fit_encoded(self, X: np.ndarray, y: np.ndarray, codec: LabelCodec,
                    encoder: OneHotEncoder) -> "DecisionTreeLearner":
        """Fit from pre-encoded data (used by the random forest to avoid
        re-encoding per tree)."""
        self._encoder = encoder
        self._codec = codec
        self._node_count = 0
        self._root = self._build(X, y, depth=0)
        self._fitted = True
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        self._node_count += 1
        n_classes = self._codec.n_classes
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        majority = int(np.argmax(counts))

        if (
            counts.max() == counts.sum()  # pure leaf
            or len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return _Node(prediction=majority)

        feature, mask_right = self._best_split(X, y, counts)
        if feature is None:
            return _Node(prediction=majority)

        assert mask_right is not None
        mask_left = ~mask_right
        left = self._build(X[mask_left], y[mask_left], depth + 1)
        right = self._build(X[mask_right], y[mask_right], depth + 1)
        return _Node(prediction=majority, feature=feature, left=left, right=right)

    def _best_split(self, X: np.ndarray, y: np.ndarray, total_counts: np.ndarray):
        n = X.shape[0]
        n_features = X.shape[1]

        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(n_features)

        Xc = X[:, candidates]
        # Class counts on the feature==1 side of every candidate at once.
        C = np.zeros((n, len(total_counts)), dtype=np.float64)
        C[np.arange(n), y] = 1.0
        right_counts = Xc.T @ C  # (n_candidates, K)
        left_counts = total_counts[None, :] - right_counts

        n_right = right_counts.sum(axis=1)
        n_left = n - n_right
        valid = (n_right > 0) & (n_left > 0)
        if not np.any(valid):
            return None, None

        gini_right = _gini_rows(right_counts, n_right)
        gini_left = _gini_rows(left_counts, n_left)
        weighted = (n_left * gini_left + n_right * gini_right) / n

        parent_gini = _gini_rows(total_counts[None, :], np.array([float(n)]))[0]
        gains = np.where(valid, parent_gini - weighted, -np.inf)
        best = int(np.argmax(gains))
        if gains[best] <= 1e-12:
            return None, None
        feature = int(candidates[best])
        return feature, X[:, feature] > 0.5

    # -- prediction -------------------------------------------------------

    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        X = self._encoder.transform(rows)
        return self._codec.decode([self._walk(x) for x in X])

    def predict_encoded(self, X: np.ndarray) -> np.ndarray:
        """Class indices for pre-encoded rows (random-forest fast path)."""
        self._require_fitted()
        return np.array([self._walk(x) for x in X], dtype=np.int64)

    def _walk(self, x: np.ndarray) -> int:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.right if x[node.feature] > 0.5 else node.left
        return node.prediction

    # -- introspection ----------------------------------------------------

    @property
    def node_count(self) -> int:
        return self._node_count

    def depth(self) -> int:
        """Maximum depth of the fitted tree (0 for a single leaf)."""
        self._require_fitted()

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(_depth(node.left), _depth(node.right))

        assert self._root is not None
        return _depth(self._root)

    def explain_one(self, row: Row, column_names: Sequence[str]) -> List[str]:
        """The decision path for one row as human-readable conditions.

        This is the Fig 8 style explanation engineers found intuitive:
        e.g. ``["morphology=urban is true", "hardware=RRH2 is false"]``.
        """
        self._require_fitted()
        names = self._encoder.feature_names(column_names)
        x = self._encoder.transform([row])[0]
        node = self._root
        assert node is not None
        path: List[str] = []
        while not node.is_leaf:
            taken = x[node.feature] > 0.5
            path.append(f"{names[node.feature]} is {'true' if taken else 'false'}")
            assert node.left is not None and node.right is not None
            node = node.right if taken else node.left
        path.append(f"recommend {self._codec.decode_one(node.prediction)!r}")
        return path


def _gini_rows(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Row-wise Gini impurity for a (m, K) count matrix with row totals."""
    safe = np.maximum(totals, 1e-12)
    p = counts / safe[:, None]
    return 1.0 - np.sum(p * p, axis=1)
