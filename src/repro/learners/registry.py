"""Factories for the five global learners with the paper's hyperparameters.

Table 4 of the paper compares: random forest, k-nearest neighbors,
decision tree, deep neural network and collaborative filtering.  This
registry builds each with section 4.2's settings; ``fast`` variants
shrink the expensive knobs (tree count, epochs) for test suites and
scaled-down benchmark runs without changing any algorithmic behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.learners.base import Learner
from repro.learners.collaborative_filtering import CollaborativeFilteringRecommender
from repro.learners.decision_tree import DecisionTreeLearner
from repro.learners.knn import KNearestNeighborsLearner
from repro.learners.neural_net import DeepNeuralNetworkLearner, PAPER_HIDDEN_LAYERS
from repro.learners.random_forest import RandomForestLearner

#: Learner display order used in Table 4 of the paper.
PAPER_LEARNER_ORDER: Tuple[str, ...] = (
    "random-forest",
    "k-nearest-neighbors",
    "decision-tree",
    "deep-neural-network",
    "collaborative-filtering",
)


def paper_learner_factories(fast: bool = False) -> Dict[str, Callable[[], Learner]]:
    """name → zero-argument factory for each paper learner.

    With ``fast=True`` the random forest uses 25 trees and the DNN trains
    for at most 60 epochs — enough for the scaled-down synthetic data
    while keeping suites quick.  With ``fast=False`` the exact paper
    settings apply (100 trees; 10000-epoch cap with early stopping).
    """
    n_trees = 25 if fast else 100
    max_epochs = 200 if fast else 10000
    # Fast mode compensates for fewer epochs with a larger adam step and
    # smaller batches (the paper does not pin the learning rate).
    dnn_kwargs = (
        dict(learning_rate=3e-3, batch_size=64, n_iter_no_change=20)
        if fast
        else {}
    )
    return {
        "random-forest": lambda: RandomForestLearner(n_estimators=n_trees, seed=0),
        "k-nearest-neighbors": lambda: KNearestNeighborsLearner(k=5),
        "decision-tree": lambda: DecisionTreeLearner(),
        "deep-neural-network": lambda: DeepNeuralNetworkLearner(
            hidden_layers=PAPER_HIDDEN_LAYERS,
            alpha=1e-5,
            random_state=1,
            max_iter=max_epochs,
            **dnn_kwargs,
        ),
        "collaborative-filtering": lambda: CollaborativeFilteringRecommender(
            support_threshold=0.75, p_value=0.01
        ),
    }


def make_paper_learner(name: str, fast: bool = False) -> Learner:
    """Build one paper learner by name."""
    factories = paper_learner_factories(fast=fast)
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(
            f"unknown learner {name!r}; choose from {sorted(factories)}"
        ) from None
