"""Collaborative filtering with chi-square independence tests and voting.

Auric's primary learner (section 3.2).  Fitting:

1. For each attribute column, run a chi-square test of independence
   against the parameter values; keep the *dependent* attributes.  This
   "eliminates the irrelevant attributes with respect to the parameter
   values" — the failure mode that hurts kNN.
2. Index the training carriers by their values on the dependent
   attributes.

Recommending for a new carrier: find the carriers that exactly match on
the dependent attributes and vote; the recommendation is the value with
maximum support, accepted when its support reaches the threshold (75% in
the paper's implementation).

Two extensions from section 6 are built in as options:

* per-sample voting weights (performance-feedback weighting), and
* a fallback policy for carriers whose dependent-attribute combination
  was never observed (the cold-start / "bootstrapping the unobserved"
  limitation): ``"plurality"`` falls back progressively — first dropping
  the least-dependent attributes, finally the global mode — while
  ``"error"`` raises :class:`~repro.exceptions.ColdStartError`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ColdStartError, NotFittedError
from repro.learners.base import Label, Learner, Row
from repro.learners.chi_square import (
    ChiSquareResult,
    marginal_tests,
    test_conditional_independence,
)
from repro.types import AttributeValue

DEFAULT_SUPPORT_THRESHOLD = 0.75
DEFAULT_P_VALUE = 0.01


@dataclass(frozen=True)
class VoteOutcome:
    """Detailed result of one recommendation vote."""

    value: Label
    support: float
    matched_weight: float
    confident: bool
    dependent_attributes: Tuple[int, ...]
    fallback_used: bool

    def __str__(self) -> str:
        marker = "" if self.confident else " (below support threshold)"
        return (
            f"recommend {self.value!r} with {self.support:.0%} support over "
            f"{self.matched_weight:g} matching carriers{marker}"
        )


class CollaborativeFilteringRecommender(Learner):
    """Chi-square-filtered exact-match voting recommender."""

    name = "collaborative-filtering"

    def __init__(
        self,
        support_threshold: float = DEFAULT_SUPPORT_THRESHOLD,
        p_value: float = DEFAULT_P_VALUE,
        fallback: str = "plurality",
        min_matched: float = 1.0,
        min_effect_size: float = 0.12,
        selection: str = "conditional",
    ) -> None:
        super().__init__()
        if not 0.0 < support_threshold <= 1.0:
            raise ValueError("support_threshold must be in (0, 1]")
        if fallback not in ("plurality", "error"):
            raise ValueError("fallback must be 'plurality' or 'error'")
        if min_matched < 1.0:
            raise ValueError("min_matched must be >= 1")
        if not 0.0 <= min_effect_size <= 1.0:
            raise ValueError("min_effect_size must be in [0, 1]")
        if selection not in ("conditional", "marginal"):
            raise ValueError("selection must be 'conditional' or 'marginal'")
        #: Attribute-selection strategy: "conditional" (stepwise forward
        #: selection with stratified chi-square tests — the default) or
        #: "marginal" (the paper's verbatim formulation: every attribute
        #: whose marginal test rejects independence is dependent).  The
        #: marginal mode exists for the ablation that quantifies why the
        #: conditional refinement is needed at realistic sample sizes.
        self.selection = selection
        self.support_threshold = support_threshold
        self.p_value = p_value
        self.fallback = fallback
        #: Minimum Cramér's V for an attribute to count as dependent.  At
        #: production sample sizes the chi-square test alone flags even
        #: negligible associations as significant; the effect-size floor
        #: keeps the "eliminate irrelevant attributes" property the paper
        #: relies on.
        self.min_effect_size = min_effect_size
        #: Minimum total vote weight a matching cell must carry; thinner
        #: cells are noise-dominated, so the vote relaxes to a coarser
        #: attribute match instead (dropping the weakest dependency
        #: first).  The final, unconditioned level always qualifies.
        self.min_matched = min_matched
        self._dependent: Tuple[int, ...] = ()
        self._test_results: List[ChiSquareResult] = []
        # One vote index per progressively-relaxed dependent-attribute
        # prefix; index 0 is the full dependent set, the last is () — the
        # global vote.  Prefixes are ordered by decreasing chi-square
        # statistic, so relaxation drops the *least* dependent attribute
        # first.
        self._indexes: List[Dict[Tuple[AttributeValue, ...], Counter]] = []
        self._prefixes: List[Tuple[int, ...]] = []
        # Lazily-derived per-dependent-column vocabularies (value ->
        # positive code) backing the vectorized recommend_many grouping.
        self._vote_vocabs: Optional[List[Dict[AttributeValue, int]]] = None

    # -- fitting ----------------------------------------------------------

    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        self.fit_weighted(rows, labels, weights=None)

    def fit_weighted(
        self,
        rows: Sequence[Row],
        labels: Sequence[Label],
        weights: Optional[Sequence[float]] = None,
    ) -> "CollaborativeFilteringRecommender":
        """Fit with optional per-carrier voting weights (section 6).

        A carrier whose configuration historically improved service
        performance can be given weight > 1 so its values carry more
        support in the vote.
        """
        if weights is not None and len(weights) != len(rows):
            raise ValueError("weights length must match rows")
        n_columns = len(rows[0])
        labels = list(labels)
        # One pass over the sample matrix: every attribute column is
        # materialized once and the label vector is encoded once, so the
        # marginal stage no longer re-hashes raw values per sample.
        matrix = np.empty((len(rows), n_columns), dtype=object)
        for i, row in enumerate(rows):
            matrix[i, :] = row
        columns = [matrix[:, col] for col in range(n_columns)]

        self._select(
            columns,
            labels,
            lambda selected: list(map(tuple, matrix[:, selected])),
        )
        self._build_indexes(rows, labels, weights)
        self._fitted = True
        return self

    def fit_encoded(
        self,
        code_matrix: np.ndarray,
        label_codes: np.ndarray,
        column_sizes: Optional[Sequence[int]] = None,
    ) -> "CollaborativeFilteringRecommender":
        """Attribute selection over pre-encoded integer code columns.

        The columnar fit path (:mod:`repro.core.columnar`) encodes the
        attribute matrix once per snapshot; this entry point runs the
        same marginal + stepwise-conditional selection directly on the
        code columns.  Per column, codes are bijective with the raw
        values and assigned in the same first-appearance order, so every
        contingency table — and therefore every statistic, ranking and
        selected attribute — is bit-identical to :meth:`fit` on the
        decoded rows.  Strata for the conditional stage are packed into
        one int64 key per sample instead of per-sample value tuples.

        Selection only: the tuple-keyed vote indexes need raw rows, so
        :meth:`vote` raises until a voting fit runs (the engine builds
        its own vectorized vote tables instead).
        """
        code_matrix = np.ascontiguousarray(code_matrix)
        if code_matrix.ndim != 2:
            raise ValueError("code_matrix must be 2-dimensional")
        n_samples, n_columns = code_matrix.shape
        if n_samples == 0:
            raise ValueError("cannot fit a learner on an empty dataset")
        label_codes = np.asarray(label_codes)
        if len(label_codes) != n_samples:
            raise ValueError("label_codes length must match code_matrix rows")
        if column_sizes is None:
            column_sizes = [
                int(code_matrix[:, col].max()) + 1 for col in range(n_columns)
            ]
        columns = [code_matrix[:, col] for col in range(n_columns)]

        def strata_fn(selected: List[int]) -> np.ndarray:
            if not selected:
                return np.zeros(n_samples, dtype=np.int64)
            from repro.core.columnar import pack_columns

            return pack_columns(code_matrix, selected, column_sizes)

        self._select(columns, label_codes, strata_fn)
        self._prefixes = [
            self._dependent[:length]
            for length in range(len(self._dependent), -1, -1)
        ]
        self._indexes = []
        self._vote_vocabs = None
        self._fitted = True
        return self

    def _select(self, columns, labels, strata_fn) -> None:
        """Marginal ranking plus (for ``selection="conditional"``)
        stepwise forward selection; sets ``_test_results``/``_dependent``.

        ``strata_fn(selected)`` must return the per-sample stratum keys
        for the currently-selected columns — value tuples on the raw
        path, packed integer keys on the encoded path; both group the
        samples identically.
        """
        # Marginal tests: candidate ranking plus per-column diagnostics.
        self._test_results = marginal_tests(columns, labels, self.p_value)
        # Candidacy needs only statistical dependence; the effect-size
        # floor is applied at the conditional stage, where a weak
        # marginal association can still prove strong once dominant
        # attributes are absorbed (e.g. a carrier type that only
        # matters on low-band carriers).
        ranked = [
            (result.statistic, col)
            for col, result in enumerate(self._test_results)
            if result.dependent
        ]
        ranked.sort(key=lambda item: (-item[0], item[1]))

        if self.selection == "marginal":
            self._dependent = tuple(
                col
                for _, col in ranked
                if self._test_results[col].cramers_v >= self.min_effect_size
            )
            return

        # Stepwise forward selection with conditional chi-square tests:
        # each round, every remaining candidate is tested for association
        # with the parameter *within* the cells formed by the attributes
        # selected so far, and the strongest still-dependent candidate
        # joins the set.  This removes attributes whose marginal
        # association merely mirrors an already-selected one (e.g. a MIMO
        # mode that tracks the carrier frequency) — matching on them
        # would fragment the vote cells without adding signal — while
        # still finding weak-marginal but real dependencies once the
        # dominant ones are absorbed.
        selected: List[int] = []
        remaining = [col for _, col in ranked]
        while remaining:
            strata = strata_fn(selected)
            best_col = None
            best_statistic = 0.0
            for col in remaining:
                result = test_conditional_independence(
                    columns[col], labels, strata, self.p_value
                )
                if not result.dependent or result.cramers_v < self.min_effect_size:
                    continue
                if result.statistic > best_statistic:
                    best_col, best_statistic = col, result.statistic
            if best_col is None:
                break
            selected.append(best_col)
            remaining.remove(best_col)
        self._dependent = tuple(selected)

    def _build_indexes(
        self,
        rows: Sequence[Row],
        labels: Sequence[Label],
        weights: Optional[Sequence[float]],
    ) -> None:
        self._prefixes = [
            self._dependent[:length]
            for length in range(len(self._dependent), -1, -1)
        ]
        self._indexes = []
        self._vote_vocabs = None
        for prefix in self._prefixes:
            index: Dict[Tuple[AttributeValue, ...], Counter] = {}
            for i, row in enumerate(rows):
                key = tuple(row[col] for col in prefix)
                counter = index.setdefault(key, Counter())
                counter[labels[i]] += 1.0 if weights is None else float(weights[i])
            self._indexes.append(index)

    # -- introspection ----------------------------------------------------

    @property
    def dependent_attributes(self) -> Tuple[int, ...]:
        """Indices of attribute columns the parameter depends on,
        strongest dependency first."""
        self._require_fitted()
        return self._dependent

    def test_result(self, column: int) -> ChiSquareResult:
        """The chi-square outcome for one attribute column."""
        self._require_fitted()
        return self._test_results[column]

    def explain_one(self, row: Row, column_names: Sequence[str]) -> List[str]:
        """Human-readable explanation of one recommendation."""
        outcome = self.vote(row)
        conditions = [
            f"{column_names[col]}={row[col]}" for col in outcome.dependent_attributes
        ]
        lines = [
            "dependent attributes (chi-square, p<"
            f"{self.p_value}): {', '.join(conditions) if conditions else '(none)'}",
            str(outcome),
        ]
        if outcome.fallback_used:
            lines.append("note: exact match not found; relaxed match used")
        return lines

    # -- prediction -------------------------------------------------------

    def _require_vote_indexes(self) -> None:
        self._require_fitted()
        if not self._indexes:
            raise NotFittedError(
                f"{self.name} was fitted from encoded columns (attribute "
                "selection only); refit with fit()/fit_weighted() to vote"
            )

    def vote(self, row: Row) -> VoteOutcome:
        """Run the voting procedure for one new carrier.

        The loop probes level 0 (the full dependent-attribute match)
        first, so ``exact_match_exists`` falls out of that probe; each
        probed level's total weight is computed exactly once.
        """
        self._require_vote_indexes()
        last_level = len(self._prefixes) - 1
        exact_match_exists = False
        for level, (prefix, index) in enumerate(zip(self._prefixes, self._indexes)):
            key = tuple(row[col] for col in prefix)
            counter = index.get(key)
            if level == 0:
                exact_match_exists = bool(counter)
            if not counter:
                continue
            total = sum(counter.values())
            if level < last_level and total < self.min_matched:
                continue
            if level > 0 and not exact_match_exists and self.fallback == "error":
                raise ColdStartError(
                    "no existing carrier matches the dependent attributes "
                    f"{self._prefixes[0]} of the new carrier"
                )
            value, top = counter.most_common(1)[0]
            support = top / total if total > 0 else 0.0
            return VoteOutcome(
                value=value,
                support=support,
                matched_weight=total,
                confident=support >= self.support_threshold,
                dependent_attributes=prefix,
                fallback_used=level > 0,
            )
        raise ColdStartError("the recommender has no training data to vote with")

    def _cell_vocabs(self) -> List[Dict[AttributeValue, int]]:
        """Per-dependent-column value vocabularies, derived lazily from
        the exact-match index keys (code 0 is reserved for unseen)."""
        if self._vote_vocabs is None:
            vocabs: List[Dict[AttributeValue, int]] = [
                {} for _ in self._dependent
            ]
            for key in self._indexes[0]:
                for j, value in enumerate(key):
                    vocab = vocabs[j]
                    if value not in vocab:
                        vocab[value] = len(vocab) + 1
            self._vote_vocabs = vocabs
        return self._vote_vocabs

    #: Below this batch size the dict-cache path wins (no array setup).
    _VECTORIZE_MIN_ROWS = 32

    def recommend_many(self, rows: Sequence[Row]) -> List[VoteOutcome]:
        """Vote for a batch of rows, computing each distinct cell once.

        A vote depends only on the row's values at the dependent
        attributes (every relaxation prefix is a prefix of that key), so
        rows that agree there share one :class:`VoteOutcome`.  Large
        batches group rows by an int64-packed cell code (``np.unique``)
        instead of hashing one value tuple per row; unseen values share
        code 0, which is sound because a value absent from the training
        index can never match at any relaxation level that includes its
        column.  On the bulk paths — LOO evaluation sweeps and full
        service refits — this collapses thousands of per-row votes into
        one vote per distinct dependent-attribute cell.
        """
        self._require_vote_indexes()
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        if len(rows) >= self._VECTORIZE_MIN_ROWS and self._dependent:
            vectorized = self._recommend_many_vectorized(rows)
            if vectorized is not None:
                return vectorized
        cache: Dict[Tuple[AttributeValue, ...], VoteOutcome] = {}
        out: List[VoteOutcome] = []
        for row in rows:
            key = tuple(row[col] for col in self._dependent)
            outcome = cache.get(key)
            if outcome is None:
                outcome = self.vote(row)
                cache[key] = outcome
            out.append(outcome)
        return out

    def _recommend_many_vectorized(
        self, rows: Sequence[Row]
    ) -> Optional[List[VoteOutcome]]:
        """Group rows by packed cell code; ``None`` when the cell key
        space cannot pack into int64 (the caller then hashes tuples)."""
        from repro.core.columnar import (
            ColumnarCapacityError,
            pack_capacity,
            pack_columns,
        )
        from repro.obs import metrics as obs_metrics

        vocabs = self._cell_vocabs()
        sizes = [len(vocab) + 1 for vocab in vocabs]
        columns = list(range(len(sizes)))
        try:
            pack_capacity(sizes, columns)
        except ColumnarCapacityError:
            return None
        codes = np.empty((len(rows), len(columns)), dtype=np.int64)
        for j, col in enumerate(self._dependent):
            vocab = vocabs[j]
            codes[:, j] = [vocab.get(row[col], 0) for row in rows]
        packed = pack_columns(codes, columns, sizes)
        _, first, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
        outcomes = [self.vote(rows[i]) for i in first.tolist()]
        obs_metrics.counter(
            "repro_vote_vectorized_cells_total",
            "Distinct vote cells computed by vectorized kernels",
        ).inc(float(len(outcomes)))
        return [outcomes[group] for group in inverse.reshape(-1).tolist()]

    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        return [outcome.value for outcome in self.recommend_many(rows)]

    def predict_confident(self, rows: Sequence[Row]) -> List[Optional[Label]]:
        """Like predict, but None where support misses the threshold.

        The operational layer (section 5) only pushes confident
        recommendations; an unconfident vote leaves the vendor value.
        """
        return [
            outcome.value if outcome.confident else None
            for outcome in self.recommend_many(rows)
        ]
