"""The learner interface.

A learner consumes *categorical attribute rows* — tuples of attribute
values in a fixed column order — and hashable labels (configuration
parameter values).  This matches the paper's formulation: the predictor
matrix X holds carrier attributes, the predictee vector Y holds one
configuration parameter, and one-hot encoding happens inside the learner
before model fitting (section 4.2).
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Sequence, Tuple

from repro.exceptions import NotFittedError
from repro.types import AttributeValue

Row = Tuple[AttributeValue, ...]
Label = Hashable


class Learner(abc.ABC):
    """Abstract base class for all dependency-model learners."""

    #: Human-readable learner name, set by subclasses.
    name: str = "learner"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> "Learner":
        """Learn the dependency model from existing carriers."""
        if len(rows) != len(labels):
            raise ValueError(
                f"rows and labels disagree in length: {len(rows)} vs {len(labels)}"
            )
        if not rows:
            raise ValueError("cannot fit a learner on an empty dataset")
        widths = {len(r) for r in rows}
        if len(widths) != 1:
            raise ValueError(f"rows have inconsistent widths: {sorted(widths)}")
        self._fit(rows, labels)
        self._fitted = True
        return self

    def predict(self, rows: Sequence[Row]) -> List[Label]:
        """Recommend a label for each row."""
        self._require_fitted()
        return self._predict(rows)

    def predict_one(self, row: Row) -> Label:
        """Recommend a label for a single row."""
        return self.predict([row])[0]

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{self.name} has not been fitted")

    @abc.abstractmethod
    def _fit(self, rows: Sequence[Row], labels: Sequence[Label]) -> None:
        """Subclass fitting logic (inputs already validated)."""

    @abc.abstractmethod
    def _predict(self, rows: Sequence[Row]) -> List[Label]:
        """Subclass prediction logic (fit already checked)."""
