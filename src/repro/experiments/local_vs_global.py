"""Section 4.3.2: collaborative filtering with local vs global voting.

Paper numbers: on the four Table 3 markets, CF-local 96.14% vs
CF-global 95.48%; on all 28 markets (15M+ values), 96.9% vs 96.5%.
Expected shape: the local learner beats the global learner by a small
margin, because carrier tuning has local geographic dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.auric import AuricConfig, AuricEngine
from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import four_markets_workload, full_network_workload
from repro.eval.runner import EvaluationRunner, LocalVsGlobalResult
from repro.experiments.parameter_selection import evaluation_parameters
from repro.reporting.tables import format_table


@dataclass
class LocalVsGlobalExperiment:
    """The local-vs-global accuracy comparison plus the raw mismatches."""

    workload: str
    result: LocalVsGlobalResult
    parameters: List[str]

    @property
    def improvement(self) -> float:
        return self.result.mean_local() - self.result.mean_global()

    def render(self) -> str:
        rows = [
            (
                parameter,
                100.0 * self.result.parameter_accuracy_global[parameter],
                100.0 * self.result.parameter_accuracy_local[parameter],
            )
            for parameter in self.parameters
            if parameter in self.result.parameter_accuracy_local
        ]
        rows.append(
            (
                "MEAN",
                100.0 * self.result.mean_global(),
                100.0 * self.result.mean_local(),
            )
        )
        table = format_table(
            ["parameter", "CF global voting (%)", "CF local voting (%)"],
            rows,
            title=f"Section 4.3.2 — local vs global voting ({self.workload})",
        )
        return (
            table
            + f"\nlocal - global improvement: {100.0 * self.improvement:+.2f} points"
            " (paper: +0.66 on four markets, +0.4 on 28)"
        )


def run(
    dataset: Optional[SyntheticDataset] = None,
    workload: str = "four-markets",
    parameters: Optional[Sequence[str]] = None,
    max_targets_per_parameter: int = 1500,
    engine: Optional[AuricEngine] = None,
    jobs: int = 1,
) -> LocalVsGlobalExperiment:
    """Run the LOO local-vs-global comparison on a workload.

    ``jobs`` parallelizes both the engine fit and the LOO sweep; the
    numbers are identical to ``jobs=1`` by construction.
    """
    if dataset is None:
        dataset = (
            full_network_workload()
            if workload == "full-network"
            else four_markets_workload()
        )
    if parameters is None:
        parameters = evaluation_parameters(dataset)
    if engine is None:
        engine = AuricEngine(dataset.network, dataset.store).fit(
            parameters, jobs=jobs
        )
    runner = EvaluationRunner(dataset)
    result = runner.loo_accuracy(
        engine,
        parameters,
        max_targets_per_parameter=max_targets_per_parameter,
        jobs=jobs,
    )
    return LocalVsGlobalExperiment(
        workload=workload, result=result, parameters=list(parameters)
    )
