"""Fig 11a-d: local-learner accuracy per market for the four
highest-variability parameters.

The paper plots, for each of the 4 most variable of the 65 parameters,
the local learner's prediction accuracy across all 28 markets alongside
each market's distinct-value count.  Findings: variability differs per
market and accuracy tracks it; some markets underperform even at similar
variability (missing attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.auric import AuricEngine
from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import full_network_workload
from repro.eval.runner import EvaluationRunner
from repro.eval.variability import distinct_values_per_parameter, variability_by_market
from repro.reporting.series import format_series


@dataclass
class Fig11Result:
    """parameter → market → (accuracy, distinct values)."""

    parameters: List[str]
    accuracy: Dict[str, Dict[str, float]]
    variability: Dict[str, Dict[str, int]]

    def render(self) -> str:
        sections = []
        for parameter in self.parameters:
            markets = sorted(self.accuracy.get(parameter, {}))
            if not markets:
                continue
            sections.append(
                format_series(
                    "market",
                    markets,
                    {
                        "local accuracy": [
                            self.accuracy[parameter][m] for m in markets
                        ],
                        "distinct values": [
                            float(self.variability.get(m, {}).get(parameter, 0))
                            for m in markets
                        ],
                    },
                    title=f"Fig 11 — local-learner accuracy by market: {parameter}",
                )
            )
        return "\n\n".join(sections)


def run(
    dataset: Optional[SyntheticDataset] = None,
    top_parameters: int = 4,
    max_targets_per_market: int = 300,
    engine: Optional[AuricEngine] = None,
    jobs: int = 1,
) -> Fig11Result:
    """Evaluate the local learner per market on the most variable params."""
    if dataset is None:
        dataset = full_network_workload()
    distinct = distinct_values_per_parameter(dataset.store)
    parameters = sorted(distinct, key=lambda p: -distinct[p])[:top_parameters]
    if engine is None:
        engine = AuricEngine(dataset.network, dataset.store).fit(
            parameters, jobs=jobs
        )
    runner = EvaluationRunner(dataset)
    accuracy = {
        parameter: runner.loo_accuracy_by_market(
            engine,
            parameter,
            max_targets_per_market=max_targets_per_market,
            jobs=jobs,
        )
        for parameter in parameters
    }
    variability = variability_by_market(dataset.network, dataset.store, parameters)
    return Fig11Result(
        parameters=parameters, accuracy=accuracy, variability=variability
    )
