"""Fig 10a-d: per-parameter accuracy of the five global learners.

The figures plot, for each of four markets, the accuracy of every
learner per parameter with parameters reverse-sorted by variability
(distinct-value count).  The paper's findings: accuracy falls as
variability rises; learners correlate (a parameter hard for one is hard
for all).  This experiment reuses the Table 4 scores and renders the
sorted series, plus the rank correlation that quantifies the paper's
"accuracy goes down when variability goes up" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats

from repro.datagen.generator import SyntheticDataset
from repro.eval.accuracy import ParameterAccuracy
from repro.experiments import table4_global_learners
from repro.learners.registry import PAPER_LEARNER_ORDER
from repro.reporting.series import format_series


@dataclass
class Fig10Result:
    """Per-market series of (parameter, variability, accuracy per learner)."""

    scores: ParameterAccuracy
    markets: List[str]

    def market_series(self, market: str):
        """Parameters sorted by variability desc, with per-learner accuracy."""
        rows = [s for s in self.scores.scores if s.market == market]
        by_parameter: Dict[str, Dict[str, float]] = {}
        variability: Dict[str, int] = {}
        for score in rows:
            by_parameter.setdefault(score.parameter, {})[score.learner] = (
                score.accuracy
            )
            variability[score.parameter] = score.distinct_values
        order = sorted(variability, key=lambda p: (-variability[p], p))
        series = {
            learner: [by_parameter[p].get(learner, float("nan")) for p in order]
            for learner in PAPER_LEARNER_ORDER
        }
        series["distinct"] = [float(variability[p]) for p in order]
        return order, series

    def variability_accuracy_correlation(self, learner: str) -> float:
        """Spearman correlation between distinct-value count and accuracy.

        The paper's claim corresponds to a *negative* correlation.
        """
        xs = [s.distinct_values for s in self.scores.scores if s.learner == learner]
        ys = [s.accuracy for s in self.scores.scores if s.learner == learner]
        if len(set(xs)) < 2:
            return 0.0
        rho, _ = stats.spearmanr(xs, ys)
        return float(rho)

    def render(self) -> str:
        sections = []
        for market in self.markets:
            order, series = self.market_series(market)
            sections.append(
                format_series(
                    "parameter",
                    order,
                    series,
                    title=f"Fig 10 — per-parameter accuracy, {market} "
                    "(sorted by variability desc)",
                )
            )
        correlations = ", ".join(
            f"{name}: {self.variability_accuracy_correlation(name):+.2f}"
            for name in PAPER_LEARNER_ORDER
        )
        sections.append(f"Spearman(variability, accuracy): {correlations}")
        return "\n\n".join(sections)


def run(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Optional[Sequence[str]] = None,
    fast: bool = True,
) -> Fig10Result:
    table4 = table4_global_learners.run(dataset, parameters=parameters, fast=fast)
    return Fig10Result(scores=table4.scores, markets=table4.markets)
