"""Lasso regression as a dependency learner (section 3.2).

The paper discusses lasso — linear regression with an L1 sparsity
penalty — as one way to learn the dependency structure, before settling
on collaborative filtering.  This experiment quantifies the gap on
numeric parameters: regression + snap-to-nearest-observed-value vs the
CF voting recommender.

Expected shape: CF wins comfortably — parameter values are categorical
decisions over skewed discrete sets, which a linear model of one-hot
attributes fits poorly; lasso's virtue (sparse, interpretable
coefficients) shows in the selected-attribute count, not accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import four_markets_workload
from repro.eval.runner import EvaluationRunner
from repro.learners.collaborative_filtering import CollaborativeFilteringRecommender
from repro.learners.lasso import LassoDependencyLearner
from repro.reporting.tables import format_table

DEFAULT_PARAMETERS = (
    "pMax",
    "qrxlevmin",
    "qHyst",
    "lbCapacityThreshold",
    "admissionThreshold",
    "t310",
)


@dataclass
class LassoBaselineResult:
    parameters: List[str]
    lasso_accuracy: Dict[str, float]
    cf_accuracy: Dict[str, float]

    def mean_lasso(self) -> float:
        return sum(self.lasso_accuracy.values()) / len(self.lasso_accuracy)

    def mean_cf(self) -> float:
        return sum(self.cf_accuracy.values()) / len(self.cf_accuracy)

    def render(self) -> str:
        rows = [
            (
                parameter,
                100.0 * self.lasso_accuracy.get(parameter, float("nan")),
                100.0 * self.cf_accuracy.get(parameter, float("nan")),
            )
            for parameter in self.parameters
        ]
        rows.append(("MEAN", 100.0 * self.mean_lasso(), 100.0 * self.mean_cf()))
        return format_table(
            ["parameter", "lasso (%)", "collaborative filtering (%)"],
            rows,
            title="Section 3.2 — lasso regression vs collaborative filtering",
        )


def run(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    folds: int = 3,
    max_samples_per_parameter: int = 2500,
) -> LassoBaselineResult:
    if dataset is None:
        dataset = four_markets_workload()
    runner = EvaluationRunner(dataset)
    factories = {
        "lasso": lambda: LassoDependencyLearner(lam=0.01),
        "collaborative-filtering": CollaborativeFilteringRecommender,
    }
    scores = runner.compare_learners(
        factories,
        list(parameters),
        folds=folds,
        max_samples_per_parameter=max_samples_per_parameter,
    )
    return LassoBaselineResult(
        parameters=list(parameters),
        lasso_accuracy=scores.by_parameter("lasso"),
        cf_accuracy=scores.by_parameter("collaborative-filtering"),
    )
