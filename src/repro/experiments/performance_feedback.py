"""Performance-feedback weighted voting (section 6 of the paper).

"For the similar carriers with matching attributes and different
distribution of parameter values, we can provide higher weights (in our
voting approach) to configuration changes that have improved service
performance in the past."

The experiment simulates the KPI history Auric would consult: carriers
whose configuration deviates from its engineering intent (trial
leftovers) show degraded KPIs with high probability; well-configured
carriers rarely do.  Down-weighting poor-KPI carriers in the vote should
recover part of the trial-noise error — the paper's hypothesized benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.auric import AuricEngine
from repro.datagen.generator import SyntheticDataset
from repro.datagen.provenance import Provenance
from repro.datagen.workloads import four_markets_workload
from repro.eval.runner import EvaluationRunner
from repro.reporting.tables import format_table
from repro.rng import derive

DEFAULT_PARAMETERS = ("pMax", "sFreqPrio", "qrxlevmin", "qHyst", "lbCapacityThreshold")


def simulate_kpi_weights(
    dataset: SyntheticDataset,
    parameters: Sequence[str],
    poor_kpi_weight: float = 0.25,
    detection_rate: float = 0.7,
    false_alarm_rate: float = 0.05,
    seed: int = 88,
) -> Dict[Hashable, float]:
    """Vote weights from simulated KPI monitoring.

    A trial-leftover value degrades KPIs and is *detected* with
    ``detection_rate``; healthy carriers trip the detector with
    ``false_alarm_rate``.  Detected carriers get ``poor_kpi_weight``.
    The simulation never reads the intended value — only whether the
    carrier's KPI history looks degraded, which is what a production
    system would have.
    """
    rng = derive(seed, "kpi-weights")
    weights: Dict[Hashable, float] = {}
    for parameter in parameters:
        spec = dataset.catalog.spec(parameter)
        mapping = (
            dataset.store.pairwise_values(parameter)
            if spec.is_pairwise
            else dataset.store.singular_values(parameter)
        )
        for key in sorted(mapping):
            record = dataset.provenance.get(parameter, key)
            degraded = record.provenance is Provenance.TRIAL_LEFTOVER
            probability = detection_rate if degraded else false_alarm_rate
            if rng.random() < probability:
                weights[key] = poor_kpi_weight
    return weights


@dataclass
class FeedbackResult:
    parameters: List[str]
    unweighted: Dict[str, float]
    weighted: Dict[str, float]
    #: Accuracy restricted to *contested* targets — those whose vote cell
    #: contains at least one detected-degraded voter; weighting can only
    #: change outcomes there, so this subset shows the effect undiluted.
    contested_unweighted: float = float("nan")
    contested_weighted: float = float("nan")
    contested_targets: int = 0

    def mean_unweighted(self) -> float:
        return sum(self.unweighted.values()) / len(self.unweighted)

    def mean_weighted(self) -> float:
        return sum(self.weighted.values()) / len(self.weighted)

    @property
    def improvement(self) -> float:
        return self.mean_weighted() - self.mean_unweighted()

    @property
    def contested_improvement(self) -> float:
        return self.contested_weighted - self.contested_unweighted

    def render(self) -> str:
        rows = [
            (
                parameter,
                100.0 * self.unweighted[parameter],
                100.0 * self.weighted[parameter],
            )
            for parameter in self.parameters
        ]
        rows.append(("MEAN", 100.0 * self.mean_unweighted(),
                     100.0 * self.mean_weighted()))
        table = format_table(
            ["parameter", "unweighted voting (%)", "KPI-weighted voting (%)"],
            rows,
            title="Section 6 extension — performance-feedback weighted voting",
        )
        contested = ""
        if self.contested_targets:
            contested = (
                f"\ncontested targets ({self.contested_targets}): "
                f"{100.0 * self.contested_unweighted:.2f}% -> "
                f"{100.0 * self.contested_weighted:.2f}% "
                f"({100.0 * self.contested_improvement:+.2f} points)"
            )
        return table + (
            f"\nweighting improvement: {100.0 * self.improvement:+.2f} points"
            + contested
        )


def run(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    max_targets_per_parameter: int = 800,
) -> FeedbackResult:
    if dataset is None:
        dataset = four_markets_workload()
    parameters = list(parameters)
    runner = EvaluationRunner(dataset)

    plain = AuricEngine(dataset.network, dataset.store).fit(parameters)
    plain_result = runner.loo_accuracy(
        plain, parameters, max_targets_per_parameter=max_targets_per_parameter,
        scopes=("local",),
    )

    weights = simulate_kpi_weights(dataset, parameters)
    weighted = AuricEngine(dataset.network, dataset.store).fit(
        parameters, vote_weights=weights
    )
    weighted_result = runner.loo_accuracy(
        weighted, parameters,
        max_targets_per_parameter=max_targets_per_parameter,
        scopes=("local",),
    )

    # Contested subset: targets whose vote cell contains a down-weighted
    # voter — the only places the weighting can act.
    contested_hits = [0, 0]
    contested_total = 0
    weighted_keys = set(weights)
    view = runner.view
    for parameter in parameters:
        spec = dataset.catalog.spec(parameter)
        model = weighted._model(parameter)
        cells_with_detected = {
            model.samples[key][0] for key in weighted_keys if key in model.samples
        }
        samples = view.samples(parameter)
        for key, label in zip(samples.keys, samples.labels):
            if model.samples.get(key, (None,))[0] not in cells_with_detected:
                continue
            contested_total += 1
            for slot, engine in ((0, plain), (1, weighted)):
                if spec.is_pairwise:
                    rec = engine.recommend_for_pair(parameter, key, local=True)
                else:
                    rec = engine.recommend_for_carrier(parameter, key, local=True)
                contested_hits[slot] += rec.value == label

    return FeedbackResult(
        parameters=parameters,
        unweighted=plain_result.parameter_accuracy_local,
        weighted=weighted_result.parameter_accuracy_local,
        contested_unweighted=(
            contested_hits[0] / contested_total if contested_total else float("nan")
        ),
        contested_weighted=(
            contested_hits[1] / contested_total if contested_total else float("nan")
        ),
        contested_targets=contested_total,
    )
