"""Experiment registry: id → run function."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    lasso_baseline,
    motivation_growth,
    fig2_variability,
    fig3_market_variability,
    fig4_skewness,
    fig10_accuracy_by_parameter,
    fig11_local_by_market,
    fig12_mismatch_labels,
    local_vs_global,
    performance_feedback,
    table3_dataset,
    table4_global_learners,
    table5_operational,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": fig2_variability.run,
    "fig3": fig3_market_variability.run,
    "fig4": fig4_skewness.run,
    "fig10": fig10_accuracy_by_parameter.run,
    "fig11": fig11_local_by_market.run,
    "fig12": fig12_mismatch_labels.run,
    "local-vs-global": local_vs_global.run,
    "table3": table3_dataset.run,
    "table4": table4_global_learners.run,
    "table5": table5_operational.run,
    "ablation-support-threshold": ablations.run_support_threshold_sweep,
    "ablation-p-value": ablations.run_p_value_sweep,
    "ablation-effect-size": ablations.run_effect_size_sweep,
    "ablation-proximity": ablations.run_proximity_sweep,
    "ablation-selection": ablations.run_selection_strategy_sweep,
    "performance-feedback": performance_feedback.run,
    "lasso-baseline": lasso_baseline.run,
    "motivation-growth": motivation_growth.run,
}


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by its id (e.g. ``"table4"``)."""
    try:
        run = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return run(**kwargs)
