"""Table 5: two months of SmartLaunch operation.

Paper numbers: 1251 new carriers launched; Auric recommended changes on
143 (11.4%); 114 (9%) were implemented successfully (1102 parameters
changed); 29 fall-outs, caused by premature off-band unlocks and EMS
timeouts.

The simulation launches a stream of carriers: the integration vendor
sets an initial configuration from its (coarse, network-wide) rule-book;
SmartLaunch runs pre-checks, gets Auric's recommendation, pushes only
the confident mismatches through the EMS while the carrier is locked,
unlocks and monitors.  Expected shape: a ~10% minority of launches get
changes, most pushes succeed, and a small number of fall-outs split
between premature unlocks and EMS timeouts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.rulebook import Rule, RuleBook
from repro.config.managed_objects import build_vendor_schema
from repro.config.templates import ConfigTemplate
from repro.core.auric import AuricEngine
from repro.core.recommendation import CarrierRecommendation
from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import four_markets_workload
from repro.eval.splits import stratified_sample_indices
from repro.ops.controller import ConfigPushController
from repro.ops.ems import ElementManagementSystem
from repro.ops.monitoring import KPIMonitor
from repro.ops.smartlaunch import LaunchStats, SmartLaunch, SmartLaunchConfig
from repro.reporting.tables import format_table
from repro.rng import derive
from repro.types import ParameterValue, Vendor

#: The coarse attribute key an integration vendor's rule-book uses.  The
#: vendor knows network-wide practice per carrier class but not
#: market-local or geographically local tuning — that gap is what Auric
#: corrects at launch time.
VENDOR_RULEBOOK_KEY = (
    "carrier_frequency",
    "carrier_type",
    "channel_bandwidth",
    "morphology",
    "market",
)


def build_vendor_rulebook(dataset: SyntheticDataset) -> RuleBook:
    """A vendor rule-book: majority value per coarse attribute class."""
    rulebook = RuleBook(dataset.catalog, name="vendor-integration")
    for spec in dataset.catalog.singular_parameters():
        values = dataset.store.singular_values(spec.name)
        by_class: Dict[Tuple, Counter] = {}
        for carrier_id, value in values.items():
            row = dataset.network.carrier(carrier_id).attributes
            key = tuple((a, row[a]) for a in VENDOR_RULEBOOK_KEY)
            by_class.setdefault(key, Counter())[value] += 1
        for key, counter in by_class.items():
            rulebook.add_rule(
                Rule(
                    parameter=spec.name,
                    value=counter.most_common(1)[0][0],
                    conditions=key,
                )
            )
    return rulebook


@dataclass
class Table5Result:
    """The launch-campaign aggregate."""

    stats: LaunchStats

    def render(self) -> str:
        rows = [
            (label, count, f"{percent:.1f}%")
            for label, count, percent in self.stats.table5_rows()
        ]
        table = format_table(
            ["metric", "count", "% of launches"],
            rows,
            title="Table 5 — SmartLaunch operational experience",
        )
        outcomes = self.stats.outcome_counts()
        detail = ", ".join(
            f"{outcome.value}={count}"
            for outcome, count in outcomes.items()
            if count
        )
        return table + (
            f"\nparameters changed: {self.stats.parameters_changed}; "
            f"fall-outs: {self.stats.fallouts}; outcomes: {detail}"
        )


def run(
    dataset: Optional[SyntheticDataset] = None,
    launches: int = 1251,
    parameters: Optional[Sequence[str]] = None,
    engine: Optional[AuricEngine] = None,
    vendor_error_rate: float = 0.001,
    seed: int = 2021,
) -> Table5Result:
    """Simulate a launch campaign of ``launches`` carriers.

    The vendor's initial configuration follows current network-wide
    practice (the global majority for the carrier's attribute class —
    vendors work from the engineering rule-books), with rare mistakes
    and out-of-date entries at ``vendor_error_rate`` per parameter.
    Auric's launch-time value-add is therefore exactly what section 5
    describes: catching vendor mistakes, out-of-date rule-books, and
    pending local tuning.
    """
    if dataset is None:
        dataset = four_markets_workload()
    singular = [s.name for s in dataset.catalog.singular_parameters()]
    if parameters is None:
        parameters = singular
    if engine is None:
        engine = AuricEngine(dataset.network, dataset.store).fit(parameters)

    schema = build_vendor_schema(Vendor.VENDOR_A, dataset.catalog)
    ems = ElementManagementSystem(dataset.network, dataset.store)
    controller = ConfigPushController(ems, ConfigTemplate(schema))
    monitor = KPIMonitor(dataset.store)
    workflow = SmartLaunch(controller, monitor, SmartLaunchConfig(seed=seed))

    # Launch candidates: existing carriers replayed as new launches
    # (their stored config is the post-launch truth the vendor would
    # converge to; the vendor's *initial* config comes from its book).
    all_carriers = sorted(
        c.carrier_id for c in dataset.network.carriers()
    )
    rng = derive(seed, "table5-launches")
    count = min(launches, len(all_carriers))
    picked = rng.choice(len(all_carriers), size=count, replace=False)
    launch_stream = []
    for i in sorted(picked):
        carrier_id = all_carriers[int(i)]
        vendor_config = _vendor_config(
            engine, dataset, carrier_id, parameters, vendor_error_rate, rng
        )
        recommendation = _recommend(engine, carrier_id, parameters)
        launch_stream.append((carrier_id, vendor_config, recommendation))

    stats = workflow.run_campaign(launch_stream)
    return Table5Result(stats=stats)


def _vendor_config(
    engine: AuricEngine,
    dataset: SyntheticDataset,
    carrier_id,
    parameters: Sequence[str],
    vendor_error_rate: float,
    rng,
    stale_book_rate: float = 0.045,
    stale_book_parameters: int = 8,
) -> Dict[str, ParameterValue]:
    """The vendor's initial configuration for a launching carrier.

    Vendors configure from current engineering rule-books — the global
    majority for the carrier's attribute class — with two error modes:
    rare per-parameter mistakes (``vendor_error_rate``) and occasional
    *stale rule-books* that set several parameters from an out-of-date
    edition at once (the paper's changed carriers averaged ~10 changed
    parameters each, which points at whole-book staleness rather than
    independent slips).
    """
    row = engine.carrier_row(carrier_id)
    stale: set = set()
    if rng.random() < stale_book_rate:
        count = min(stale_book_parameters, len(parameters))
        picked = rng.choice(len(parameters), size=count, replace=False)
        stale = {parameters[int(i)] for i in picked}
    config: Dict[str, ParameterValue] = {}
    for name in parameters:
        value = engine.recommend_global(name, row, exclude=carrier_id).value
        if name in stale or (
            vendor_error_rate > 0.0 and rng.random() < vendor_error_rate
        ):
            spec = dataset.catalog.spec(name)
            legal = spec.legal_values(limit=500)
            value = legal[int(rng.integers(0, len(legal)))]
        config[name] = value
    return config


def _recommend(
    engine: AuricEngine, carrier_id, parameters: Sequence[str]
) -> CarrierRecommendation:
    recommendation = CarrierRecommendation(target=str(carrier_id))
    for name in parameters:
        recommendation.add(
            engine.recommend_for_carrier(
                name, carrier_id, local=True, leave_one_out=True
            )
        )
    return recommendation
