"""Fig 4: skewness of configuration parameter values.

The paper's finding: 33 of the 65 parameters are highly skewed
(|skew| > 1) and 12 moderately (0.5 < |skew| <= 1) — the skew that makes
rare-but-intentional values hard for classic classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import full_network_workload
from repro.eval.skewness import (
    classification_counts,
    skewness_classification,
    skewness_per_parameter,
)
from repro.reporting.tables import format_table


@dataclass
class Fig4Result:
    """parameter → skewness, with the paper's high/moderate split."""

    skews: Dict[str, float]

    def counts(self) -> Dict[str, int]:
        return classification_counts(self.skews)

    def render(self) -> str:
        rows = [
            (name, value, skewness_classification(value))
            for name, value in sorted(
                self.skews.items(), key=lambda kv: -abs(kv[1])
            )
        ]
        table = format_table(
            ["parameter", "skewness", "class"],
            rows,
            title="Fig 4 — skewness of configuration parameter values",
            float_format="{:+.2f}",
        )
        counts = self.counts()
        summary = (
            f"\n{counts['high']} highly skewed, {counts['moderate']} moderately, "
            f"{counts['symmetric']} approximately symmetric "
            f"(paper: 33 high, 12 moderate of 65)"
        )
        return table + summary


def run(dataset: Optional[SyntheticDataset] = None) -> Fig4Result:
    if dataset is None:
        dataset = full_network_workload()
    return Fig4Result(skewness_per_parameter(dataset.store))
