"""The paper's motivation: traffic and carrier growth over three years.

Section 1/2: the provider observed a "tremendous increase in traffic,
and numbers of carriers" over three years — the reason carriers keep
being added and their configuration keeps needing generation.  This
experiment renders the growth series from the synthetic deployment
timeline.  Expected shape: both series grow monotonically, and traffic
grows faster than the carrier count (per-carrier demand also grows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datagen.generator import SyntheticDataset
from repro.datagen.growth import GrowthTimeline, build_growth_timeline
from repro.datagen.workloads import full_network_workload
from repro.reporting.series import format_series


@dataclass
class MotivationGrowthResult:
    timeline: GrowthTimeline

    def render(self) -> str:
        quarters = list(range(self.timeline.quarters))
        normalized_traffic = [
            t / max(self.timeline.traffic_per_quarter[0], 1e-9)
            for t in self.timeline.traffic_per_quarter
        ]
        table = format_series(
            "quarter",
            quarters,
            {
                "carriers": [float(c) for c in self.timeline.carriers_per_quarter],
                "traffic (normalized)": normalized_traffic,
            },
            title="Motivation — carrier and traffic growth over three years",
        )
        return table + (
            f"\ncarrier growth x{self.timeline.carriers_growth_factor():.1f}, "
            f"traffic growth x{self.timeline.traffic_growth_factor():.1f} "
            "over the horizon"
        )


def run(
    dataset: Optional[SyntheticDataset] = None, seed: int = 0
) -> MotivationGrowthResult:
    if dataset is None:
        dataset = full_network_workload()
    return MotivationGrowthResult(
        timeline=build_growth_timeline(dataset.network, seed=seed)
    )
