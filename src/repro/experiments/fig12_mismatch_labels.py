"""Fig 12: engineer labeling of recommendation mismatches.

The paper sampled 54,915 mismatches between Auric's local-learner
recommendations and the current network configuration; market engineers
labeled 5% "update learner", 28% "good recommendation" (15K+ pushed as
config changes) and 67% "inconclusive".

This experiment collects the local learner's LOO mismatches and labels
them with the provenance oracle (see :mod:`repro.eval.engineers`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.auric import AuricEngine
from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import full_network_workload
from repro.eval.engineers import LabeledMismatch, MismatchLabel, label_mismatches
from repro.eval.runner import EvaluationRunner
from repro.experiments.parameter_selection import evaluation_parameters
from repro.reporting.tables import format_table

PAPER_SHARES = {
    MismatchLabel.UPDATE_LEARNER: 0.05,
    MismatchLabel.GOOD_RECOMMENDATION: 0.28,
    MismatchLabel.INCONCLUSIVE: 0.67,
}


@dataclass
class Fig12Result:
    """Labeled mismatches plus the label distribution."""

    labeled: List[LabeledMismatch]
    counts: Dict[MismatchLabel, int]
    total_evaluated: int

    @property
    def total_mismatches(self) -> int:
        return len(self.labeled)

    def shares(self) -> Dict[MismatchLabel, float]:
        total = max(self.total_mismatches, 1)
        return {label: count / total for label, count in self.counts.items()}

    def mismatch_rate(self) -> float:
        if self.total_evaluated == 0:
            return 0.0
        return self.total_mismatches / self.total_evaluated

    def render(self) -> str:
        shares = self.shares()
        rows = [
            (
                label.value,
                self.counts[label],
                100.0 * shares[label],
                100.0 * PAPER_SHARES[label],
            )
            for label in MismatchLabel
        ]
        table = format_table(
            ["label", "mismatches", "share (%)", "paper share (%)"],
            rows,
            title="Fig 12 — engineer labeling of recommendation mismatches",
        )
        return table + (
            f"\n{self.total_mismatches} mismatches out of "
            f"{self.total_evaluated} recommendations "
            f"({100.0 * self.mismatch_rate():.1f}% mismatch rate; paper ~4%)"
        )


def run(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Optional[Sequence[str]] = None,
    max_targets_per_parameter: int = 1500,
    engine: Optional[AuricEngine] = None,
    jobs: int = 1,
) -> Fig12Result:
    if dataset is None:
        dataset = full_network_workload()
    if parameters is None:
        parameters = evaluation_parameters(dataset)
    if engine is None:
        engine = AuricEngine(dataset.network, dataset.store).fit(
            parameters, jobs=jobs
        )
    runner = EvaluationRunner(dataset)
    result = runner.loo_accuracy(
        engine,
        parameters,
        max_targets_per_parameter=max_targets_per_parameter,
        scopes=("local",),
        jobs=jobs,
    )
    labeled, counts = label_mismatches(dataset.provenance, result.mismatches_local)
    return Fig12Result(
        labeled=labeled, counts=counts, total_evaluated=result.evaluated
    )
