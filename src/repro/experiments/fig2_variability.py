"""Fig 2: distinct values across configuration parameters (network-wide).

The paper's finding: several of the 65 range parameters take more than
10 distinct values across the network, and one takes ~200.  The figure
is a bar chart of distinct-value counts per parameter; we render the
same data sorted descending.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import full_network_workload
from repro.eval.variability import distinct_values_per_parameter
from repro.reporting.tables import format_table


@dataclass
class Fig2Result:
    """Distinct-value counts per parameter, descending."""

    counts: Dict[str, int]

    @property
    def sorted_counts(self) -> List[Tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))

    @property
    def max_distinct(self) -> int:
        return max(self.counts.values())

    @property
    def parameters_above_10(self) -> int:
        return sum(1 for v in self.counts.values() if v > 10)

    def render(self) -> str:
        table = format_table(
            ["parameter", "distinct values"],
            self.sorted_counts,
            title="Fig 2 — distinct values across configuration parameters",
        )
        summary = (
            f"\n{len(self.counts)} range parameters; "
            f"{self.parameters_above_10} with >10 distinct values; "
            f"max {self.max_distinct}"
        )
        return table + summary


def run(dataset: Optional[SyntheticDataset] = None) -> Fig2Result:
    """Reproduce Fig 2 on the full 28-market workload (or a given one)."""
    if dataset is None:
        dataset = full_network_workload()
    return Fig2Result(distinct_values_per_parameter(dataset.store))
