"""Ablations over Auric's design choices.

The paper fixes several knobs (75% voting support, p = 0.01, 1-hop X2
proximity); these sweeps quantify what each buys:

* **support threshold** — trades recommendation *coverage* (how many
  votes are confident enough to push) against *precision* (accuracy of
  the confident subset),
* **chi-square significance (p-value)** and **effect-size floor** — how
  attribute selection reacts,
* **proximity hops** — 1-hop vs 2-hop vs global voting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.auric import AuricConfig, AuricEngine
from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import four_markets_workload
from repro.eval.dataset import LearningView
from repro.eval.splits import uniform_sample_indices
from repro.reporting.tables import format_table

DEFAULT_PARAMETERS = ("pMax", "sFreqPrio", "qrxlevmin", "qHyst", "hysA3Offset", "a3Offset")


@dataclass
class SweepPoint:
    """One knob setting and its measured outcomes."""

    setting: str
    accuracy: float
    confident_coverage: float
    confident_accuracy: float
    mean_dependent_attributes: float


@dataclass
class AblationResult:
    knob: str
    points: List[SweepPoint] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            (
                p.setting,
                100.0 * p.accuracy,
                100.0 * p.confident_coverage,
                100.0 * p.confident_accuracy,
                p.mean_dependent_attributes,
            )
            for p in self.points
        ]
        return format_table(
            [
                self.knob,
                "accuracy (%)",
                "confident coverage (%)",
                "confident accuracy (%)",
                "mean #dependent attrs",
            ],
            rows,
            title=f"Ablation — {self.knob}",
        )


def _evaluate(
    dataset: SyntheticDataset,
    config: AuricConfig,
    parameters: Sequence[str],
    max_targets: int,
    local: bool,
    support_threshold: float,
) -> Tuple[float, float, float, float]:
    engine = AuricEngine(dataset.network, dataset.store, config).fit(parameters)
    view = LearningView(dataset.network, dataset.store)
    hits = 0
    total = 0
    confident_hits = 0
    confident_total = 0
    for parameter in parameters:
        samples = view.samples(parameter)
        indices = uniform_sample_indices(
            len(samples), min(max_targets, len(samples)), seed=17
        )
        spec = dataset.catalog.spec(parameter)
        for i in indices:
            key = samples.keys[i]
            if spec.is_pairwise:
                rec = engine.recommend_for_pair(parameter, key, local=local)
            else:
                rec = engine.recommend_for_carrier(parameter, key, local=local)
            correct = rec.value == samples.labels[i]
            hits += correct
            total += 1
            if rec.support >= support_threshold:
                confident_hits += correct
                confident_total += 1
    mean_deps = sum(
        len(engine.dependent_attribute_names(p)) for p in parameters
    ) / len(parameters)
    return (
        hits / total,
        confident_total / total,
        confident_hits / confident_total if confident_total else 0.0,
        mean_deps,
    )


def run_support_threshold_sweep(
    dataset: Optional[SyntheticDataset] = None,
    thresholds: Sequence[float] = (0.5, 0.6, 0.75, 0.9),
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    max_targets: int = 500,
) -> AblationResult:
    """Coverage/precision trade-off of the voting-support threshold."""
    if dataset is None:
        dataset = four_markets_workload()
    result = AblationResult(knob="support threshold")
    for threshold in thresholds:
        accuracy, coverage, confident_accuracy, mean_deps = _evaluate(
            dataset,
            AuricConfig(support_threshold=threshold),
            parameters,
            max_targets,
            local=True,
            support_threshold=threshold,
        )
        result.points.append(
            SweepPoint(
                setting=f"{threshold:.2f}",
                accuracy=accuracy,
                confident_coverage=coverage,
                confident_accuracy=confident_accuracy,
                mean_dependent_attributes=mean_deps,
            )
        )
    return result


def run_p_value_sweep(
    dataset: Optional[SyntheticDataset] = None,
    p_values: Sequence[float] = (0.001, 0.01, 0.05),
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    max_targets: int = 500,
) -> AblationResult:
    """Sensitivity to the chi-square significance level."""
    if dataset is None:
        dataset = four_markets_workload()
    result = AblationResult(knob="chi-square p-value")
    for p in p_values:
        accuracy, coverage, confident_accuracy, mean_deps = _evaluate(
            dataset,
            AuricConfig(p_value=p),
            parameters,
            max_targets,
            local=True,
            support_threshold=0.75,
        )
        result.points.append(
            SweepPoint(f"{p:g}", accuracy, coverage, confident_accuracy, mean_deps)
        )
    return result


def run_effect_size_sweep(
    dataset: Optional[SyntheticDataset] = None,
    floors: Sequence[float] = (0.0, 0.12, 0.3),
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    max_targets: int = 500,
) -> AblationResult:
    """Sensitivity to the Cramér's V effect-size floor."""
    if dataset is None:
        dataset = four_markets_workload()
    result = AblationResult(knob="effect-size floor (Cramér's V)")
    for floor in floors:
        accuracy, coverage, confident_accuracy, mean_deps = _evaluate(
            dataset,
            AuricConfig(min_effect_size=floor),
            parameters,
            max_targets,
            local=True,
            support_threshold=0.75,
        )
        result.points.append(
            SweepPoint(f"{floor:.2f}", accuracy, coverage, confident_accuracy, mean_deps)
        )
    return result


def run_selection_strategy_sweep(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    max_targets: int = 500,
) -> AblationResult:
    """Paper-verbatim marginal selection vs conditional stepwise.

    Quantifies the DESIGN.md refinement: at realistic sample sizes,
    marginal chi-square selection keeps redundant attributes, fragments
    the vote cells and costs accuracy; conditional stepwise selection
    keeps the cells dense.
    """
    if dataset is None:
        dataset = four_markets_workload()
    result = AblationResult(knob="attribute selection")
    for label, selection in (("marginal", "marginal"), ("conditional", "conditional")):
        accuracy, coverage, confident_accuracy, mean_deps = _evaluate(
            dataset,
            AuricConfig(selection=selection),
            parameters,
            max_targets,
            local=True,
            support_threshold=0.75,
        )
        result.points.append(
            SweepPoint(label, accuracy, coverage, confident_accuracy, mean_deps)
        )
    return result


def run_proximity_sweep(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    max_targets: int = 500,
) -> AblationResult:
    """1-hop vs 2-hop vs global voting (section 3.3's design choice)."""
    if dataset is None:
        dataset = four_markets_workload()
    result = AblationResult(knob="proximity scope")
    for label, config, local in (
        ("1-hop", AuricConfig(hops=1), True),
        ("2-hop", AuricConfig(hops=2), True),
        ("global", AuricConfig(), False),
    ):
        accuracy, coverage, confident_accuracy, mean_deps = _evaluate(
            dataset, config, parameters, max_targets, local=local,
            support_threshold=0.75,
        )
        result.points.append(
            SweepPoint(label, accuracy, coverage, confident_accuracy, mean_deps)
        )
    return result
