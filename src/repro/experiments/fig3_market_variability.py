"""Fig 3: distinct values per configuration parameter, per market.

The paper's finding: variability is not uniform — some markets show
many more distinct values for some parameter groups than others.  The
figure is a heat-map-like chart; we render per-market totals plus the
top parameters in each market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import full_network_workload
from repro.eval.variability import variability_by_market
from repro.reporting.tables import format_table


@dataclass
class Fig3Result:
    """market → parameter → distinct values."""

    by_market: Dict[str, Dict[str, int]]

    def market_totals(self) -> Dict[str, int]:
        """market → sum of distinct-value counts over all parameters."""
        return {
            market: sum(counts.values())
            for market, counts in self.by_market.items()
        }

    def market_high_variability_counts(self, threshold: int = 10) -> Dict[str, int]:
        """market → number of parameters above the variability threshold."""
        return {
            market: sum(1 for v in counts.values() if v > threshold)
            for market, counts in self.by_market.items()
        }

    def render(self) -> str:
        totals = self.market_totals()
        high = self.market_high_variability_counts()
        rows = [
            (market, totals[market], high[market])
            for market in sorted(totals, key=lambda m: -totals[m])
        ]
        return format_table(
            ["market", "total distinct values (65 params)", "params with >10 distinct"],
            rows,
            title="Fig 3 — variability across configuration parameters per market",
        )


def run(dataset: Optional[SyntheticDataset] = None) -> Fig3Result:
    if dataset is None:
        dataset = full_network_workload()
    return Fig3Result(variability_by_market(dataset.network, dataset.store))
