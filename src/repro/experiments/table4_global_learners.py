"""Table 4: average accuracy of the five global learners, four markets.

Paper numbers (averaged over all 65 parameters):

===========  =====  =====  =====  =====  =====
learner       M1     M2     M3     M4    all
===========  =====  =====  =====  =====  =====
RF           92.58  89.27  91.43  95.15  92.11
kNN          91.58  88.08  90.71  94.34  91.18
DT           91.93  88.73  91.14  94.79  91.68
DNN          91.94  88.39  90.98  94.57  91.70
CF           95.94  93.75  95.58  96.63  95.48
===========  =====  =====  =====  =====  =====

The expected *shape*: CF outperforms the classic learners, RF edges DT
and DNN, and kNN trails — accuracy falls as variability rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import four_markets_workload
from repro.eval.accuracy import ParameterAccuracy
from repro.eval.runner import EvaluationRunner
from repro.experiments.parameter_selection import evaluation_parameters
from repro.learners.registry import PAPER_LEARNER_ORDER, paper_learner_factories
from repro.reporting.tables import format_table


@dataclass
class Table4Result:
    """Per-market, per-learner mean accuracy plus the raw scores."""

    scores: ParameterAccuracy
    markets: List[str]

    def per_market(self) -> Dict[str, Dict[str, float]]:
        return self.scores.mean_by_learner_and_market()

    def overall(self) -> Dict[str, float]:
        return self.scores.mean_by_learner()

    def render(self) -> str:
        per_market = self.per_market()
        overall = self.overall()
        rows = []
        for market in self.markets:
            learner_means = per_market.get(market, {})
            rows.append(
                (
                    market,
                    *(
                        100.0 * learner_means.get(name, float("nan"))
                        for name in PAPER_LEARNER_ORDER
                    ),
                )
            )
        rows.append(
            (
                "All four",
                *(100.0 * overall.get(name, float("nan")) for name in PAPER_LEARNER_ORDER),
            )
        )
        return format_table(
            ["market", *PAPER_LEARNER_ORDER],
            rows,
            title="Table 4 — average accuracy of five global learners (%)",
        )


def run(
    dataset: Optional[SyntheticDataset] = None,
    parameters: Optional[Sequence[str]] = None,
    fast: bool = True,
    folds: int = 3,
    max_samples_per_parameter: int = 3000,
) -> Table4Result:
    """Run the five-learner comparison per market."""
    if dataset is None:
        dataset = four_markets_workload()
    if parameters is None:
        parameters = evaluation_parameters(dataset)
    runner = EvaluationRunner(dataset)
    factories = paper_learner_factories(fast=fast)
    combined = ParameterAccuracy()
    markets = []
    for market in dataset.network.markets:
        markets.append(market.name)
        result = runner.compare_learners(
            factories,
            parameters,
            market_id=market.market_id,
            folds=folds,
            max_samples_per_parameter=max_samples_per_parameter,
        )
        for score in result.scores:
            combined.add(score)
    return Table4Result(scores=combined, markets=markets)
