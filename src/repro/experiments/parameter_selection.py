"""Parameter subsets for the learner-comparison experiments.

The paper evaluates all 65 range parameters.  At benchmark scale the
deep-neural-network fits dominate runtime, so the default evaluation
subset is a variability-stratified selection controlled by the
``REPRO_TABLE4_PARAMS`` environment variable:

* unset → 20 parameters (13 singular + 7 pair-wise), stratified by
  distinct-value count so low/medium/high-variability parameters are all
  represented;
* an integer → that many parameters, same stratification;
* ``all`` → the full 65.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.datagen.generator import SyntheticDataset
from repro.eval.variability import distinct_values_per_parameter

DEFAULT_PARAMETER_COUNT = 20


def _stratified_pick(names_by_variability: List[str], count: int) -> List[str]:
    """Pick ``count`` names spread evenly across the variability order."""
    n = len(names_by_variability)
    if count >= n:
        return list(names_by_variability)
    step = n / count
    return [names_by_variability[int(i * step)] for i in range(count)]


def evaluation_parameters(
    dataset: SyntheticDataset, requested: Optional[str] = None
) -> List[str]:
    """The parameter subset for Table 4 / Fig 10 style experiments."""
    if requested is None:
        requested = os.environ.get("REPRO_TABLE4_PARAMS", "")
    specs = dataset.catalog.range_parameters()
    if requested.strip().lower() == "all":
        return [s.name for s in specs]
    count = int(requested) if requested.strip() else DEFAULT_PARAMETER_COUNT
    count = max(2, min(count, len(specs)))

    distinct = distinct_values_per_parameter(dataset.store)
    singular = sorted(
        (s.name for s in dataset.catalog.singular_parameters()),
        key=lambda n: -distinct.get(n, 0),
    )
    pairwise = sorted(
        (s.name for s in dataset.catalog.pairwise_parameters()),
        key=lambda n: -distinct.get(n, 0),
    )
    # Keep the paper's 39:26 singular:pairwise proportion.
    n_singular = max(1, round(count * 39 / 65))
    n_pairwise = max(1, count - n_singular)
    picked = _stratified_pick(singular, n_singular) + _stratified_pick(
        pairwise, n_pairwise
    )
    return picked
