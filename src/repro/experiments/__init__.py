"""Experiment reproductions: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning a result object with a
``render()`` method that prints the same rows/series the paper reports.
The registry maps experiment ids ("fig2", "table4", ...) to their run
functions; benchmarks call through it.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
