"""Table 3: the four-market in-depth dataset.

The paper's table lists, for one market per US timezone, the carrier
count, eNodeB count and number of (singular) configuration parameter
values.  Our synthetic four-market workload keeps the same timezone
assignment and the same eNodeB-count proportions (1791/1521/2643/1679),
scaled by the workload's ``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.datagen.generator import SyntheticDataset
from repro.datagen.workloads import four_markets_workload
from repro.reporting.tables import format_table


@dataclass
class Table3Row:
    market: str
    timezone: str
    carriers: int
    enodebs: int
    parameter_values: int


@dataclass
class Table3Result:
    rows: List[Table3Row]

    @property
    def totals(self) -> Tuple[int, int, int]:
        return (
            sum(r.carriers for r in self.rows),
            sum(r.enodebs for r in self.rows),
            sum(r.parameter_values for r in self.rows),
        )

    def render(self) -> str:
        carriers, enodebs, values = self.totals
        body = [
            (r.market, r.timezone, r.carriers, r.enodebs, r.parameter_values)
            for r in self.rows
        ]
        body.append(("All four", "", carriers, enodebs, values))
        return format_table(
            ["market", "timezone", "carriers", "eNodeBs", "parameters"],
            body,
            title="Table 3 — four-market dataset (one market per timezone)",
        )


def run(dataset: Optional[SyntheticDataset] = None) -> Table3Result:
    if dataset is None:
        dataset = four_markets_workload()
    store = dataset.store
    singular_names = [s.name for s in dataset.catalog.singular_parameters()]
    rows: List[Table3Row] = []
    # Count singular values per market once, not per (market, parameter).
    per_market_values = {m.market_id: 0 for m in dataset.network.markets}
    for name in singular_names:
        for carrier_id in store.singular_values(name):
            per_market_values[carrier_id.market] += 1
    for market in dataset.network.markets:
        rows.append(
            Table3Row(
                market=market.name,
                timezone=market.timezone.value,
                carriers=market.carrier_count(),
                enodebs=market.enodeb_count(),
                parameter_values=per_market_values[market.market_id],
            )
        )
    return Table3Result(rows)
