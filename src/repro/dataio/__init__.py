"""Dataset import/export.

Serializes a network snapshot (markets, eNodeBs, carriers, attributes,
X2 relations) plus its configuration values to JSON, and loads it back
into :class:`~repro.netmodel.network.Network` +
:class:`~repro.config.store.ConfigurationStore`.

This is the adoption path for real data: operators export their own
carrier inventory and configuration into this schema and run the Auric
engine on it unchanged — the synthetic generator is only one producer of
the format.
"""

from repro.dataio.export import (
    dataset_to_dict,
    export_attributes_csv,
    export_dataset_json,
    export_parameter_csv,
    snapshot_fingerprint,
)
from repro.dataio.load import load_dataset_json, snapshot_from_dict

__all__ = [
    "dataset_to_dict",
    "export_attributes_csv",
    "export_dataset_json",
    "export_parameter_csv",
    "snapshot_fingerprint",
    "load_dataset_json",
    "snapshot_from_dict",
]
