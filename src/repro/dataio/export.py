"""Export a network snapshot to JSON / CSV."""

from __future__ import annotations

import csv
import hashlib
import json
from typing import Dict, Optional, Union

from repro.config.store import ConfigurationStore
from repro.dataio.keys import carrier_key_to_str, pair_key_to_str
from repro.datagen.generator import SyntheticDataset
from repro.netmodel.attributes import ATTRIBUTE_SCHEMA
from repro.netmodel.network import Network

SCHEMA_VERSION = 1


def dataset_to_dict(
    network: Network, store: ConfigurationStore
) -> Dict:
    """The JSON-serializable form of a network + configuration snapshot."""
    markets = []
    for market in network.markets:
        enodebs = []
        for enodeb in market.enodebs:
            carriers = [
                {
                    "face": carrier.carrier_id.face,
                    "slot": carrier.carrier_id.slot,
                    "attributes": dict(carrier.attributes.values),
                }
                for carrier in enodeb.carriers()
            ]
            enodebs.append(
                {
                    "index": enodeb.enodeb_id.index,
                    "lat": enodeb.location.lat,
                    "lon": enodeb.location.lon,
                    "carriers": carriers,
                }
            )
        markets.append(
            {
                "index": market.market_id.index,
                "name": market.name,
                "timezone": market.timezone.value,
                "center": [market.center.lat, market.center.lon],
                "enodebs": enodebs,
            }
        )

    singular: Dict[str, Dict[str, object]] = {}
    pairwise: Dict[str, Dict[str, object]] = {}
    for spec in store.catalog.range_parameters():
        if spec.is_pairwise:
            values = store.pairwise_values(spec.name)
            if values:
                pairwise[spec.name] = {
                    pair_key_to_str(k): v for k, v in sorted(values.items())
                }
        else:
            values = store.singular_values(spec.name)
            if values:
                singular[spec.name] = {
                    carrier_key_to_str(k): v for k, v in sorted(values.items())
                }

    return {
        "schema_version": SCHEMA_VERSION,
        "markets": markets,
        "x2_carrier_edges": sorted(
            [carrier_key_to_str(a), carrier_key_to_str(b)]
            for a, b in network.x2.carrier_pairs()
        ),
        "x2_enodeb_edges": sorted(
            sorted([f"{a.market.index}.{a.index}", f"{b.market.index}.{b.index}"])
            for a, b in network.x2.enodeb_graph.edges()
        ),
        "config": {"singular": singular, "pairwise": pairwise},
    }


def snapshot_fingerprint(network: Network, store: ConfigurationStore) -> str:
    """A stable content hash of a network + configuration snapshot.

    Engine artifacts (``repro.serve.artifacts``) embed this so a loaded
    model can be checked against the snapshot it is served with: same
    carriers, same topology, same configured values → same fingerprint.
    """
    payload = dataset_to_dict(network, store)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def export_dataset_json(
    dataset_or_network: Union[SyntheticDataset, Network],
    path: str,
    store: Optional[ConfigurationStore] = None,
) -> None:
    """Write a snapshot to a JSON file.

    Accepts either a :class:`SyntheticDataset` or a (network, store)
    pair, so exported real-data snapshots round-trip the same way.
    """
    if isinstance(dataset_or_network, Network):
        if store is None:
            raise ValueError("store is required when passing a bare Network")
        network = dataset_or_network
    else:
        network = dataset_or_network.network
        store = dataset_or_network.store
    payload = dataset_to_dict(network, store)
    with open(path, "w") as handle:
        json.dump(payload, handle)


def export_attributes_csv(network: Network, path: str) -> int:
    """One CSV row per carrier with its full attribute vector.

    Returns the number of rows written.
    """
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["carrier_id", "lat", "lon", *ATTRIBUTE_SCHEMA.names])
        for carrier in network.carriers():
            writer.writerow(
                [
                    carrier_key_to_str(carrier.carrier_id),
                    carrier.location.lat,
                    carrier.location.lon,
                    *carrier.attributes.as_tuple(),
                ]
            )
            count += 1
    return count


def export_parameter_csv(
    store: ConfigurationStore, parameter: str, path: str
) -> int:
    """One CSV row per configured value of one parameter."""
    spec = store.catalog.spec(parameter)
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if spec.is_pairwise:
            writer.writerow(["carrier_id", "neighbor_id", parameter])
            for pair, value in sorted(store.pairwise_values(parameter).items()):
                writer.writerow(
                    [
                        carrier_key_to_str(pair.carrier),
                        carrier_key_to_str(pair.neighbor),
                        value,
                    ]
                )
                count += 1
        else:
            writer.writerow(["carrier_id", parameter])
            for carrier_id, value in sorted(
                store.singular_values(parameter).items()
            ):
                writer.writerow([carrier_key_to_str(carrier_id), value])
                count += 1
    return count
