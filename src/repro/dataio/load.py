"""Load a serialized snapshot back into Network + ConfigurationStore."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict

from repro.config.catalog import build_default_catalog
from repro.config.store import ConfigurationStore
from repro.dataio.keys import carrier_key_from_str, pair_key_from_str
from repro.exceptions import GenerationError
from repro.netmodel.attributes import CarrierAttributes
from repro.netmodel.carrier import Carrier
from repro.netmodel.enodeb import ENodeB
from repro.netmodel.geo import GeoPoint
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId
from repro.netmodel.market import Market
from repro.netmodel.network import Network
from repro.types import Timezone


@dataclass
class LoadedSnapshot:
    """A deserialized network + configuration snapshot."""

    network: Network
    store: ConfigurationStore


def snapshot_from_dict(payload: Dict) -> LoadedSnapshot:
    """Rebuild a snapshot from :func:`repro.dataio.export.dataset_to_dict`."""
    version = payload.get("schema_version")
    if version != 1:
        raise GenerationError(f"unsupported snapshot schema version {version!r}")

    network = Network()
    timezones = {tz.value: tz for tz in Timezone}
    for market_data in payload["markets"]:
        market_id = MarketId(market_data["index"])
        center = GeoPoint(*market_data["center"])
        market = Market(
            market_id,
            market_data["name"],
            timezones[market_data["timezone"]],
            center,
        )
        for enodeb_data in market_data["enodebs"]:
            enodeb_id = ENodeBId(market_id, enodeb_data["index"])
            location = GeoPoint(enodeb_data["lat"], enodeb_data["lon"])
            enodeb = ENodeB(enodeb_id, location)
            for carrier_data in enodeb_data["carriers"]:
                # JSON round-trips tuple-valued attributes as-is since
                # all attribute values are strings or ints.
                attributes = CarrierAttributes(carrier_data["attributes"])
                enodeb.add_carrier(
                    Carrier(
                        carrier_id=CarrierId(
                            enodeb_id,
                            carrier_data["face"],
                            carrier_data["slot"],
                        ),
                        attributes=attributes,
                        location=location,
                    )
                )
            market.add_enodeb(enodeb)
        network.add_market(market)

    for carrier in network.carriers():
        network.x2.add_carrier(carrier.carrier_id)
    for enodeb in network.enodebs():
        network.x2.add_enodeb(enodeb.enodeb_id)
    for a_text, b_text in payload.get("x2_carrier_edges", []):
        network.x2.add_carrier_relation(
            carrier_key_from_str(a_text), carrier_key_from_str(b_text)
        )
    for a_text, b_text in payload.get("x2_enodeb_edges", []):
        a_market, a_index = (int(p) for p in a_text.split("."))
        b_market, b_index = (int(p) for p in b_text.split("."))
        network.x2.add_enodeb_relation(
            ENodeBId(MarketId(a_market), a_index),
            ENodeBId(MarketId(b_market), b_index),
        )

    store = ConfigurationStore(build_default_catalog())
    config = payload.get("config", {})
    for parameter, values in config.get("singular", {}).items():
        for key_text, value in values.items():
            store.set_singular(carrier_key_from_str(key_text), parameter, value)
    for parameter, values in config.get("pairwise", {}).items():
        for key_text, value in values.items():
            store.set_pairwise(pair_key_from_str(key_text), parameter, value)

    return LoadedSnapshot(network=network, store=store)


def load_dataset_json(path: str) -> LoadedSnapshot:
    """Load a snapshot file written by :func:`export_dataset_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    return snapshot_from_dict(payload)
