"""Compact string forms for carrier and pair keys in serialized data."""

from __future__ import annotations

from repro.config.store import PairKey
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId

_PAIR_SEPARATOR = "|"


def carrier_key_to_str(carrier_id: CarrierId) -> str:
    """``market.enodeb.face.slot`` — stable and order-preserving."""
    return (
        f"{carrier_id.market.index}.{carrier_id.enodeb.index}"
        f".{carrier_id.face}.{carrier_id.slot}"
    )


def carrier_key_from_str(text: str) -> CarrierId:
    try:
        market, enodeb, face, slot = (int(part) for part in text.split("."))
    except ValueError:
        raise ValueError(f"malformed carrier key {text!r}") from None
    return CarrierId(ENodeBId(MarketId(market), enodeb), face, slot)


def pair_key_to_str(pair: PairKey) -> str:
    return (
        carrier_key_to_str(pair.carrier)
        + _PAIR_SEPARATOR
        + carrier_key_to_str(pair.neighbor)
    )


def pair_key_from_str(text: str) -> PairKey:
    left, separator, right = text.partition(_PAIR_SEPARATOR)
    if not separator:
        raise ValueError(f"malformed pair key {text!r}")
    return PairKey(carrier_key_from_str(left), carrier_key_from_str(right))
