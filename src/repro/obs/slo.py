"""A declarative SLO engine over the unified metrics registry.

Rules describe objectives on instruments that already exist —
latency quantiles from histograms, hit/total ratios from labeled
counters, thresholds on gauges — so the serving and operational layers
gain service-level objectives without any new recording code:

```python
from repro.obs.slo import SLOEngine, SLORule, default_service_slos

engine = SLOEngine(default_service_slos())
report = engine.evaluate(registry)
print(report.status)          # ok | degraded | failing
```

Each :meth:`SLOEngine.evaluate` pass checks every rule, keeps per-rule
error-budget accounting across passes (a rule with a 99% objective may
fail 1% of evaluations before its budget is spent), publishes
``repro_slo_*`` instruments on the *global* registry and emits a
structured-log warning plus an ``slo.alert`` span for every breached
rule — all zero-cost while metrics/tracing are disabled.

Statuses per rule: ``ok``, ``degraded`` (objective breached),
``failing`` (breached beyond the rule's tolerance band, or error budget
exhausted) and ``no_data`` (instrument absent or under ``min_events``
observations — treated as ok so cold systems do not page).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import flight, metrics, tracing
from repro.obs.logs import get_logger

__all__ = [
    "ErrorBudget",
    "SLOEngine",
    "SLOReport",
    "SLOResult",
    "SLORule",
    "default_service_slos",
]

logger = get_logger("obs.slo")

_STATUS_RANK = {"no_data": 0, "ok": 0, "degraded": 1, "failing": 2}

#: Evaluation passes required before error-budget exhaustion escalates
#: a degraded rule to failing (one bad pass is not a spent budget).
MIN_BUDGET_EVALUATIONS = 10


@dataclass(frozen=True)
class SLORule:
    """One declarative objective over an existing instrument.

    ``kind`` selects how ``metric`` is read:

    * ``quantile`` — ``metric`` is a histogram; the checked value is its
      ``quantile`` (default p99) and ``min_events`` gates on its count.
    * ``ratio`` — checked value is ``sum(metric{labels})`` divided by
      ``sum(denominator{denominator_labels})``; ``min_events`` gates on
      the denominator.
    * ``value`` — checked value is the (summed) gauge/counter reading.

    ``comparator`` is ``"<="`` (objective is a ceiling) or ``">="``
    (a floor).  A breach within ``tolerance`` (relative) is ``degraded``;
    beyond it, ``failing``.  ``budget`` is the tolerated fraction of
    evaluation passes that may breach before the error budget is spent
    (0.01 = 99% of passes must meet the objective).
    """

    name: str
    metric: str
    objective: float
    kind: str = "value"  # value | quantile | ratio
    comparator: str = "<="
    quantile: float = 0.99
    labels: Mapping[str, str] = field(default_factory=dict)
    denominator: str = ""
    denominator_labels: Mapping[str, str] = field(default_factory=dict)
    min_events: int = 1
    tolerance: float = 0.5
    budget: float = 0.05
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("value", "quantile", "ratio"):
            raise ValueError(f"unknown SLO rule kind {self.kind!r}")
        if self.comparator not in ("<=", ">="):
            raise ValueError(f"unknown SLO comparator {self.comparator!r}")
        if self.kind == "ratio" and not self.denominator:
            raise ValueError(f"ratio rule {self.name!r} needs a denominator")

    def meets(self, value: float) -> bool:
        if self.comparator == "<=":
            return value <= self.objective
        return value >= self.objective

    def within_tolerance(self, value: float) -> bool:
        """Breached, but inside the degraded (not failing) band?"""
        span = abs(self.objective) * self.tolerance
        if self.comparator == "<=":
            return value <= self.objective + span
        return value >= self.objective - span

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": self.objective,
            "kind": self.kind,
            "comparator": self.comparator,
            "quantile": self.quantile,
            "labels": dict(self.labels),
            "denominator": self.denominator,
            "denominator_labels": dict(self.denominator_labels),
            "min_events": self.min_events,
            "tolerance": self.tolerance,
            "budget": self.budget,
            "description": self.description,
        }


@dataclass
class ErrorBudget:
    """Breach accounting for one rule across evaluation passes."""

    evaluations: int = 0
    violations: int = 0

    def record(self, violated: bool) -> None:
        self.evaluations += 1
        if violated:
            self.violations += 1

    def used(self, budget: float) -> float:
        """Fraction of the budget consumed (1.0 = exhausted)."""
        if self.evaluations == 0 or budget <= 0:
            return 0.0
        return (self.violations / self.evaluations) / budget

    def to_dict(self) -> Dict:
        return {
            "evaluations": self.evaluations,
            "violations": self.violations,
        }


@dataclass
class SLOResult:
    """One rule's outcome for one evaluation pass."""

    rule: SLORule
    status: str  # ok | degraded | failing | no_data
    value: Optional[float]
    events: int
    budget_used: float

    def line(self) -> str:
        value = "-" if self.value is None else f"{self.value:.4f}"
        return (
            f"{self.rule.name:<20s} {self.status:<8s} "
            f"value={value} objective={self.rule.comparator}"
            f"{self.rule.objective:g} events={self.events} "
            f"budget_used={self.budget_used:.2f}"
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.rule.name,
            "status": self.status,
            "value": self.value,
            "objective": self.rule.objective,
            "comparator": self.rule.comparator,
            "events": self.events,
            "budget_used": self.budget_used,
            "description": self.rule.description,
        }


@dataclass
class SLOReport:
    """All rule outcomes from one evaluation pass."""

    results: List[SLOResult]

    @property
    def status(self) -> str:
        worst = 0
        for result in self.results:
            worst = max(worst, _STATUS_RANK[result.status])
        return {0: "ok", 1: "degraded", 2: "failing"}[worst]

    @property
    def alerts(self) -> List[SLOResult]:
        return [r for r in self.results if r.status in ("degraded", "failing")]

    def lines(self) -> List[str]:
        return [result.line() for result in self.results]

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "results": [result.to_dict() for result in self.results],
        }


def _match_labels(family, instrument, labels: Mapping[str, str]) -> bool:
    if not labels:
        return True
    for name, wanted in labels.items():
        try:
            index = family.labelnames.index(name)
        except ValueError:
            return False
        if instrument.labelvalues[index] != str(wanted):
            return False
    return True


def _summed_value(registry, name: str, labels: Mapping[str, str]):
    """Sum a counter/gauge family's matching children (None = absent)."""
    family = registry.get(name)
    if family is None:
        return None
    total = 0.0
    found = False
    for child in family.children():
        if _match_labels(family, child, labels):
            total += child.value
            found = True
    return total if found else None


class SLOEngine:
    """Evaluates a rule set against a registry, with budget memory."""

    def __init__(self, rules: Sequence[SLORule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO rule names in {names}")
        self.rules: Tuple[SLORule, ...] = tuple(rules)
        self.budgets: Dict[str, ErrorBudget] = {
            rule.name: ErrorBudget() for rule in self.rules
        }

    # -- reading instruments -------------------------------------------------

    def _measure(self, registry, rule: SLORule):
        """One rule's ``(value, events)``; value None means no data."""
        if rule.kind == "quantile":
            family = registry.get(rule.metric)
            if family is None:
                return None, 0
            children = [
                c for c in family.children()
                if _match_labels(family, c, rule.labels)
            ]
            if not children:
                return None, 0
            child = children[0]
            count = int(child.count)
            if count == 0:
                return None, 0
            return float(child.quantile(rule.quantile)), count
        if rule.kind == "ratio":
            numerator = _summed_value(registry, rule.metric, rule.labels)
            denominator = _summed_value(
                registry, rule.denominator, rule.denominator_labels
            )
            if denominator is None or denominator <= 0:
                return None, 0
            return float((numerator or 0.0) / denominator), int(denominator)
        value = _summed_value(registry, rule.metric, rule.labels)
        if value is None:
            return None, 0
        return float(value), 1

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, registry) -> SLOReport:
        """Check every rule; publish instruments and alert on breaches."""
        results: List[SLOResult] = []
        status_gauge = metrics.gauge(
            "repro_slo_status",
            "Per-rule SLO status (0 ok, 1 degraded, 2 failing)",
            labelnames=("rule",),
        )
        budget_gauge = metrics.gauge(
            "repro_slo_budget_used",
            "Fraction of each rule's error budget consumed",
            labelnames=("rule",),
        )
        violations = metrics.counter(
            "repro_slo_violations_total",
            "SLO evaluation passes that breached, per rule",
            labelnames=("rule",),
        )
        for rule in self.rules:
            value, events = self._measure(registry, rule)
            budget = self.budgets[rule.name]
            if value is None or events < rule.min_events:
                status = "no_data"
                budget.record(False)
            elif rule.meets(value):
                status = "ok"
                budget.record(False)
            else:
                budget.record(True)
                status = (
                    "degraded" if rule.within_tolerance(value) else "failing"
                )
                # Budget exhaustion escalates a degraded rule, but only
                # once the violation *rate* is meaningful — a single
                # breached pass is not a spent budget.
                if (
                    budget.evaluations >= MIN_BUDGET_EVALUATIONS
                    and budget.used(rule.budget) >= 1.0
                ):
                    status = "failing"
            budget_used = budget.used(rule.budget)
            results.append(
                SLOResult(
                    rule=rule,
                    status=status,
                    value=value,
                    events=events,
                    budget_used=budget_used,
                )
            )
            status_gauge.labels(rule=rule.name).set(
                float(_STATUS_RANK[status])
            )
            budget_gauge.labels(rule=rule.name).set(budget_used)
            if status in ("degraded", "failing"):
                violations.labels(rule=rule.name).inc()
                with tracing.span(
                    "slo.alert",
                    rule=rule.name,
                    status=status,
                    value=value,
                    objective=rule.objective,
                ):
                    logger.warning(
                        "slo breach",
                        extra={
                            "rule": rule.name,
                            "status": status,
                            "value": round(value, 6),
                            "objective": rule.objective,
                            "comparator": rule.comparator,
                            "budget_used": round(budget_used, 4),
                        },
                    )
                # A breach is exactly when per-request evidence matters:
                # snapshot the flight recorder's ring (rate-limited per
                # rule, no-op while recording is disabled).
                recorder = flight.get_recorder()
                if recorder is not None:
                    recorder.dump(f"slo-{rule.name}")
        return SLOReport(results=results)


def default_service_slos(
    latency_p99: float = 0.1,
    cache_hit_min: float = 0.2,
    fallback_max: float = 0.5,
    rollback_max: float = 0.05,
    drift_psi_max: float = 0.25,
    shadow_accuracy_min: float = 0.5,
) -> List[SLORule]:
    """The stock rule set for a :class:`RecommendationService` + ops loop.

    Reads the service's instruments (route them into the evaluated
    registry with ``ServiceMetrics(registry=...)``), the global
    ``ops.monitoring`` counters, the drift gauges published by
    :meth:`repro.obs.health.DriftReport.record` and the shadow-audit
    accuracy gauge from :meth:`repro.eval.runner.Evaluator.shadow_audit`.
    Rules over absent instruments report ``no_data`` and stay green.
    """
    return [
        SLORule(
            name="latency-p99",
            kind="quantile",
            metric="repro_service_request_latency_seconds",
            quantile=0.99,
            objective=latency_p99,
            comparator="<=",
            min_events=20,
            description="p99 served-request latency (seconds)",
        ),
        SLORule(
            name="cache-hit-ratio",
            kind="ratio",
            metric="repro_service_cache_lookups_total",
            labels={"result": "hit"},
            denominator="repro_service_cache_lookups_total",
            objective=cache_hit_min,
            comparator=">=",
            min_events=50,
            description="vote-cache hit ratio on a warm service",
        ),
        SLORule(
            name="fallback-rate",
            kind="ratio",
            metric="repro_service_fallbacks_total",
            denominator="repro_service_requests_total",
            objective=fallback_max,
            comparator="<=",
            min_events=20,
            description="rule-book/cold-start fallback rate",
        ),
        SLORule(
            name="rollback-rate",
            kind="ratio",
            metric="repro_rollbacks_total",
            denominator="repro_push_total",
            objective=rollback_max,
            comparator="<=",
            min_events=1,
            description="post-launch KPI rollbacks per push",
        ),
        SLORule(
            name="drift-psi",
            kind="value",
            metric="repro_drift_psi_max",
            objective=drift_psi_max,
            comparator="<=",
            # Drift is a refit recommendation, not a serving outage:
            # however large the shift, the rule degrades — failing is
            # reserved for user-facing objectives (latency, accuracy).
            tolerance=float("inf"),
            description="largest PSI across baselined distributions",
        ),
        SLORule(
            name="shadow-accuracy",
            kind="value",
            metric="repro_shadow_audit_accuracy",
            objective=shadow_accuracy_min,
            comparator=">=",
            tolerance=0.9,
            description="leave-one-out shadow-audit accuracy",
        ),
    ]
