"""Drift detection and the aggregated health report.

Auric's accuracy rests on a population assumption: the carriers the
dependency models were fitted on still look like the carriers being
served.  This module makes that assumption observable.  At fit time the
engine captures a :class:`DriftBaseline` — per-attribute and
per-parameter categorical value distributions — which is persisted into
the serve artifact (schema v3, additive).  At serve time a
:class:`DriftDetector` scores live distributions against that baseline
with two complementary statistics:

* **PSI** (population stability index) — magnitude of the shift; the
  conventional 0.1 / 0.25 thresholds mark moderate / major drift,
* **chi-square homogeneity** — significance of the shift, so a large
  PSI on a handful of samples does not page anyone.

An attribute is flagged only when *both* agree (PSI over threshold and
p-value under alpha) and both sides have at least
:attr:`DriftThresholds.min_samples` observations.  Scores are published
as ``repro_drift_score{attribute=...}`` gauges on the global registry —
zero-cost while :func:`repro.obs.metrics.disable` is in effect.

:class:`HealthReport` folds a drift report together with an SLO report
(:mod:`repro.obs.slo`) and top profile frames
(:mod:`repro.obs.profiler`) into the ``repro health`` surface, with
process exit-code semantics: 0 healthy / 1 degraded / 2 failing.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from scipy.stats import chi2

from repro.obs import metrics
from repro.obs.logs import get_logger

__all__ = [
    "AttributeDrift",
    "DriftBaseline",
    "DriftDetector",
    "DriftReport",
    "DriftThresholds",
    "DriftWindow",
    "HealthReport",
    "chi_square_drift",
    "population_stability_index",
]

logger = get_logger("obs.health")

#: Smoothing floor for PSI proportions — keeps categories that are
#: present on one side only from producing infinite terms.
PSI_EPSILON = 1e-4

Distribution = Mapping[Any, float]


def _normalise(dist: Distribution) -> Tuple[Dict[str, float], float]:
    """Counts keyed by ``str(category)`` plus their total."""
    counts: Dict[str, float] = {}
    for category, count in dist.items():
        key = str(category)
        counts[key] = counts.get(key, 0.0) + float(count)
    return counts, sum(counts.values())


def population_stability_index(expected: Distribution, actual: Distribution) -> float:
    """PSI between two categorical distributions (counts or shares).

    ``sum((a_i - e_i) * ln(a_i / e_i))`` over the union of categories,
    with proportions floored at :data:`PSI_EPSILON`.  0 means identical;
    by convention >= 0.1 is a moderate and >= 0.25 a major shift.
    """
    e_counts, e_total = _normalise(expected)
    a_counts, a_total = _normalise(actual)
    if e_total <= 0 or a_total <= 0:
        return 0.0
    psi = 0.0
    for category in set(e_counts) | set(a_counts):
        e = max(e_counts.get(category, 0.0) / e_total, PSI_EPSILON)
        a = max(a_counts.get(category, 0.0) / a_total, PSI_EPSILON)
        psi += (a - e) * math.log(a / e)
    return psi


def chi_square_drift(
    expected: Distribution, actual: Distribution
) -> Tuple[float, int, float]:
    """Two-sample chi-square homogeneity test on categorical counts.

    Treats ``expected`` and ``actual`` as the two rows of a contingency
    table over the union of categories and returns ``(statistic, dof,
    p_value)``.  Degenerate tables (one category, or an empty side)
    return ``(0.0, 0, 1.0)`` — no evidence of drift.
    """
    e_counts, e_total = _normalise(expected)
    a_counts, a_total = _normalise(actual)
    categories = sorted(set(e_counts) | set(a_counts))
    grand = e_total + a_total
    if e_total <= 0 or a_total <= 0 or len(categories) < 2:
        return 0.0, 0, 1.0
    statistic = 0.0
    for category in categories:
        column = e_counts.get(category, 0.0) + a_counts.get(category, 0.0)
        for observed, row_total in (
            (e_counts.get(category, 0.0), e_total),
            (a_counts.get(category, 0.0), a_total),
        ):
            cell = row_total * column / grand
            if cell > 0:
                statistic += (observed - cell) ** 2 / cell
    dof = len(categories) - 1
    p_value = float(chi2.sf(statistic, dof))
    return statistic, dof, p_value


@dataclass(frozen=True)
class DriftThresholds:
    """When does a distribution shift count as drift?

    An attribute is flagged only when the PSI magnitude and the
    chi-square significance agree, and both sides carry at least
    ``min_samples`` observations — small live windows never alert.
    """

    psi_moderate: float = 0.1
    psi_major: float = 0.25
    alpha: float = 0.01
    min_samples: int = 20

    def to_dict(self) -> Dict:
        return {
            "psi_moderate": self.psi_moderate,
            "psi_major": self.psi_major,
            "alpha": self.alpha,
            "min_samples": self.min_samples,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DriftThresholds":
        return cls(
            psi_moderate=float(payload.get("psi_moderate", 0.1)),
            psi_major=float(payload.get("psi_major", 0.25)),
            alpha=float(payload.get("alpha", 0.01)),
            min_samples=int(payload.get("min_samples", 20)),
        )


#: Distribution key prefix for configured-parameter values, so attribute
#: and parameter drift ride the same gauge with distinct label values.
PARAMETER_PREFIX = "parameter:"


@dataclass
class DriftBaseline:
    """Fit-time value distributions: the population the models saw.

    ``attributes`` maps attribute name -> {category: count} over the
    carriers in the fitted network; ``parameters`` maps parameter name
    -> {value: count} over its configured (singular + pairwise) values.
    Captured by :meth:`capture` at the end of
    :meth:`repro.core.auric.AuricEngine.fit` and persisted in serve
    artifacts (schema v3).
    """

    attributes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    parameters: Dict[str, Dict[str, float]] = field(default_factory=dict)
    carrier_count: int = 0

    @classmethod
    def capture(
        cls, network, store=None, parameters: Sequence[str] = ()
    ) -> "DriftBaseline":
        """Snapshot the attribute/parameter distributions of a network."""
        attributes = attribute_distributions(network)
        carrier_count = sum(1 for _ in network.carriers())
        params: Dict[str, Dict[str, float]] = {}
        if store is not None:
            for name in parameters:
                counts: Dict[str, float] = {}
                for values in (
                    store.singular_values(name),
                    store.pairwise_values(name),
                ):
                    for value in values.values():
                        key = str(value)
                        counts[key] = counts.get(key, 0.0) + 1.0
                if counts:
                    params[name] = counts
        return cls(
            attributes=attributes,
            parameters=params,
            carrier_count=carrier_count,
        )

    def distributions(self) -> Dict[str, Dict[str, float]]:
        """Attribute and ``parameter:<name>`` distributions, one map."""
        merged: Dict[str, Dict[str, float]] = dict(self.attributes)
        for name, dist in self.parameters.items():
            merged[PARAMETER_PREFIX + name] = dist
        return merged

    def to_dict(self) -> Dict:
        return {
            "attributes": {k: dict(v) for k, v in self.attributes.items()},
            "parameters": {k: dict(v) for k, v in self.parameters.items()},
            "carrier_count": self.carrier_count,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DriftBaseline":
        return cls(
            attributes={
                str(k): {str(c): float(n) for c, n in v.items()}
                for k, v in dict(payload.get("attributes", {})).items()
            },
            parameters={
                str(k): {str(c): float(n) for c, n in v.items()}
                for k, v in dict(payload.get("parameters", {})).items()
            },
            carrier_count=int(payload.get("carrier_count", 0)),
        )


def attribute_distributions(network) -> Dict[str, Dict[str, float]]:
    """Per-attribute value counts over every carrier in a network."""
    out: Dict[str, Dict[str, float]] = {}
    for carrier in network.carriers():
        for name, value in carrier.attributes.values.items():
            bucket = out.setdefault(name, {})
            key = str(value)
            bucket[key] = bucket.get(key, 0.0) + 1.0
    return out


@dataclass
class AttributeDrift:
    """Drift scores for one attribute (or ``parameter:<name>``)."""

    attribute: str
    psi: float
    statistic: float
    dof: int
    p_value: float
    n_expected: int
    n_actual: int
    verdict: str  # stationary | moderate | major | insufficient

    def to_dict(self) -> Dict:
        return {
            "attribute": self.attribute,
            "psi": self.psi,
            "statistic": self.statistic,
            "dof": self.dof,
            "p_value": self.p_value,
            "n_expected": self.n_expected,
            "n_actual": self.n_actual,
            "verdict": self.verdict,
        }


@dataclass
class DriftReport:
    """Scored drift for every baselined attribute, worst first."""

    attributes: List[AttributeDrift]
    thresholds: DriftThresholds = field(default_factory=DriftThresholds)

    @property
    def psi_max(self) -> float:
        flagged = [
            d.psi for d in self.attributes if d.verdict != "insufficient"
        ]
        return max(flagged) if flagged else 0.0

    @property
    def drifted(self) -> List[AttributeDrift]:
        return [
            d for d in self.attributes if d.verdict in ("moderate", "major")
        ]

    @property
    def verdict(self) -> str:
        """``healthy`` / ``drifting`` (moderate) / ``stale`` (major)."""
        verdicts = {d.verdict for d in self.attributes}
        if "major" in verdicts:
            return "stale"
        if "moderate" in verdicts:
            return "drifting"
        return "healthy"

    @property
    def stale(self) -> bool:
        return self.verdict != "healthy"

    def record(self) -> None:
        """Publish ``repro_drift_*`` gauges on the global registry.

        No-op (shared null instruments) while metrics are disabled.
        """
        score = metrics.gauge(
            "repro_drift_score",
            "PSI drift score per fitted attribute/parameter distribution",
            labelnames=("attribute",),
        )
        for drift in self.attributes:
            score.labels(attribute=drift.attribute).set(drift.psi)
        metrics.gauge(
            "repro_drift_psi_max",
            "Largest PSI across baselined distributions",
        ).set(self.psi_max)
        metrics.gauge(
            "repro_drift_stale",
            "1 when the drift verdict recommends a refit",
        ).set(1.0 if self.stale else 0.0)
        if self.stale:
            logger.warning(
                "drift detected",
                extra={
                    "verdict": self.verdict,
                    "psi_max": round(self.psi_max, 4),
                    "attributes": ",".join(
                        d.attribute for d in self.drifted
                    ),
                },
            )

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict,
            "psi_max": self.psi_max,
            "thresholds": self.thresholds.to_dict(),
            "attributes": [d.to_dict() for d in self.attributes],
        }


class DriftDetector:
    """Scores live distributions against a fit-time baseline."""

    def __init__(
        self,
        baseline: DriftBaseline,
        thresholds: Optional[DriftThresholds] = None,
    ) -> None:
        self.baseline = baseline
        self.thresholds = thresholds or DriftThresholds()

    def _classify(
        self, psi: float, p_value: float, n_expected: int, n_actual: int
    ) -> str:
        t = self.thresholds
        if n_expected < t.min_samples or n_actual < t.min_samples:
            return "insufficient"
        if psi >= t.psi_major and p_value < t.alpha:
            return "major"
        if psi >= t.psi_moderate and p_value < t.alpha:
            return "moderate"
        return "stationary"

    def score(
        self, live: Mapping[str, Distribution]
    ) -> DriftReport:
        """Score live ``{name: {category: count}}`` maps vs the baseline.

        Only names present in the baseline are scored — the baseline
        defines what the models depend on; novel live attributes are an
        upstream schema change, not drift.
        """
        scored: List[AttributeDrift] = []
        for name, expected in sorted(self.baseline.distributions().items()):
            actual = live.get(name)
            if actual is None:
                continue
            psi = population_stability_index(expected, actual)
            statistic, dof, p_value = chi_square_drift(expected, actual)
            n_expected = int(sum(expected.values()))
            n_actual = int(sum(float(v) for v in actual.values()))
            scored.append(
                AttributeDrift(
                    attribute=name,
                    psi=psi,
                    statistic=statistic,
                    dof=dof,
                    p_value=p_value,
                    n_expected=n_expected,
                    n_actual=n_actual,
                    verdict=self._classify(psi, p_value, n_expected, n_actual),
                )
            )
        scored.sort(key=lambda d: d.psi, reverse=True)
        return DriftReport(attributes=scored, thresholds=self.thresholds)

    def score_network(self, network, store=None) -> DriftReport:
        """Score a whole live snapshot (network + optional config store)."""
        live: Dict[str, Dict[str, float]] = attribute_distributions(network)
        if store is not None:
            for name in self.baseline.parameters:
                counts: Dict[str, float] = {}
                for values in (
                    store.singular_values(name),
                    store.pairwise_values(name),
                ):
                    for value in values.values():
                        key = str(value)
                        counts[key] = counts.get(key, 0.0) + 1.0
                if counts:
                    live[PARAMETER_PREFIX + name] = counts
        return self.score(live)


class DriftWindow:
    """Sampled live attribute observations, accumulated by the service.

    The serving hot path calls :meth:`observe` with a request's resolved
    attribute mapping; only every ``sample_every``-th request is folded
    into the window (one dict walk), so the warm cache-hit path stays
    within the health-overhead budget.  Thread-safe.
    """

    def __init__(self, sample_every: int = 8, max_samples: int = 4096) -> None:
        self.sample_every = max(1, int(sample_every))
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._counts: Dict[str, Dict[str, float]] = {}
        self._seen = 0
        self._sampled = 0

    def observe(self, values: Mapping[str, Any]) -> bool:
        """Maybe fold one request's attribute values into the window.

        Returns True when this request was sampled.
        """
        with self._lock:
            seen = self._seen
            self._seen = seen + 1
            if seen % self.sample_every:
                return False
            if self._sampled >= self.max_samples:
                return False
            self._sampled += 1
            for name, value in values.items():
                bucket = self._counts.setdefault(name, {})
                key = str(value)
                bucket[key] = bucket.get(key, 0.0) + 1.0
            return True

    @property
    def seen(self) -> int:
        with self._lock:
            return self._seen

    @property
    def sampled(self) -> int:
        with self._lock:
            return self._sampled

    def counts(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {name: dict(dist) for name, dist in self._counts.items()}

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._seen = 0
            self._sampled = 0


@dataclass
class HealthReport:
    """The ``repro health`` surface: drift + SLO + profile, one verdict.

    ``slo`` is any object with ``status`` / ``to_dict()`` / ``lines()``
    (duck-typed so this module does not import :mod:`repro.obs.slo`);
    ``profile`` is flamegraph-collapsed ``(stack, samples)`` pairs,
    hottest first.
    """

    drift: Optional[DriftReport] = None
    slo: Optional[Any] = None
    profile: Sequence[Tuple[str, int]] = ()
    notes: List[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        slo_status = getattr(self.slo, "status", "ok")
        if slo_status == "failing":
            return "failing"
        if slo_status == "degraded":
            return "degraded"
        if self.drift is not None and self.drift.stale:
            return "degraded"
        return "healthy"

    @property
    def exit_code(self) -> int:
        return {"healthy": 0, "degraded": 1, "failing": 2}[self.status]

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "drift": self.drift.to_dict() if self.drift else None,
            "slo": self.slo.to_dict() if self.slo is not None else None,
            "profile": [
                {"stack": stack, "samples": samples}
                for stack, samples in self.profile
            ],
            "notes": list(self.notes),
        }

    def to_text(self, top_frames: int = 5) -> str:
        """The plain-text report ``repro health`` prints."""
        lines: List[str] = [f"health: {self.status}"]
        if self.drift is not None:
            lines.append("")
            lines.append(
                f"drift: {self.drift.verdict} "
                f"(psi_max={self.drift.psi_max:.4f})"
            )
            for d in self.drift.attributes[:10]:
                lines.append(
                    f"  {d.attribute:<28s} psi={d.psi:8.4f} "
                    f"p={d.p_value:.4f} n={d.n_actual:<5d} {d.verdict}"
                )
        if self.slo is not None:
            lines.append("")
            lines.append(f"slo: {getattr(self.slo, 'status', 'ok')}")
            slo_lines = getattr(self.slo, "lines", None)
            if callable(slo_lines):
                lines.extend("  " + line for line in slo_lines())
        if self.profile:
            lines.append("")
            lines.append(f"top frames ({len(self.profile)} stacks):")
            for stack, samples in list(self.profile)[:top_frames]:
                frame = stack.split(";")[-1]
                lines.append(f"  {samples:6d}  {frame}  [{stack}]")
        for note in self.notes:
            lines.append("")
            lines.append(f"note: {note}")
        return "\n".join(lines)
