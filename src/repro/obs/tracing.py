"""Lightweight tracing: nested wall-clock spans with exporters.

A span records one timed operation — ``span("engine.fit")``,
``span("service.handle")`` — with a name, attributes, and its position
in the trace tree (``trace_id`` / ``span_id`` / ``parent_id``).  The
current span is tracked in a :mod:`contextvars` variable, so nesting
works across threads and ``async`` alike, and finished spans flow to
exporters:

* :class:`RingBufferExporter` — the last N spans in memory (tests,
  the CLI, embedded debugging),
* :class:`JsonlExporter` — one JSON object per line, append-only
  (the CLI's ``--trace <path>``).

**Process-pool propagation.**  The master captures its current context
with :func:`current_context` and ships it to workers alongside the
task; a worker runs its work under :func:`collect` (a buffering tracer)
rooted at :func:`span_from_context`, and returns the finished spans
with the result.  The master feeds them back through :func:`ingest`, so
worker spans land in the master's exporters re-parented under the span
that dispatched them — one coherent trace across processes (see
:func:`repro.parallel.pool.run_tasks`).

Tracing is **zero-cost when disabled**: with no tracer configured,
:func:`span` returns a shared no-op context manager and records
nothing.
"""

from __future__ import annotations

import atexit
import contextvars
import json
import os
import signal
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "JsonlExporter",
    "RingBufferExporter",
    "Span",
    "TraceTree",
    "Tracer",
    "active",
    "active_spans",
    "assemble_trace",
    "collect",
    "configure",
    "current_context",
    "disable",
    "flush_exit_exporters",
    "format_traceparent",
    "get_tracer",
    "ingest",
    "install_exit_flush",
    "parse_traceparent",
    "record_span",
    "span",
    "span_from_context",
    "thread_span_stack",
    "track_thread_spans",
    "uninstall_exit_flush",
    "use_context",
]

#: (trace_id, span_id) of the span currently executing in this context.
_CURRENT: "contextvars.ContextVar[Optional[Tuple[str, str]]]" = (
    contextvars.ContextVar("repro_obs_current_span", default=None)
)


def _new_id() -> str:
    # os.urandom + bytes.hex is ~4x cheaper than uuid4 — ids are minted
    # on every span, so this is serving-path hot.
    return os.urandom(8).hex()


def _new_trace_id() -> str:
    """A W3C-width (32 hex chars) trace id for trace roots."""
    return os.urandom(16).hex()


# -- W3C trace-context propagation --------------------------------------------

_TRACEPARENT_VERSION = "00"
_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex(value: str) -> bool:
    return bool(value) and set(value) <= _HEX_DIGITS


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """Parse a W3C ``traceparent`` header into a ``(trace_id, span_id)``
    context, or ``None`` when the header is absent or malformed.

    Accepts ``<version>-<32 hex trace-id>-<16 hex parent-id>-<2 hex
    flags>``.  Per the spec, all-zero trace or parent ids are invalid,
    version ``ff`` is invalid, and future versions are accepted as long
    as the first four fields parse (extra suffix fields are ignored).
    Malformed input is treated as "no incoming context" rather than an
    error, so a bad client header can never fail a request.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == _TRACEPARENT_VERSION and len(parts) != 4:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(parent_id) != 16 or not _is_hex(parent_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return (trace_id, parent_id)


def format_traceparent(context: Optional[Tuple[str, str]]) -> Optional[str]:
    """Render a ``(trace_id, span_id)`` context as a ``traceparent``
    header value (sampled flag set), or ``None`` without a context.

    Internal trace ids predating W3C support are 16 hex chars; they are
    left-padded with zeros to the 32-char wire width.
    """
    if context is None:
        return None
    trace_id, span_id = context
    trace_id = str(trace_id).lower().rjust(32, "0")[:32]
    span_id = str(span_id).lower().rjust(16, "0")[:16]
    return f"{_TRACEPARENT_VERSION}-{trace_id}-{span_id}-01"


class Span:
    """One finished (or in-flight) timed operation."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "duration_s",
        "attributes",
        "pid",
        "status",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_time = time.time()
        self.duration_s = 0.0
        self.attributes = attributes or {}
        self.pid = os.getpid()
        self.status = "ok"

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
            "pid": self.pid,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        out = cls(
            payload["name"],
            payload["trace_id"],
            payload["span_id"],
            payload.get("parent_id"),
            dict(payload.get("attributes", {})),
        )
        out.start_time = float(payload.get("start_time", 0.0))
        out.duration_s = float(payload.get("duration_s", 0.0))
        out.pid = int(payload.get("pid", 0))
        out.status = payload.get("status", "ok")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_s * 1e3:.3f}ms)"
        )


class RingBufferExporter:
    """Keeps the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self._lock = threading.Lock()
        self._spans: "deque[Span]" = deque(maxlen=capacity)

    def export(self, span_obj: Span) -> None:
        with self._lock:
            self._spans.append(span_obj)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            return out


class JsonlExporter:
    """Appends one JSON object per finished span to a file.

    Thread-safe, and safe against the atexit + signal double-flush: the
    lock is reentrant so a SIGTERM handler firing while the same thread
    is mid-``export`` can still :meth:`close` instead of deadlocking,
    ``close`` is idempotent behind a ``_closed`` flag, and a write
    racing a signal-path close degrades to a dropped span, never an
    exception.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.RLock()
        self._closed = False
        self._handle = open(path, "a")

    def export(self, span_obj: Span) -> None:
        line = json.dumps(span_obj.to_dict(), default=str)
        with self._lock:
            if self._closed or self._handle.closed:
                return
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except ValueError:  # pragma: no cover - closed under our feet
                pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not self._handle.closed:
                self._handle.close()


class _ListExporter:
    """Collects spans into a plain list (the worker-side collector)."""

    def __init__(self):
        self.spans: List[Span] = []

    def export(self, span_obj: Span) -> None:
        self.spans.append(span_obj)


class Tracer:
    """Creates spans and fans finished ones out to exporters."""

    def __init__(self, exporters: Sequence = ()):
        self.exporters = list(exporters)

    def start(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[Tuple[str, str]] = None,
    ) -> "_SpanHandle":
        if parent is None:
            parent = _CURRENT.get()
        if parent is None:
            trace_id, parent_id = _new_trace_id(), None
        else:
            trace_id, parent_id = parent
        span_obj = Span(name, trace_id, _new_id(), parent_id, attributes)
        return _SpanHandle(self, span_obj)

    def finish(self, span_obj: Span) -> None:
        for exporter in self.exporters:
            exporter.export(span_obj)


class _SpanHandle:
    """Context manager wrapping one in-flight span."""

    __slots__ = ("_tracer", "span", "_token", "_started")

    def __init__(self, tracer: Tracer, span_obj: Span):
        self._tracer = tracer
        self.span = span_obj
        self._token = None
        self._started = 0.0

    def set(self, key: str, value: Any) -> None:
        self.span.set(key, value)

    def __enter__(self) -> "_SpanHandle":
        self._token = _CURRENT.set((self.span.trace_id, self.span.span_id))
        self._started = time.perf_counter()
        # Single-key dict ops are GIL-atomic, so in-flight bookkeeping
        # costs no lock on the hot path.
        _ACTIVE_SPANS[self.span.span_id] = self.span
        if _TRACK_THREAD_SPANS:
            _THREAD_SPANS.setdefault(
                threading.get_ident(), []
            ).append(self.span.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration_s = time.perf_counter() - self._started
        if exc_type is not None:
            self.span.status = f"error:{exc_type.__name__}"
        _CURRENT.reset(self._token)
        _ACTIVE_SPANS.pop(self.span.span_id, None)
        if _TRACK_THREAD_SPANS:
            stack = _THREAD_SPANS.get(threading.get_ident())
            if stack and stack[-1] == self.span.name:
                stack.pop()
        self._tracer.finish(self.span)


class _NullSpanHandle:
    """The shared no-op handle returned while tracing is disabled."""

    __slots__ = ()
    span = None

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()

#: The process-global tracer; ``None`` means tracing is disabled.
_TRACER: Optional[Tracer] = None


def configure(exporters: Sequence) -> Tracer:
    """Install a tracer with the given exporters as the global."""
    global _TRACER
    _TRACER = Tracer(exporters)
    return _TRACER


def disable() -> None:
    global _TRACER
    _TRACER = None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def active() -> bool:
    return _TRACER is not None


def span(name: str, **attributes):
    """Open a span under the current context (no-op while disabled)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.start(name, attributes or None)


def null_span():
    """The shared no-op span handle.

    For call sites that conditionally wrap work in a span — e.g. the
    batch planner's scatter loop opens a per-request ``shard.handle``
    span only when the front end propagated a trace context — and want
    one uniform ``with`` statement either way.
    """
    return _NULL_SPAN


def current_context() -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` of the current span, for propagation."""
    return _CURRENT.get()


def span_from_context(
    context: Optional[Tuple[str, str]], name: str, **attributes
):
    """Open a span parented at an explicitly propagated context.

    Used on the far side of a process boundary: the master's
    :func:`current_context` travels with the task, and the worker's
    spans nest under it even though the worker has no local parent.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    parent = tuple(context) if context is not None else None
    return tracer.start(name, attributes or None, parent=parent)


class use_context:
    """Context manager: adopt an explicit ``(trace_id, span_id)`` as the
    current context without opening a span.

    The serving path uses this to run downstream work (shard handling,
    engine calls) under a request's trace when the code crossing the
    boundary — a worker thread draining a batch queue — has no
    :mod:`contextvars` inheritance from the request coroutine.
    ``None`` leaves the ambient context untouched.
    """

    __slots__ = ("_context", "_token")

    def __init__(self, context: Optional[Tuple[str, str]]):
        self._context = tuple(context) if context is not None else None
        self._token = None

    def __enter__(self) -> "use_context":
        if self._context is not None:
            self._token = _CURRENT.set(self._context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None


def record_span(
    name: str,
    context: Optional[Tuple[str, str]],
    start_time: float,
    duration_s: float,
    status: str = "ok",
    **attributes,
) -> Optional[Span]:
    """Emit an already-finished span parented at ``context``.

    For operations whose bounds are only known after the fact — e.g. a
    request's queue wait is measured when the batch worker dequeues it,
    long after the wait started.  ``start_time`` is a wall-clock epoch
    timestamp; returns the exported span, or ``None`` while disabled.
    """
    tracer = _TRACER
    if tracer is None:
        return None
    if context is None:
        trace_id, parent_id = _new_trace_id(), None
    else:
        trace_id, parent_id = context
    span_obj = Span(name, trace_id, _new_id(), parent_id, attributes or None)
    span_obj.start_time = start_time
    span_obj.duration_s = max(0.0, duration_s)
    span_obj.status = status
    tracer.finish(span_obj)
    return span_obj


class collect:
    """Context manager: buffer this context's spans into a list.

    Temporarily replaces the global tracer with a collecting one;
    ``as`` yields the list finished spans accumulate into.  Used by
    pool workers to hand their spans back to the master.
    """

    def __init__(self):
        self._exporter = _ListExporter()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> List[Span]:
        global _TRACER
        self._previous = _TRACER
        _TRACER = Tracer([self._exporter])
        return self._exporter.spans

    def __exit__(self, exc_type, exc, tb) -> None:
        global _TRACER
        _TRACER = self._previous


# -- in-flight span tracking (flight-recorder dumps) -------------------------

#: span_id -> Span for every span currently open anywhere in the
#: process.  Populated by :class:`_SpanHandle` (single-key dict ops are
#: GIL-atomic, so no lock); read by :func:`active_spans` when the flight
#: recorder captures a black-box snapshot.
_ACTIVE_SPANS: Dict[str, Span] = {}


def active_spans() -> List[Span]:
    """Snapshot of every span currently in flight (unordered)."""
    return list(_ACTIVE_SPANS.values())


# -- trace assembly ------------------------------------------------------------


class TraceTree:
    """One trace reassembled from finished spans.

    ``roots`` are the spans without a parent in the trace whose
    ``parent_id`` is either ``None`` or marked ``remote_parent`` (the
    parent lives in the caller's process — e.g. a client-sent
    ``traceparent``).  ``orphans`` are spans that *claim* a local parent
    that never showed up: a broken propagation link.
    """

    __slots__ = ("trace_id", "spans", "roots", "children", "orphans")

    def __init__(
        self,
        trace_id: str,
        spans: List[Span],
        roots: List[Span],
        children: Dict[str, List[Span]],
        orphans: List[Span],
    ):
        self.trace_id = trace_id
        self.spans = spans
        self.roots = roots
        self.children = children
        self.orphans = orphans

    def to_dict(self) -> Dict[str, Any]:
        def node(span_obj: Span) -> Dict[str, Any]:
            payload = span_obj.to_dict()
            payload["children"] = [
                node(child) for child in self.children.get(span_obj.span_id, [])
            ]
            return payload

        return {
            "trace_id": self.trace_id,
            "span_count": len(self.spans),
            "orphan_count": len(self.orphans),
            "roots": [node(root) for root in self.roots],
            "orphans": [node(orphan) for orphan in self.orphans],
        }

    def render(self) -> str:
        """ASCII rendering of the span tree (the ``repro trace`` CLI)."""
        lines: List[str] = [f"trace {self.trace_id} ({len(self.spans)} spans)"]

        def walk(span_obj: Span, prefix: str, is_last: bool) -> None:
            connector = "`-- " if is_last else "|-- "
            detail = f"{span_obj.name}  {span_obj.duration_s * 1e3:.3f}ms"
            extras = []
            if span_obj.status != "ok":
                extras.append(span_obj.status)
            for key in ("market", "shard", "generation", "batch_size"):
                if key in span_obj.attributes:
                    extras.append(f"{key}={span_obj.attributes[key]}")
            if extras:
                detail += f"  [{', '.join(extras)}]"
            lines.append(prefix + connector + detail)
            kids = self.children.get(span_obj.span_id, [])
            child_prefix = prefix + ("    " if is_last else "|   ")
            for i, child in enumerate(kids):
                walk(child, child_prefix, i == len(kids) - 1)

        for i, root in enumerate(self.roots):
            walk(root, "", i == len(self.roots) - 1)
        if self.orphans:
            lines.append(f"!! {len(self.orphans)} orphan span(s):")
            for orphan in self.orphans:
                lines.append(
                    f"   {orphan.name} (span={orphan.span_id}, "
                    f"missing parent={orphan.parent_id})"
                )
        return "\n".join(lines)


def assemble_trace(spans: Iterable, trace_id: str) -> TraceTree:
    """Rebuild the span tree for one trace id from a span soup.

    Accepts :class:`Span` objects or their dicts (e.g. read back from a
    :class:`JsonlExporter` file).  Spans whose ``parent_id`` is missing
    from the trace are split into *roots* (no parent, or the parent is
    explicitly remote via a truthy ``remote_parent`` attribute) and
    *orphans* (a local parent that never arrived — a propagation bug).
    Children sort by start time.
    """
    trace_id = str(trace_id).lower()
    want = {trace_id, trace_id.rjust(32, "0"), trace_id.lstrip("0") or "0"}
    selected: List[Span] = []
    for item in spans:
        span_obj = item if isinstance(item, Span) else Span.from_dict(item)
        if str(span_obj.trace_id).lower() in want:
            selected.append(span_obj)
    selected.sort(key=lambda s: s.start_time)
    by_id = {s.span_id: s for s in selected}
    roots: List[Span] = []
    orphans: List[Span] = []
    children: Dict[str, List[Span]] = {}
    for span_obj in selected:
        parent_id = span_obj.parent_id
        if parent_id and parent_id in by_id:
            children.setdefault(parent_id, []).append(span_obj)
        elif parent_id and not span_obj.attributes.get("remote_parent"):
            orphans.append(span_obj)
        else:
            roots.append(span_obj)
    return TraceTree(trace_id, selected, roots, children, orphans)


# -- thread-span bookkeeping (profiler attribution) --------------------------

#: thread ident -> stack of open span names.  Maintained by
#: :class:`_SpanHandle` only while :func:`track_thread_spans` has turned
#: the flag on (the sampling profiler does), so ordinary tracing pays a
#: single falsy global check per span.
_THREAD_SPANS: Dict[int, List[str]] = {}
_TRACK_THREAD_SPANS = False


def track_thread_spans(enabled: bool) -> None:
    """Switch cross-thread span bookkeeping on or off.

    The sampling profiler (:mod:`repro.obs.profiler`) cannot read
    another thread's :mod:`contextvars`, so while it runs, span handles
    additionally push/pop their names on a per-thread stack readable
    from the sampling thread via :func:`thread_span_stack`.
    """
    global _TRACK_THREAD_SPANS
    _TRACK_THREAD_SPANS = bool(enabled)
    if not enabled:
        _THREAD_SPANS.clear()


def thread_span_stack(thread_id: int) -> Tuple[str, ...]:
    """The open span names of one thread, outermost first (snapshot)."""
    stack = _THREAD_SPANS.get(thread_id)
    return tuple(stack) if stack else ()


# -- exit-path flushing -------------------------------------------------------

#: Exporters to flush/close when the interpreter exits (normally or on
#: SIGTERM/SIGINT), so ``--trace`` JSONL files are not truncated when a
#: CLI run dies mid-flight.
_EXIT_EXPORTERS: List = []
_ATEXIT_REGISTERED = False
#: signum -> handler that was installed before ours (chained after flush).
_PREVIOUS_SIGNAL_HANDLERS: Dict[int, Any] = {}

_EXIT_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def flush_exit_exporters() -> int:
    """Flush/close every registered exit exporter (idempotent).

    Returns the number of exporters flushed.  Called from the
    :mod:`atexit` hook and the signal path; safe to invoke directly.
    """
    flushed = 0
    for exporter in list(_EXIT_EXPORTERS):
        close = getattr(exporter, "close", None) or getattr(
            exporter, "flush", None
        )
        if close is None:
            continue
        try:
            close()
            flushed += 1
        except Exception:  # pragma: no cover - best-effort on teardown
            pass
    return flushed


def _handle_exit_signal(signum, frame) -> None:
    """Flush exporters, then hand the signal to whoever had it before."""
    flush_exit_exporters()
    previous = _PREVIOUS_SIGNAL_HANDLERS.get(signum)
    if callable(previous) and previous not in (
        signal.SIG_DFL, signal.SIG_IGN, signal.default_int_handler
    ):
        previous(signum, frame)
        return
    if previous is signal.SIG_IGN:
        return
    # Default disposition: restore it and re-raise so the process dies
    # with the correct signal exit status.
    signal.signal(signum, signal.SIG_DFL)
    try:
        signal.raise_signal(signum)
    except AttributeError:  # pragma: no cover - python < 3.8
        os.kill(os.getpid(), signum)


def install_exit_flush(exporter) -> None:
    """Close ``exporter`` when the process exits — normally or by signal.

    Registers one :mod:`atexit` hook (first call only) and, when running
    in the main thread, wraps the SIGTERM/SIGINT handlers with a
    flush-then-chain shim.  The CLI installs its ``--trace``
    :class:`JsonlExporter` here so spans survive abnormal exits.
    """
    global _ATEXIT_REGISTERED
    if exporter not in _EXIT_EXPORTERS:
        _EXIT_EXPORTERS.append(exporter)
    if not _ATEXIT_REGISTERED:
        atexit.register(flush_exit_exporters)
        _ATEXIT_REGISTERED = True
    if not _PREVIOUS_SIGNAL_HANDLERS:
        try:
            for signum in _EXIT_SIGNALS:
                _PREVIOUS_SIGNAL_HANDLERS[signum] = signal.signal(
                    signum, _handle_exit_signal
                )
        except ValueError:  # pragma: no cover - not the main thread
            _PREVIOUS_SIGNAL_HANDLERS.clear()


def uninstall_exit_flush(exporter) -> None:
    """Drop an exporter from the exit path (clean CLI shutdown).

    When the last exporter is removed, the original signal handlers are
    restored (the atexit hook stays registered but becomes a no-op).
    """
    try:
        _EXIT_EXPORTERS.remove(exporter)
    except ValueError:
        pass
    if not _EXIT_EXPORTERS and _PREVIOUS_SIGNAL_HANDLERS:
        try:
            for signum, previous in _PREVIOUS_SIGNAL_HANDLERS.items():
                signal.signal(signum, previous)
        except ValueError:  # pragma: no cover - not the main thread
            pass
        _PREVIOUS_SIGNAL_HANDLERS.clear()


def ingest(spans: Iterable) -> int:
    """Feed spans (objects or dicts) through the global tracer's
    exporters — the master-side merge of worker span batches."""
    tracer = _TRACER
    if tracer is None:
        return 0
    merged = 0
    for item in spans:
        span_obj = item if isinstance(item, Span) else Span.from_dict(item)
        tracer.finish(span_obj)
        merged += 1
    return merged
