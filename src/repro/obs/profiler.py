"""A sampling wall-clock profiler with span attribution.

A background thread wakes every ``interval`` seconds, snapshots every
other thread's Python stack via :func:`sys._current_frames`, and folds
each into a flamegraph-ready *collapsed stack* — ``frame;frame;frame``
root-first, with a sample count.  When span tracking is on, the sampled
thread's open span names (maintained by
:func:`repro.obs.tracing.track_thread_spans`) are prepended as
``span:<name>`` frames, so the flamegraph shows wall-clock *per
operation* (``span:service.handle;…``) rather than only per function.

Sampling costs one ``sys._current_frames`` walk per tick on the
profiler thread — nothing is installed on the profiled threads
themselves (no ``sys.settrace``), which is what keeps the overhead low
enough to leave on in serve-batch (gated <5% by
``benchmarks/test_serve_throughput.py``).

```python
with SamplingProfiler(interval=0.005) as profiler:
    serve_lots_of_requests()
profiler.write_collapsed("profile.txt")   # flamegraph.pl-compatible
profiler.top(5)                           # [(stack, samples), ...]
```
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics, tracing

__all__ = ["SamplingProfiler"]


def _frame_label(frame) -> str:
    code = frame.f_code
    module = os.path.basename(code.co_filename)
    if module.endswith(".py"):
        module = module[:-3]
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Samples thread stacks into collapsed-stack counts.

    ``interval`` is the sampling period in seconds; ``with_spans``
    switches on cross-thread span bookkeeping for the duration (span
    frames appear only for spans opened while the profiler runs);
    ``max_depth`` bounds the recorded stack depth.  Restartable: a
    stopped profiler keeps its samples until :meth:`clear`.
    """

    def __init__(
        self,
        interval: float = 0.005,
        with_spans: bool = True,
        max_depth: int = 64,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.with_spans = with_spans
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._stacks: Dict[str, int] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        if self.with_spans:
            tracing.track_thread_spans(True)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.with_spans:
            tracing.track_thread_spans(False)
        metrics.counter(
            "repro_profiler_samples_total",
            "Stack samples captured by the wall-clock profiler",
        ).inc(self.samples)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample(own_ident)

    def _sample(self, own_ident: int) -> None:
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter teardown
            return
        collapsed: List[str] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            if self.with_spans:
                spans = tracing.thread_span_stack(ident)
                if spans:
                    stack = [f"span:{name}" for name in spans] + stack
            collapsed.append(";".join(stack))
        with self._lock:
            self._samples += 1
            for key in collapsed:
                self._stacks[key] = self._stacks.get(key, 0) + 1

    # -- results -------------------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def collapsed(self) -> Dict[str, int]:
        """``{collapsed_stack: samples}`` over everything captured."""
        with self._lock:
            return dict(self._stacks)

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest collapsed stacks, most-sampled first."""
        with self._lock:
            ranked = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return ranked[:n]

    def span_totals(self) -> Dict[str, int]:
        """Samples attributed to each root span name (``span:`` frames)."""
        totals: Dict[str, int] = {}
        for stack, count in self.collapsed().items():
            head = stack.split(";", 1)[0]
            if head.startswith("span:"):
                name = head[len("span:"):]
                totals[name] = totals.get(name, 0) + count
        return totals

    def write_collapsed(self, path) -> int:
        """Write ``stack count`` lines (flamegraph.pl input format)."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(self.collapsed().items())
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    def clear(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._samples = 0
