"""The unified metrics registry: counters, gauges, fixed-bucket histograms.

One registry owns every instrument behind a single lock; instruments are
created (or fetched, get-or-create) by name through
:meth:`MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
:meth:`~MetricsRegistry.histogram`, optionally with label names.  The
registry exports itself two ways:

* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` series with a ``+Inf`` tail, ``_sum``/``_count``),
* :meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.from_dict` —
  a JSON-round-trippable plain-dict form.

Instrumented library code never talks to a registry directly — it goes
through the module-level :func:`counter` / :func:`gauge` /
:func:`histogram` helpers, which proxy to the process-global registry.
That global defaults to :data:`NULL_REGISTRY`, whose instruments are
shared no-op singletons, so instrumentation is zero-cost until
:func:`enable` installs a real registry (the ``repro metrics`` CLI
command, tests, or an embedding service).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "BucketHistogram",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SERIES",
    "DEFAULT_REFRESH_BUCKETS",
    "DROPPED_SERIES_METRIC",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
    "NullRegistry",
    "OVERFLOW_LABEL",
    "ServiceMetrics",
    "counter",
    "parse_prometheus_labels",
    "disable",
    "enable",
    "gauge",
    "get_registry",
    "histogram",
    "set_registry",
]

#: Default histogram buckets (seconds): microseconds for cache hits up
#: to tens of seconds for full refits.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Label-value tuple a family collapses new series onto once it hits the
#: registry's ``max_label_series`` cap — one catch-all child per family,
#: so a mis-labelled hot path (say, a raw carrier id used as a label)
#: cannot grow the registry without bound.
OVERFLOW_LABEL = "__overflow__"

#: Default per-family series cap.  Generous — the widest legitimate
#: family is ``repro_fit_phase_seconds{phase,parameter}`` at
#: (3 phases × #parameters); a four-digit cap only trips on genuinely
#: unbounded label values.
DEFAULT_MAX_LABEL_SERIES = 1024

#: Counter tracking series collapsed by the cardinality guard.  Exempt
#: from the guard itself (its own cardinality is bounded by the number
#: of families).
DROPPED_SERIES_METRIC = "repro_metrics_dropped_series_total"

#: Request-latency buckets (seconds) — tuned for an in-process service
#: where a cache hit is microseconds and a cold vote is milliseconds.
#: Shared by the serving facade (`repro.serve.metrics`) and the health
#: layer's latency SLO rules, so quantiles are computed over one bucket
#: layout.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _validate_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    values = tuple(float(b) for b in buckets)
    if not values:
        raise ValueError("histogram needs at least one bucket bound")
    if list(values) != sorted(values) or len(set(values)) != len(values):
        raise ValueError(
            "histogram buckets must be strictly increasing, got "
            f"{list(values)}"
        )
    return values


class BucketHistogram:
    """A fixed-bucket cumulative histogram (Prometheus-style ``le``).

    The standalone data core, shared by the registry's
    :class:`Histogram` instrument and by :class:`LatencyHistogram` (an
    alias kept for compatibility).  ``counts[i]`` is the number of
    observations that landed in bucket ``i`` (non-cumulative); the last
    slot is the ``+Inf`` tail.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets: Tuple[float, ...] = _validate_buckets(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +inf tail
        self.total = 0.0
        self.count = 0
        #: bucket index -> ``(trace_id, value, unix_ts)`` of the most
        #: recent exemplar observation landing in that bucket.  Links a
        #: p99 bucket straight to a trace id (OpenMetrics exemplars).
        self.exemplars: Dict[int, Tuple[str, float, float]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self.total += value
        self.count += 1
        index = len(self.buckets)  # +Inf tail unless a bound matches
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        if exemplar is not None:
            self.exemplars[index] = (str(exemplar), float(value), time.time())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket that
        contains the ``q``-th observation (conservative)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bound in enumerate(self.buckets):
            seen += self.counts[index]
            if seen >= target:
                return bound
        return float("inf")

    def cumulative_counts(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` pairs ending at ``+Inf == count``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            out.append((_format_number(bound), running))
        out.append(("+Inf", running + self.counts[-1]))
        return out

    def as_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.counts)},
                "+inf": self.counts[-1],
            },
        }


def _format_number(value: float) -> str:
    """Render a sample value the way Prometheus text expects."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


def _escape(value: str) -> str:
    """Escape a label value per the text exposition format: backslash
    first (so later escapes are not double-escaped), then double-quote
    and newline."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """Escape HELP text per the exposition format (backslash and
    newline only — quotes are legal in help docstrings)."""
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


def parse_prometheus_labels(label_text: str) -> Dict[str, str]:
    """Parse one ``{name="value",...}`` label block back into a dict.

    The inverse of :func:`_format_labels` — a small, strict parser used
    by the escaping round-trip tests (and handy for scraping our own
    exposition in-process).  Raises ``ValueError`` on malformed input.
    """
    if not label_text:
        return {}
    if not (label_text.startswith("{") and label_text.endswith("}")):
        raise ValueError(f"not a label block: {label_text!r}")
    body = label_text[1:-1]
    out: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq]
        if not body[eq + 1 : eq + 2] == '"':
            raise ValueError(f"label {name!r} value is not quoted")
        i = eq + 2
        chars: List[str] = []
        while True:
            if i >= len(body):
                raise ValueError("unterminated label value")
            ch = body[i]
            if ch == "\\":
                nxt = body[i + 1 : i + 2]
                if nxt == "n":
                    chars.append("\n")
                elif nxt in ('"', "\\"):
                    chars.append(nxt)
                else:
                    raise ValueError(f"bad escape \\{nxt}")
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            chars.append(ch)
            i += 1
        out[name] = "".join(chars)
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"expected ',' at {i} in {body!r}")
            i += 1
    return out


class _Instrument:
    """One (metric family, label values) series."""

    kind = ""

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]):
        self._family = family
        self._lock = family._lock
        self._labelvalues = labelvalues

    @property
    def name(self) -> str:
        return self._family.name

    @property
    def labelvalues(self) -> Tuple[str, ...]:
        return self._labelvalues

    def labels(self, *values, **kwargs) -> "_Instrument":
        return self._family.labels(*values, **kwargs)


class Counter(_Instrument):
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]):
        super().__init__(family, labelvalues)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]):
        super().__init__(family, labelvalues)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """A registered fixed-bucket histogram series."""

    kind = "histogram"

    def __init__(
        self,
        family: "_Family",
        labelvalues: Tuple[str, ...],
        buckets: Sequence[float],
    ):
        super().__init__(family, labelvalues)
        self._data = BucketHistogram(buckets)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        with self._lock:
            self._data.observe(value, exemplar=exemplar)

    def exemplars(self) -> Dict[int, Tuple[str, float, float]]:
        with self._lock:
            return dict(self._data.exemplars)

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._data.buckets

    @property
    def count(self) -> int:
        with self._lock:
            return self._data.count

    @property
    def total(self) -> float:
        with self._lock:
            return self._data.total

    @property
    def mean(self) -> float:
        with self._lock:
            return self._data.mean

    def quantile(self, q: float) -> float:
        with self._lock:
            return self._data.quantile(q)

    def as_dict(self) -> Dict:
        with self._lock:
            return self._data.as_dict()


class _Family:
    """A named metric family: label names plus its child series."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self._lock = registry._lock
        self._registry = registry
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: "Dict[Tuple[str, ...], _Instrument]" = {}

    def _make_child(self, labelvalues: Tuple[str, ...]) -> _Instrument:
        if self.kind == "counter":
            return Counter(self, labelvalues)
        if self.kind == "gauge":
            return Gauge(self, labelvalues)
        return Histogram(self, labelvalues, self.buckets or DEFAULT_BUCKETS)

    def labels(self, *values, **kwargs) -> _Instrument:
        """The child series for one label-value combination."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name")
            try:
                values = tuple(str(kwargs[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name} needs labels {self.labelnames}"
                ) from exc
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes {len(self.labelnames)} label "
                f"values {self.labelnames}, got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                if self._at_series_cap():
                    return self._overflow_child()
                child = self._make_child(values)
                self._children[values] = child
            return child

    def _at_series_cap(self) -> bool:
        """True when a *new* labelled series would breach the registry's
        cardinality cap.  Existing series keep updating; only creation
        is collapsed.  Unlabelled families (one child) and the
        dropped-series counter itself are exempt."""
        cap = self._registry.max_label_series
        if cap is None or not self.labelnames:
            return False
        if self.name == DROPPED_SERIES_METRIC:
            return False
        live = len(self._children)
        if (OVERFLOW_LABEL,) * len(self.labelnames) in self._children:
            live -= 1  # the catch-all child doesn't count against the cap
        return live >= cap

    def _overflow_child(self) -> _Instrument:
        """Get-or-create the catch-all series and count the drop.

        Called under ``self._lock``; the lock is reentrant, so bumping
        the dropped-series counter through the registry is safe."""
        values = (OVERFLOW_LABEL,) * len(self.labelnames)
        child = self._children.get(values)
        if child is None:
            child = self._make_child(values)
            self._children[values] = child
        self._registry.counter(
            DROPPED_SERIES_METRIC,
            "Label series collapsed to __overflow__ by the cardinality cap",
            labelnames=("metric",),
        ).labels(self.name).inc()
        return child

    def children(self) -> List[_Instrument]:
        with self._lock:
            return [self._children[k] for k in sorted(self._children)]


class MetricsRegistry:
    """Counters, gauges and histograms behind one lock."""

    def __init__(
        self, max_label_series: Optional[int] = DEFAULT_MAX_LABEL_SERIES
    ) -> None:
        if max_label_series is not None and max_label_series < 1:
            raise ValueError("max_label_series must be >= 1 (or None)")
        self._lock = threading.RLock()
        self._families: "Dict[str, _Family]" = {}
        #: Per-family cap on distinct label-value series; ``None``
        #: disables the guard.  Once a family holds this many series,
        #: novel label combinations collapse onto a shared
        #: ``__overflow__`` child and
        #: ``repro_metrics_dropped_series_total{metric}`` counts them.
        self.max_label_series = max_label_series

    # -- instrument creation -------------------------------------------------

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name} already registered as a "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = _Family(
                self,
                name,
                help_text,
                kind,
                labelnames,
                _validate_buckets(buckets) if buckets is not None else None,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ):
        """Get or create a counter (the unlabeled child when no labels)."""
        family = self._family(name, help_text, "counter", labelnames)
        return family if labelnames else family.labels()

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ):
        family = self._family(name, help_text, "gauge", labelnames)
        return family if labelnames else family.labels()

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        family = self._family(name, help_text, "histogram", labelnames, buckets)
        return family if labelnames else family.labels()

    # -- introspection -------------------------------------------------------

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    # -- exposition ----------------------------------------------------------

    def to_prometheus_text(self, exemplars: bool = False) -> str:
        """The Prometheus text exposition format.

        With ``exemplars=True``, histogram bucket lines carry their
        OpenMetrics exemplar suffix (``# {trace_id="..."} value ts``)
        when one was recorded — off by default because the classic
        Prometheus text format does not allow it.
        """
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                label_text = _format_labels(family.labelnames, child.labelvalues)
                if family.kind == "histogram":
                    data = child._data
                    with self._lock:
                        cumulative = data.cumulative_counts()
                        total, count = data.total, data.count
                        bucket_exemplars = dict(data.exemplars)
                    for index, (le, cum) in enumerate(cumulative):
                        bucket_labels = _format_labels(
                            family.labelnames + ("le",),
                            child.labelvalues + (le,),
                        )
                        line = f"{family.name}_bucket{bucket_labels} {cum}"
                        if exemplars and index in bucket_exemplars:
                            trace_id, value, ts = bucket_exemplars[index]
                            line += (
                                f' # {{trace_id="{_escape(trace_id)}"}} '
                                f"{_format_number(value)} {ts:.3f}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{family.name}_sum{label_text} {_format_number(total)}"
                    )
                    lines.append(f"{family.name}_count{label_text} {count}")
                else:
                    lines.append(
                        f"{family.name}{label_text} "
                        f"{_format_number(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict:
        """A JSON-serializable dump (round-trips via :meth:`from_dict`)."""
        out: Dict = {}
        for family in self.families():
            series = []
            for child in family.children():
                labels = dict(zip(family.labelnames, child.labelvalues))
                if family.kind == "histogram":
                    with self._lock:
                        series.append(
                            {
                                "labels": labels,
                                "count": child._data.count,
                                "sum": child._data.total,
                                "counts": list(child._data.counts),
                            }
                        )
                else:
                    series.append({"labels": labels, "value": child.value})
            entry: Dict = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets or DEFAULT_BUCKETS)
            out[family.name] = entry
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name in sorted(payload):
            entry = payload[name]
            kind = entry["type"]
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "histogram":
                family = registry._family(
                    name, entry.get("help", ""), kind, labelnames,
                    entry.get("buckets", DEFAULT_BUCKETS),
                )
            else:
                family = registry._family(
                    name, entry.get("help", ""), kind, labelnames
                )
            for series in entry.get("series", ()):
                labels = series.get("labels", {})
                values = tuple(str(labels[n]) for n in labelnames)
                child = family.labels(*values) if labelnames else family.labels()
                if kind == "histogram":
                    child._data.count = int(series["count"])
                    child._data.total = float(series["sum"])
                    child._data.counts = [int(c) for c in series["counts"]]
                else:
                    child._value = float(series["value"])
        return registry


class NullInstrument:
    """A shared no-op stand-in for every instrument type."""

    __slots__ = ()
    kind = "null"
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def labels(self, *values, **kwargs) -> "NullInstrument":
        return self

    def as_dict(self) -> Dict:
        return {}


_NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """The disabled registry: every instrument is the shared no-op."""

    def counter(self, name, help_text="", labelnames=()):
        return _NULL_INSTRUMENT

    def gauge(self, name, help_text="", labelnames=()):
        return _NULL_INSTRUMENT

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS, labelnames=()):
        return _NULL_INSTRUMENT

    def families(self) -> List:
        return []

    def get(self, name: str) -> None:
        return None

    def to_prometheus_text(self, exemplars: bool = False) -> str:
        return ""

    def to_dict(self) -> Dict:
        return {}


NULL_REGISTRY = NullRegistry()

#: The process-global registry instrumented code records into.
_REGISTRY = NULL_REGISTRY


def get_registry():
    """The current process-global registry (null when disabled)."""
    return _REGISTRY


def set_registry(registry) -> None:
    """Install a registry (or :data:`NULL_REGISTRY`) as the global."""
    global _REGISTRY
    _REGISTRY = registry


def enable() -> MetricsRegistry:
    """Install (or return the already-installed) real global registry."""
    global _REGISTRY
    if not isinstance(_REGISTRY, MetricsRegistry):
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Return the global registry to the zero-cost null implementation."""
    global _REGISTRY
    _REGISTRY = NULL_REGISTRY


def enabled() -> bool:
    return isinstance(_REGISTRY, MetricsRegistry)


def counter(name: str, help_text: str = "", labelnames: Sequence[str] = ()):
    """A counter on the global registry (no-op while disabled)."""
    return _REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str = "", labelnames: Sequence[str] = ()):
    """A gauge on the global registry (no-op while disabled)."""
    return _REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str = "",
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    labelnames: Sequence[str] = (),
):
    """A histogram on the global registry (no-op while disabled)."""
    return _REGISTRY.histogram(name, help_text, buckets, labelnames)


# -- service-facing facade -----------------------------------------------------
#
# ServiceMetrics/LatencyHistogram started life in ``repro.serve.metrics``
# and moved here once the registry became the single source of truth;
# the old module is retired and raises ImportError pointing here.

#: Default refresh-duration buckets (seconds) — refits are much slower.
DEFAULT_REFRESH_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


class LatencyHistogram(BucketHistogram):
    """A :class:`BucketHistogram` with the service-tuned default bucket
    layout — kept as a compatibility alias for historical callers."""

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS):
        super().__init__(buckets)


class ServiceMetrics:
    """Counters + histograms for one :class:`RecommendationService`.

    Thread-safe: the service answers requests from many threads, and the
    refresher records from a background thread; every instrument sits
    behind the backing registry's single lock.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: The backing registry; expose it so embedders can scrape the
        #: service in Prometheus text form (:meth:`to_prometheus_text`).
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "repro_service_requests_total", "Recommendation requests served"
        )
        self._parameters = reg.counter(
            "repro_service_parameters_served_total",
            "Parameter recommendations served",
        )
        self._cache = reg.counter(
            "repro_service_cache_lookups_total",
            "Vote-cache lookups by result",
            labelnames=("result",),
        )
        self._fallbacks = reg.counter(
            "repro_service_fallbacks_total",
            "Cold-start rule-book fallbacks served",
        )
        self._invalidations = reg.counter(
            "repro_service_invalidations_total", "Vote-cache invalidations"
        )
        self._refreshes = reg.counter(
            "repro_service_refreshes_total", "Engine snapshot refreshes"
        )
        self._votes = reg.counter(
            "repro_service_votes_total", "Matched-carrier votes counted"
        )
        self._batches = reg.counter(
            "repro_service_batches_total",
            "Micro-batches served through the batch planner",
        )
        self._batch_savings = reg.counter(
            "repro_service_batch_dedup_savings_total",
            "Parameter votes deduplicated away by the batch planner",
        )
        self.request_latency = reg.histogram(
            "repro_service_request_latency_seconds",
            "Request latency",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.refresh_duration = reg.histogram(
            "repro_service_refresh_duration_seconds",
            "Snapshot refresh duration",
            buckets=DEFAULT_REFRESH_BUCKETS,
        )

    # -- recording ----------------------------------------------------------

    def record_request(self, latency_s: float, parameters: int) -> None:
        self._requests.inc()
        self._parameters.inc(parameters)
        self.request_latency.observe(latency_s)

    def record_requests_many(
        self, latencies_s: "Sequence[float]", parameters: int
    ) -> None:
        """Fold a batch of requests in one pass (the planner's scatter
        loop); counter totals and histogram counts/sums are exactly
        what per-request :meth:`record_request` calls would leave."""
        self._requests.inc(len(latencies_s))
        self._parameters.inc(parameters)
        observe = self.request_latency.observe
        for value in latencies_s:
            observe(value)

    def record_cache(self, hit: bool) -> None:
        self._cache.labels("hit" if hit else "miss").inc()

    def record_cache_many(self, hits: int, misses: int) -> None:
        """Fold a batch's cache dispositions in two increments.

        The batch planner's scatter loop aggregates instead of paying
        one label resolution per lookup; the final counter values are
        exactly what per-lookup :meth:`record_cache` calls would leave.
        """
        if hits:
            self._cache.labels("hit").inc(hits)
        if misses:
            self._cache.labels("miss").inc(misses)

    def record_votes(self, matched: float) -> None:
        self._votes.inc(matched)

    def record_fallback(self) -> None:
        self._fallbacks.inc()

    def record_batch(self, occurrences: int, distinct: int) -> None:
        """One planner batch: ``occurrences`` parameter votes asked
        for, ``distinct`` actually distinct (the difference is work the
        dedup saved)."""
        self._batches.inc()
        self._batch_savings.inc(max(0, occurrences - distinct))

    def record_invalidation(self, entries_dropped: int = 0) -> None:
        self._invalidations.inc()

    def record_refresh(self, duration_s: float) -> None:
        self._refreshes.inc()
        self.refresh_duration.observe(duration_s)

    # -- counter views ------------------------------------------------------

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def parameters_served(self) -> int:
        return int(self._parameters.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache.labels("hit").value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache.labels("miss").value)

    @property
    def fallbacks(self) -> int:
        return int(self._fallbacks.value)

    @property
    def invalidations(self) -> int:
        return int(self._invalidations.value)

    @property
    def refreshes(self) -> int:
        return int(self._refreshes.value)

    @property
    def votes(self) -> float:
        return self._votes.value

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def batch_dedup_savings(self) -> int:
        return int(self._batch_savings.value)

    # -- derived rates ------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def fallback_rate(self) -> float:
        served = self.parameters_served
        return self.fallbacks / served if served else 0.0

    @property
    def votes_per_request(self) -> float:
        requests = self.requests
        return self.votes / requests if requests else 0.0

    def as_dict(self) -> Dict:
        """A plain-dict export (for tests, the CLI and log lines)."""
        return {
            "requests": self.requests,
            "parameters_served": self.parameters_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "fallbacks": self.fallbacks,
            "fallback_rate": self.fallback_rate,
            "invalidations": self.invalidations,
            "refreshes": self.refreshes,
            "votes": self.votes,
            "votes_per_request": self.votes_per_request,
            "batches": self.batches,
            "batch_dedup_savings": self.batch_dedup_savings,
            "request_latency": self.request_latency.as_dict(),
            "refresh_duration": self.refresh_duration.as_dict(),
        }

    def to_prometheus_text(self) -> str:
        """The backing registry in Prometheus text exposition format."""
        return self.registry.to_prometheus_text()

    def summary(self) -> str:
        """A one-paragraph human rendering for the CLI."""
        d = self.as_dict()
        return (
            f"requests={d['requests']} parameters={d['parameters_served']} "
            f"cache_hit_rate={d['cache_hit_rate']:.1%} "
            f"fallbacks={d['fallbacks']} ({d['fallback_rate']:.1%}) "
            f"votes/request={d['votes_per_request']:.1f} "
            f"mean_latency={d['request_latency']['mean'] * 1e3:.3f}ms "
            f"refreshes={d['refreshes']}"
        )
