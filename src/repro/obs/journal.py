"""The engine-lifecycle journal: every generation tells its story.

The serving half of this system is deeply observable (traces, flight
recorder, SLOs), but *why engine generation N exists* used to be
unrecorded: nothing tied a hot swap to the drift report that triggered
it, or an incremental refit to the per-parameter path each touched
parameter took.  This module is the missing evidence trail — an
**append-only, fsync-safe JSONL journal** where every lifecycle
transition emits one structured record:

* ``fit`` — an engine learned its models (parameters, phase breakdown,
  snapshot fingerprint);
* ``refresh`` / ``full-refit`` / ``incremental-refit`` /
  ``incremental-add`` — the refresher changed a service's serving
  state, with the refit kind, per-parameter path (skip /
  selection-reuse / full), and the drift scores that triggered it;
* ``front-start`` / ``hot-swap`` — the front-end tier's generation
  counter (the one stamped on every HTTP response) moved;
* ``push`` / ``launch`` / ``rollback`` — the ops loop accepted a
  configuration change or undid one;
* ``artifact-save`` / ``artifact-load`` — an engine crossed the
  persistence boundary (schema version + fingerprints).

Records carry a ``parent_generation`` link, so the whole run replays
as a generation DAG: :func:`assemble_timeline` reconstructs it,
``repro timeline`` renders it (ASCII or JSON), and the front end's
``GET /debug/generations`` resolves any response's generation id back
to its journal record.

Durability contract:

* every :meth:`EngineJournal.record` is one ``os.write`` of a full
  line to an ``O_APPEND`` descriptor followed by ``os.fsync`` (unless
  ``fsync=False``), so concurrent writers interleave whole records and
  a crash loses at most the record being written;
* opening a journal **recovers torn tails**: a trailing partial line
  (a crash mid-write) is truncated away and appending resumes after
  the last intact record;
* :func:`read_journal` is tolerant — corrupt or torn lines are counted
  and skipped, never fatal.

Like metrics, tracing and the flight recorder, the journal is
process-global and disabled by default: :func:`record` costs one
``None`` check until :func:`configure` installs one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import tracing

__all__ = [
    "EngineJournal",
    "JournalScan",
    "Timeline",
    "TimelineNode",
    "active",
    "assemble_timeline",
    "configure",
    "disable",
    "get_journal",
    "mint_stream",
    "read_journal",
    "record",
]

#: Records kept in the in-memory tail for live introspection
#: (``GET /debug/generations`` reads this, not the file).
DEFAULT_TAIL = 4096

#: Events that move a generation counter (everything else annotates the
#: generation it happened under).
TRANSITION_EVENTS = frozenset(
    {"refresh", "full-refit", "hot-swap", "front-start"}
)

_STREAM_COUNTER = itertools.count(1)
_STREAM_LOCK = threading.Lock()


def mint_stream(prefix: str) -> str:
    """A process-unique stream id (``front-1``, ``svc-2``, ...).

    Streams separate parallel generation chains — two services each
    have their own generation 0/1/2 — so the timeline never welds
    unrelated chains together.  Minting is always cheap and never
    touches the journal, so lifecycle objects can mint eagerly.
    """
    with _STREAM_LOCK:
        return f"{prefix}-{next(_STREAM_COUNTER)}"


class EngineJournal:
    """Append-only, fsync-safe JSONL lifecycle journal."""

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        tail: int = DEFAULT_TAIL,
    ) -> None:
        self.path = path
        self.fsync = bool(fsync)
        self._lock = threading.RLock()
        self._tail: "deque[Dict[str, Any]]" = deque(maxlen=max(int(tail), 1))
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._seq = self._recover() + 1
        # O_APPEND makes each os.write land atomically at the current
        # end of file even with concurrent writers (the durability
        # tests open several journals onto one path).
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._records_counter = obs_metrics.counter(
            "repro_journal_records_total",
            "Engine-lifecycle journal records written, by event",
            labelnames=("event",),
        )

    # -- open-time recovery --------------------------------------------------

    def _recover(self) -> int:
        """Truncate a torn trailing record; return the last intact seq.

        A crash mid-``write`` can leave a final line without its
        newline (or with broken JSON).  Appending after it would weld
        two records into one unparseable line, so the torn tail is cut
        off before the journal reopens for writing.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return 0
        if size == 0:
            return 0
        last_seq = 0
        keep = 0
        with open(self.path, "rb") as handle:
            offset = 0
            for raw in handle:
                end = offset + len(raw)
                if not raw.endswith(b"\n"):
                    break  # torn tail: everything from `offset` goes
                try:
                    parsed = json.loads(raw)
                except (UnicodeDecodeError, ValueError):
                    # A corrupt *interior* line is preserved as-is (the
                    # reader skips it); only an unparseable tail is
                    # dangerous to append after, and a complete line is
                    # safe to follow regardless of its contents.
                    keep = end
                    offset = end
                    continue
                if isinstance(parsed, dict):
                    last_seq = max(last_seq, int(parsed.get("seq", 0) or 0))
                keep = end
                offset = end
        if keep < size:
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
            self._tail.clear()
        return last_seq

    # -- writing -------------------------------------------------------------

    def record(
        self,
        event: str,
        scope: str = "engine",
        stream: Optional[str] = None,
        generation: Optional[int] = None,
        parent_generation: Optional[int] = None,
        trigger: Optional[str] = None,
        drift: Optional[Dict[str, Any]] = None,
        refit: Optional[Dict[str, Any]] = None,
        fingerprints: Optional[Dict[str, Any]] = None,
        duration_s: Optional[float] = None,
        trace_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[Dict[str, Any]]:
        """Append one lifecycle record; returns the record written.

        ``trace_id`` defaults to the current tracing context, so a
        journal record always names the span that caused it when
        tracing is on.  Write failures are swallowed (a full disk must
        never take serving down) — the record is still kept in the
        in-memory tail.
        """
        if trace_id is None:
            context = tracing.current_context()
            if context is not None:
                trace_id = context[0]
        entry: Dict[str, Any] = {
            "seq": 0,  # assigned under the lock below
            "ts": time.time(),
            "event": event,
            "scope": scope,
        }
        if stream is not None:
            entry["stream"] = stream
        if generation is not None:
            entry["generation"] = int(generation)
        if parent_generation is not None:
            entry["parent_generation"] = int(parent_generation)
        if trigger is not None:
            entry["trigger"] = trigger
        if drift is not None:
            entry["drift"] = drift
        if refit is not None:
            entry["refit"] = refit
        if fingerprints:
            entry["fingerprints"] = fingerprints
        if duration_s is not None:
            entry["duration_s"] = round(float(duration_s), 6)
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if attrs:
            entry["attrs"] = attrs
        with self._lock:
            if self._closed:
                return None
            entry["seq"] = self._seq
            self._seq += 1
            line = json.dumps(entry, default=str, sort_keys=False) + "\n"
            try:
                os.write(self._fd, line.encode("utf-8"))
                if self.fsync:
                    os.fsync(self._fd)
            except OSError:  # pragma: no cover - disk trouble
                pass
            self._tail.append(entry)
        self._records_counter.labels(event=event).inc()
        return entry

    # -- introspection -------------------------------------------------------

    def tail(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent records written by this process, oldest
        first (bounded by the tail capacity, not the file)."""
        with self._lock:
            out = list(self._tail)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def digest(self) -> Dict[str, Any]:
        """A small fingerprint of the journal's current head — embedded
        in flight-recorder dumps so a post-mortem names the exact
        generation lineage that was serving."""
        with self._lock:
            last = self._tail[-1] if self._tail else None
            seq = self._seq - 1
        head_hash = None
        if last is not None:
            head_hash = hashlib.sha256(
                json.dumps(last, default=str).encode("utf-8")
            ).hexdigest()[:16]
        return {
            "path": self.path,
            "last_seq": seq,
            "last_event": last.get("event") if last else None,
            "generation": last.get("generation") if last else None,
            "stream": last.get("stream") if last else None,
            "head": head_hash,
        }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "EngineJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- tolerant reading ----------------------------------------------------------


@dataclass
class JournalScan:
    """What :func:`read_journal` found."""

    path: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Corrupt or torn lines skipped (a non-zero count after a crash is
    #: expected and harmless; mid-file corruption is worth alarming on).
    skipped: int = 0


def read_journal(path: str) -> JournalScan:
    """Read a journal file, skipping torn or corrupt lines."""
    scan = JournalScan(path=path)
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                scan.skipped += 1  # torn tail
                continue
            line = raw.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except (UnicodeDecodeError, ValueError):
                scan.skipped += 1
                continue
            if isinstance(parsed, dict) and "event" in parsed:
                scan.records.append(parsed)
            else:
                scan.skipped += 1
    return scan


# -- timeline assembly ---------------------------------------------------------


@dataclass
class TimelineNode:
    """One generation of one stream, with every record that touched it."""

    scope: str
    stream: str
    generation: int
    parent_generation: Optional[int] = None
    #: True for a generation-0 root synthesized because a transition
    #: referenced it without an explicit start record.
    implicit: bool = False
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.scope, self.stream, self.generation)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scope": self.scope,
            "stream": self.stream,
            "generation": self.generation,
            "parent_generation": self.parent_generation,
            "implicit": self.implicit,
            "events": self.events,
        }


@dataclass
class Timeline:
    """The generation DAG reconstructed from journal records."""

    #: ``{(scope, stream): {generation: TimelineNode}}``
    streams: Dict[Tuple[str, str], Dict[int, TimelineNode]] = field(
        default_factory=dict
    )
    #: Records with no generation at all (fits, artifact events, ops
    #: events outside any serving generation), in journal order.
    loose: List[Dict[str, Any]] = field(default_factory=list)
    #: ``(scope, stream, parent_generation)`` referenced by a transition
    #: but absent from the journal — the "gaps" the CI smoke forbids.
    missing_parents: List[Tuple[str, str, int]] = field(default_factory=list)
    total_records: int = 0

    @property
    def complete(self) -> bool:
        return not self.missing_parents

    def node(
        self, scope: str, stream: str, generation: int
    ) -> Optional[TimelineNode]:
        return self.streams.get((scope, stream), {}).get(generation)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_records": self.total_records,
            "complete": self.complete,
            "missing_parents": [
                {"scope": s, "stream": st, "generation": g}
                for s, st, g in self.missing_parents
            ],
            "streams": [
                {
                    "scope": scope,
                    "stream": stream,
                    "generations": [
                        nodes[g].to_dict() for g in sorted(nodes)
                    ],
                }
                for (scope, stream), nodes in sorted(self.streams.items())
            ],
            "loose": self.loose,
        }

    def render(self) -> str:
        """ASCII rendering of the generation DAG, one stream per block."""
        lines: List[str] = []
        for (scope, stream), nodes in sorted(self.streams.items()):
            lines.append(f"{scope} [{stream}]")
            for generation in sorted(nodes):
                node = nodes[generation]
                arrow = (
                    "──"
                    if node.parent_generation is None
                    else f"◀─ gen {node.parent_generation}"
                )
                head = f"  gen {node.generation} {arrow}"
                if node.implicit:
                    lines.append(f"{head} (initial)")
                for entry in node.events:
                    lines.append(f"{head} {_describe(entry)}")
                    head = " " * len(f"  gen {node.generation} ") + "·"
            lines.append("")
        if self.loose:
            lines.append("ungenerationed events")
            for entry in self.loose:
                lines.append(f"  {_describe(entry)}")
            lines.append("")
        if self.missing_parents:
            lines.append("MISSING PARENTS")
            for scope, stream, generation in self.missing_parents:
                lines.append(f"  {scope} [{stream}] gen {generation}")
        return "\n".join(lines).rstrip() + "\n"


def _describe(entry: Dict[str, Any]) -> str:
    bits = [entry.get("event", "?")]
    if entry.get("trigger"):
        bits.append(f"trigger={entry['trigger']}")
    drift = entry.get("drift")
    if drift:
        bits.append(
            f"drift={drift.get('verdict')}(psi={drift.get('psi_max', 0):.3f})"
        )
    refit = entry.get("refit")
    if refit:
        kind = refit.get("kind")
        if kind:
            bits.append(f"refit={kind}")
        refitted = refit.get("refitted") or {}
        if refitted:
            bits.append(f"full={len(refitted)}")
        if refit.get("reused_selection"):
            bits.append(f"reused={len(refit['reused_selection'])}")
        if refit.get("skipped"):
            bits.append(f"skipped={len(refit['skipped'])}")
    if entry.get("duration_s") is not None:
        bits.append(f"{entry['duration_s']:.3f}s")
    fingerprints = entry.get("fingerprints") or {}
    if fingerprints.get("snapshot"):
        bits.append(f"snap={str(fingerprints['snapshot'])[:8]}")
    if entry.get("trace_id"):
        bits.append(f"trace={str(entry['trace_id'])[:8]}")
    attrs = entry.get("attrs") or {}
    for key in ("parameters", "carrier", "outcome", "schema_version"):
        if key in attrs:
            bits.append(f"{key}={attrs[key]}")
    return "  ".join(str(b) for b in bits)


def assemble_timeline(records: Iterable[Dict[str, Any]]) -> Timeline:
    """Reconstruct the generation DAG from journal records.

    Transition records (``refresh``, ``hot-swap``, ...) create nodes
    and parent edges; in-place records (``incremental-refit``,
    ``push``, ...) attach to the generation they ran under.  A
    transition whose parent generation has no record of its own is a
    **gap** — except generation 0, the construction-time state, which
    is synthesized as an implicit root (services journal nothing at
    construction; their first refresh references parent 0).
    """
    timeline = Timeline()
    for entry in records:
        timeline.total_records += 1
        generation = entry.get("generation")
        if generation is None:
            timeline.loose.append(entry)
            continue
        scope = str(entry.get("scope", "engine"))
        stream = str(entry.get("stream", "-"))
        nodes = timeline.streams.setdefault((scope, stream), {})
        node = nodes.get(int(generation))
        if node is None:
            node = TimelineNode(
                scope=scope, stream=stream, generation=int(generation)
            )
            nodes[node.generation] = node
        node.events.append(entry)
        parent = entry.get("parent_generation")
        if (
            parent is not None
            and int(parent) != node.generation
            and entry.get("event") in TRANSITION_EVENTS | {"incremental-refit"}
        ):
            node.parent_generation = int(parent)
    # Resolve parent links after every node exists.
    for (scope, stream), nodes in timeline.streams.items():
        for node in list(nodes.values()):
            parent = node.parent_generation
            if parent is None or parent in nodes:
                continue
            if parent == 0:
                root = TimelineNode(
                    scope=scope, stream=stream, generation=0, implicit=True
                )
                nodes[0] = root
            else:
                timeline.missing_parents.append((scope, stream, parent))
    timeline.missing_parents.sort()
    return timeline


# -- the process-global journal ------------------------------------------------

_JOURNAL: Optional[EngineJournal] = None


def configure(
    path: str, fsync: bool = True, tail: int = DEFAULT_TAIL
) -> EngineJournal:
    """Install a journal as the process global and return it."""
    global _JOURNAL
    if _JOURNAL is not None:
        _JOURNAL.close()
    _JOURNAL = EngineJournal(path, fsync=fsync, tail=tail)
    return _JOURNAL


def disable() -> None:
    global _JOURNAL
    if _JOURNAL is not None:
        _JOURNAL.close()
    _JOURNAL = None


def get_journal() -> Optional[EngineJournal]:
    return _JOURNAL


def active() -> bool:
    return _JOURNAL is not None


def record(event: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Append to the global journal (no-op while disabled)."""
    journal = _JOURNAL
    if journal is None:
        return None
    return journal.record(event, **fields)
