"""Black-box flight recorder: always-on ring of recent request digests.

An aircraft flight recorder is cheap to write and only read after
something goes wrong.  This is the serving-path equivalent: every
request that crosses the front end appends one small
:class:`RequestDigest` (trace id, market, shard, generation, status,
latency, shed reason) to a bounded ring — a single GIL-atomic deque
append, no lock on the hot path — and when something breaks, the
recorder **dumps** a snapshot to disk:

* every digest still in the ring (JSONL, newest last),
* the spans currently in flight (:func:`repro.obs.tracing.active_spans`),
* a metrics-registry snapshot, when one is enabled.

Dumps are triggered by the SLO engine on a rule breach
(:mod:`repro.obs.slo`), by the admission controller on a shed burst
(:mod:`repro.serve.front.admission`), and on SIGTERM/atexit via the
tracing exit-flush hook — so a post-mortem always has the last N
requests that led up to the event, even though per-request logging was
never enabled.

Like tracing and metrics, the recorder is process-global and disabled
by default: :func:`record` is a no-op until :func:`configure` installs
one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import tracing

__all__ = [
    "FlightRecorder",
    "RequestDigest",
    "configure",
    "disable",
    "get_recorder",
    "record",
]

#: Default ring capacity: enough for a few seconds of storm traffic
#: while staying trivially small (~100 bytes per digest).
DEFAULT_CAPACITY = 4096

#: Minimum spacing between dumps with the same reason, so a breach that
#: persists across SLO evaluations does not fill the disk.
DEFAULT_COOLDOWN_S = 5.0


class RequestDigest:
    """One request's black-box record — small enough to always keep."""

    __slots__ = (
        "trace_id",
        "market",
        "shard",
        "generation",
        "status",
        "latency_ms",
        "shed_reason",
        "ts",
    )

    def __init__(
        self,
        trace_id: Optional[str],
        market: Optional[str],
        shard: Optional[int],
        generation: Optional[int],
        status: int,
        latency_ms: float,
        shed_reason: Optional[str] = None,
        ts: Optional[float] = None,
    ):
        self.trace_id = trace_id
        self.market = market
        self.shard = shard
        self.generation = generation
        self.status = int(status)
        self.latency_ms = float(latency_ms)
        self.shed_reason = shed_reason
        self.ts = time.time() if ts is None else float(ts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "trace_id": self.trace_id,
            "market": self.market,
            "shard": self.shard,
            "generation": self.generation,
            "status": self.status,
            "latency_ms": self.latency_ms,
            "shed_reason": self.shed_reason,
        }


class FlightRecorder:
    """Lock-cheap ring buffer of digests with triggered black-box dumps.

    ``record`` is the hot path: build a digest and ``deque.append`` it
    (atomic under the GIL, bounded by ``maxlen``) — no lock, no I/O.
    ``dump`` is the cold path and takes the lock only to snapshot the
    ring, rate-limit per reason, and write the file.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: Optional[str] = None,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
    ):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = int(capacity)
        self.dump_dir = dump_dir or os.path.join(".", "flight-dumps")
        self.cooldown_s = float(cooldown_s)
        self._ring: "deque[RequestDigest]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._dump_seq = 0
        self._last_dump_ts: Dict[str, float] = {}
        self._dumps: List[str] = []
        self.dump_on_exit = False
        self._exit_dumped = False
        self._records = obs_metrics.counter(
            "repro_flight_records_total", "Request digests recorded"
        )
        self._dumps_counter = obs_metrics.counter(
            "repro_flight_dumps_total",
            "Flight-recorder dumps written, by trigger",
            labelnames=("reason",),
        )

    # -- hot path -----------------------------------------------------------

    def record(self, digest: RequestDigest) -> None:
        self._ring.append(digest)
        self._records.inc()

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def digests(self, limit: Optional[int] = None) -> List[RequestDigest]:
        """Newest-last snapshot of the ring (optionally the last N)."""
        with self._lock:
            out = list(self._ring)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded_total": int(self._records.value)
                if hasattr(self._records, "value")
                else None,
                "in_ring": len(self._ring),
                "dumps_written": self._dump_seq,
                "dump_files": list(self._dumps),
                "dump_dir": self.dump_dir,
            }

    # -- cold path: dumps ----------------------------------------------------

    def dump(self, reason: str, force: bool = False) -> Optional[str]:
        """Write a black-box snapshot; returns the file path.

        Rate-limited per reason (``cooldown_s``) unless ``force``;
        returns ``None`` when suppressed or the ring is empty.  The file
        is JSONL: a ``meta`` record first (reason, active spans, metrics
        snapshot), then one record per digest, oldest first.
        """
        now = time.time()
        with self._lock:
            if not self._ring:
                return None
            last = self._last_dump_ts.get(reason, 0.0)
            if not force and now - last < self.cooldown_s:
                return None
            self._last_dump_ts[reason] = now
            digests = list(self._ring)
            self._dump_seq += 1
            seq = self._dump_seq
        active = [s.to_dict() for s in tracing.active_spans()]
        registry = obs_metrics.get_registry()
        metrics_snapshot = registry.to_dict() if registry is not None else {}
        meta = {
            "record": "meta",
            "reason": reason,
            "ts": now,
            "pid": os.getpid(),
            "digest_count": len(digests),
            "active_spans": active,
            "metrics": metrics_snapshot,
        }
        # Post-mortems need to know *which engine generation* was
        # serving — embed the lifecycle journal's head digest when one
        # is active (imported lazily: journal imports this package).
        from repro.obs import journal as obs_journal

        active_journal = obs_journal.get_journal()
        if active_journal is not None:
            meta["journal"] = active_journal.digest()
        os.makedirs(self.dump_dir, exist_ok=True)
        path = os.path.join(self.dump_dir, f"flight-{seq:04d}-{reason}.jsonl")
        try:
            with open(path, "w") as handle:
                handle.write(json.dumps(meta, default=str) + "\n")
                for digest in digests:
                    handle.write(json.dumps(digest.to_dict(), default=str) + "\n")
        except OSError:  # pragma: no cover - disk trouble at dump time
            return None
        with self._lock:
            self._dumps.append(path)
        self._dumps_counter.labels(reason).inc()
        return path

    # -- exit-path integration ----------------------------------------------

    def arm_exit_dump(self) -> None:
        """Dump once when the process exits (atexit or SIGTERM/SIGINT).

        Piggybacks on the tracing exit-flush chain: the recorder exposes
        ``flush()``, so :func:`repro.obs.tracing.install_exit_flush`
        treats it like an exporter.
        """
        self.dump_on_exit = True
        self._exit_dumped = False
        tracing.install_exit_flush(self)

    def disarm_exit_dump(self) -> None:
        self.dump_on_exit = False
        tracing.uninstall_exit_flush(self)

    def flush(self) -> None:
        """The exit-flush hook: one forced dump, idempotent."""
        if not self.dump_on_exit or self._exit_dumped:
            return
        self._exit_dumped = True
        self.dump("exit", force=True)


#: The process-global recorder; ``None`` means recording is disabled.
_RECORDER: Optional[FlightRecorder] = None


def configure(
    capacity: int = DEFAULT_CAPACITY,
    dump_dir: Optional[str] = None,
    cooldown_s: float = DEFAULT_COOLDOWN_S,
) -> FlightRecorder:
    """Install a recorder as the process global and return it."""
    global _RECORDER
    _RECORDER = FlightRecorder(capacity, dump_dir, cooldown_s)
    return _RECORDER


def disable() -> None:
    global _RECORDER
    if _RECORDER is not None:
        _RECORDER.disarm_exit_dump()
    _RECORDER = None


def get_recorder() -> Optional[FlightRecorder]:
    return _RECORDER


def record(digest: RequestDigest) -> None:
    """Append to the global recorder (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.record(digest)
