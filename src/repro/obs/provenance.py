"""Recommendation provenance: *why* a value was recommended.

Section 5 of the paper ("Lessons learned") reports that engineers act
on recommendations only when they can check the evidence — which
attributes the chi-square tests selected, how strong the vote was.
This module defines the typed provenance records every recommendation
entry point can attach to its :class:`~repro.core.recommendation.
RecommendResult` when the request sets ``explain=True``:

* :class:`AttributeDependence` — one chi-square-selected attribute with
  its test statistic, achieved p-value and Cramér's V,
* :class:`ParameterExplanation` — one parameter's full story: the
  dependent attributes, the target's values on them, the vote
  distribution with support and matched-carrier count, the serving
  disposition (cache hit/miss, cold-start fallback reason),
* :class:`ResultExplanation` — the per-request envelope.

All records are plain dataclasses with ``to_dict``/``from_dict`` (JSON
audit trails: the push controller's ChangeLog, SmartLaunch launch
records) and ``lines()`` human renderings (the ``repro explain`` CLI).
This module deliberately imports nothing from the engine layers so the
core, serving and ops layers can all depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class AttributeDependence:
    """One dependent attribute selected by the chi-square tests."""

    name: str
    column: int
    statistic: float
    dof: int
    #: Achieved p-value of the test (survival of the chi-square CDF at
    #: the statistic) — not the selection threshold.
    p_value: float
    #: The significance threshold the selection ran at (0.01 paper).
    significance: float
    cramers_v: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "column": self.column,
            "statistic": self.statistic,
            "dof": self.dof,
            "p_value": self.p_value,
            "significance": self.significance,
            "cramers_v": self.cramers_v,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttributeDependence":
        return cls(
            name=payload["name"],
            column=int(payload["column"]),
            statistic=float(payload["statistic"]),
            dof=int(payload["dof"]),
            p_value=float(payload["p_value"]),
            significance=float(payload["significance"]),
            cramers_v=float(payload["cramers_v"]),
        )


@dataclass(frozen=True)
class VoteShare:
    """One value's slice of the electorate."""

    value: Any
    weight: float
    share: float

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "weight": self.weight, "share": self.share}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VoteShare":
        return cls(
            value=payload["value"],
            weight=float(payload["weight"]),
            share=float(payload["share"]),
        )


@dataclass(frozen=True)
class ParameterExplanation:
    """The full evidence behind one parameter recommendation."""

    parameter: str
    value: Any
    support: float
    matched: float
    confident: bool
    scope: str
    #: Chi-square-selected attributes, strongest dependency first.
    dependencies: Tuple[AttributeDependence, ...] = ()
    #: The target's values on the dependent attributes.
    attribute_values: Tuple[Tuple[str, Any], ...] = ()
    #: The vote distribution (winner first), when captured.
    votes: Tuple[VoteShare, ...] = ()
    #: Local voters available to the request (None = global vote).
    neighborhood_size: Optional[int] = None
    #: Serving-cache disposition: "hit", "miss" or None (no cache layer).
    cache: Optional[str] = None
    #: Why the vote fell back (cold start / unfitted), when it did.
    fallback_reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "support": self.support,
            "matched": self.matched,
            "confident": self.confident,
            "scope": self.scope,
            "dependencies": [d.to_dict() for d in self.dependencies],
            "attribute_values": [list(pair) for pair in self.attribute_values],
            "votes": [v.to_dict() for v in self.votes],
            "neighborhood_size": self.neighborhood_size,
            "cache": self.cache,
            "fallback_reason": self.fallback_reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ParameterExplanation":
        return cls(
            parameter=payload["parameter"],
            value=payload["value"],
            support=float(payload["support"]),
            matched=float(payload["matched"]),
            confident=bool(payload["confident"]),
            scope=payload["scope"],
            dependencies=tuple(
                AttributeDependence.from_dict(d)
                for d in payload.get("dependencies", ())
            ),
            attribute_values=tuple(
                (name, value)
                for name, value in payload.get("attribute_values", ())
            ),
            votes=tuple(
                VoteShare.from_dict(v) for v in payload.get("votes", ())
            ),
            neighborhood_size=payload.get("neighborhood_size"),
            cache=payload.get("cache"),
            fallback_reason=payload.get("fallback_reason"),
        )

    def lines(self) -> List[str]:
        """Human rendering, one parameter block."""
        marker = "confident" if self.confident else "below threshold"
        out = [
            f"{self.parameter} = {self.value!r} "
            f"[{self.scope}, {self.support:.0%} support of "
            f"{self.matched:g} matching carriers, {marker}]"
        ]
        if self.dependencies:
            out.append("  depends on (chi-square):")
            values = dict(self.attribute_values)
            for dep in self.dependencies:
                shown = values.get(dep.name, "?")
                out.append(
                    f"    {dep.name}={shown} "
                    f"(statistic={dep.statistic:.1f}, p={dep.p_value:.3g}, "
                    f"V={dep.cramers_v:.2f})"
                )
        elif self.scope != "rulebook":
            out.append("  depends on: (no dependent attributes found)")
        if self.votes:
            rendered = ", ".join(
                f"{v.value!r}: {v.weight:g} ({v.share:.0%})"
                for v in self.votes
            )
            out.append(f"  votes: {rendered}")
        if self.neighborhood_size is not None:
            out.append(f"  local voters available: {self.neighborhood_size}")
        if self.cache is not None:
            out.append(f"  cache: {self.cache}")
        if self.fallback_reason is not None:
            out.append(f"  fallback: {self.fallback_reason}")
        return out


@dataclass
class ResultExplanation:
    """Provenance for one full recommendation result."""

    target: str
    source: str
    parameters: Dict[str, ParameterExplanation] = field(default_factory=dict)
    trace_id: Optional[str] = None
    #: The engine's lifecycle-journal stream id (``engine-N``) — links
    #: an explanation to the fit/refit records that produced the models
    #: it describes (``repro timeline``).
    lineage: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "source": self.source,
            "trace_id": self.trace_id,
            "lineage": self.lineage,
            "parameters": {
                name: explanation.to_dict()
                for name, explanation in sorted(self.parameters.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultExplanation":
        return cls(
            target=payload["target"],
            source=payload["source"],
            trace_id=payload.get("trace_id"),
            lineage=payload.get("lineage"),
            parameters={
                name: ParameterExplanation.from_dict(entry)
                for name, entry in payload.get("parameters", {}).items()
            },
        )

    def lines(self) -> List[str]:
        out = [f"explanation for {self.target} (source={self.source}):"]
        for _, explanation in sorted(self.parameters.items()):
            out.extend("  " + line for line in explanation.lines())
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())
