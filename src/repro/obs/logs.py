"""Structured logging: a ``key=value`` formatter and one-call setup.

The repo's layers log through standard :mod:`logging` loggers named
after their modules (``repro.serve.refresh``, ``repro.ops.smartlaunch``
...).  :func:`configure_logging` wires the root ``repro`` logger to
stderr with :class:`KeyValueFormatter`, which renders records as

    ts=2021-08-23T16:04:05 level=info logger=repro.serve.refresh msg="full refit" duration_s=1.93

so operators can grep one line per event without a log-parsing stack.
The CLI exposes this via ``--log-level`` / ``-v``.
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Optional

__all__ = ["KeyValueFormatter", "configure_logging", "get_logger"]

#: Attributes every LogRecord carries; anything else was passed via
#: ``extra=`` and gets rendered as an additional key=value pair.
_STANDARD_ATTRS = frozenset(
    (
        "name",
        "msg",
        "args",
        "levelname",
        "levelno",
        "pathname",
        "filename",
        "module",
        "exc_info",
        "exc_text",
        "stack_info",
        "lineno",
        "funcName",
        "created",
        "msecs",
        "relativeCreated",
        "thread",
        "threadName",
        "processName",
        "process",
        "message",
        "asctime",
        "taskName",
    )
)


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or any(ch in text for ch in (" ", '"', "=")):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


class KeyValueFormatter(logging.Formatter):
    """Renders records as ``ts=... level=... logger=... msg=... k=v``."""

    def format(self, record: logging.LogRecord) -> str:
        ts = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
        )
        parts = [
            f"ts={ts}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={_quote(record.getMessage())}",
        ]
        for key in sorted(record.__dict__):
            if key in _STANDARD_ATTRS or key.startswith("_"):
                continue
            parts.append(f"{key}={_quote(record.__dict__[key])}")
        if record.exc_info:
            parts.append(f"exc={_quote(self.formatException(record.exc_info))}")
        return " ".join(parts)


def configure_logging(
    level: str = "warning", stream=None, logger_name: str = "repro"
) -> logging.Logger:
    """Point the ``repro`` logger hierarchy at a key=value stream handler.

    Idempotent: re-invoking replaces the previously installed handler
    (so ``-v`` and ``--log-level`` can be applied repeatedly in tests)
    instead of stacking duplicates.
    """
    resolved = logging.getLevelName(level.upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger(logger_name)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    handler.set_name("repro-obs-keyvalue")
    for existing in list(logger.handlers):
        if existing.get_name() == handler.get_name():
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """Fetch a namespaced logger (thin alias kept for discoverability)."""
    return logging.getLogger(name)
