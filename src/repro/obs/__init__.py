"""repro.obs — unified observability for the Auric reproduction.

Three pillars, all zero-cost when disabled:

* :mod:`repro.obs.metrics` — a process-wide metrics registry
  (counters, gauges, fixed-bucket histograms) with Prometheus-text and
  JSON exposition,
* :mod:`repro.obs.tracing` — nested wall-clock spans with context
  propagation across the :mod:`repro.parallel` process pool,
* :mod:`repro.obs.provenance` — typed "why this value" records
  attached to recommendation results and audit history.

Plus :mod:`repro.obs.logs`, a ``key=value`` structured-logging setup
shared by the CLI and the serving/ops layers, and the health layer that
turns the raw instruments into operational signal:

* :mod:`repro.obs.health` — fit-time distribution baselines scored
  against live snapshots (PSI + chi-square drift detection) and the
  aggregated :class:`HealthReport` behind ``repro health``,
* :mod:`repro.obs.slo` — declarative service-level objectives over
  existing registry instruments with error-budget accounting,
* :mod:`repro.obs.profiler` — a sampling wall-clock profiler emitting
  flamegraph-ready collapsed stacks with span attribution,
* :mod:`repro.obs.dashboard` — a static-HTML health snapshot,
* :mod:`repro.obs.flight` — an always-on black-box flight recorder of
  recent request digests, dumped on SLO breach / shed burst / SIGTERM,
* :mod:`repro.obs.journal` — an append-only, fsync-safe JSONL
  engine-lifecycle journal: every generation transition (fit, refresh,
  incremental refit, hot swap, push, rollback) records its trigger,
  drift scores, refit kind, fingerprints and parent generation, and
  ``repro timeline`` replays the generation DAG.
"""

from repro.obs.logs import KeyValueFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_REFRESH_BUCKETS,
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullInstrument,
    NullRegistry,
    ServiceMetrics,
    counter,
    disable as disable_metrics,
    enable as enable_metrics,
    enabled as metrics_enabled,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from repro.obs.provenance import (
    AttributeDependence,
    ParameterExplanation,
    ResultExplanation,
    VoteShare,
)
from repro.obs.tracing import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    TraceTree,
    Tracer,
    active_spans,
    assemble_trace,
    collect,
    configure as configure_tracing,
    current_context,
    disable as disable_tracing,
    flush_exit_exporters,
    format_traceparent,
    get_tracer,
    ingest,
    install_exit_flush,
    parse_traceparent,
    record_span,
    span,
    span_from_context,
    uninstall_exit_flush,
    use_context,
    active as tracing_active,
)
from repro.obs.flight import (
    FlightRecorder,
    RequestDigest,
    configure as configure_flight,
    disable as disable_flight,
    get_recorder as get_flight_recorder,
    record as record_flight,
)
from repro.obs.journal import (
    EngineJournal,
    JournalScan,
    Timeline,
    TimelineNode,
    active as journal_active,
    assemble_timeline,
    configure as configure_journal,
    disable as disable_journal,
    get_journal,
    mint_stream,
    read_journal,
    record as record_journal,
)

# The health layer builds on metrics/tracing/logs above, so these
# imports must stay below them (they read the partially-initialized
# package during import).
from repro.obs.dashboard import render_dashboard
from repro.obs.health import (
    AttributeDrift,
    DriftBaseline,
    DriftDetector,
    DriftReport,
    DriftThresholds,
    DriftWindow,
    HealthReport,
    chi_square_drift,
    population_stability_index,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.slo import (
    ErrorBudget,
    SLOEngine,
    SLOReport,
    SLOResult,
    SLORule,
    default_service_slos,
)

__all__ = [
    "AttributeDependence",
    "AttributeDrift",
    "BucketHistogram",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_REFRESH_BUCKETS",
    "DriftBaseline",
    "DriftDetector",
    "DriftReport",
    "DriftThresholds",
    "DriftWindow",
    "EngineJournal",
    "ErrorBudget",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "LatencyHistogram",
    "RequestDigest",
    "SLOEngine",
    "SLOReport",
    "SLOResult",
    "SLORule",
    "SamplingProfiler",
    "ServiceMetrics",
    "Histogram",
    "JournalScan",
    "JsonlExporter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
    "NullRegistry",
    "ParameterExplanation",
    "ResultExplanation",
    "RingBufferExporter",
    "Span",
    "Timeline",
    "TimelineNode",
    "TraceTree",
    "Tracer",
    "VoteShare",
    "active_spans",
    "assemble_timeline",
    "assemble_trace",
    "chi_square_drift",
    "collect",
    "configure_flight",
    "configure_journal",
    "configure_logging",
    "configure_tracing",
    "counter",
    "current_context",
    "default_service_slos",
    "disable_flight",
    "disable_journal",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "flush_exit_exporters",
    "format_traceparent",
    "gauge",
    "get_flight_recorder",
    "get_journal",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "ingest",
    "install_exit_flush",
    "journal_active",
    "metrics_enabled",
    "mint_stream",
    "parse_traceparent",
    "population_stability_index",
    "read_journal",
    "record_flight",
    "record_journal",
    "record_span",
    "render_dashboard",
    "set_registry",
    "span",
    "span_from_context",
    "tracing_active",
    "uninstall_exit_flush",
    "use_context",
]
