"""repro.obs — unified observability for the Auric reproduction.

Three pillars, all zero-cost when disabled:

* :mod:`repro.obs.metrics` — a process-wide metrics registry
  (counters, gauges, fixed-bucket histograms) with Prometheus-text and
  JSON exposition,
* :mod:`repro.obs.tracing` — nested wall-clock spans with context
  propagation across the :mod:`repro.parallel` process pool,
* :mod:`repro.obs.provenance` — typed "why this value" records
  attached to recommendation results and audit history.

Plus :mod:`repro.obs.logs`, a ``key=value`` structured-logging setup
shared by the CLI and the serving/ops layers.
"""

from repro.obs.logs import KeyValueFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullInstrument,
    NullRegistry,
    counter,
    disable as disable_metrics,
    enable as enable_metrics,
    enabled as metrics_enabled,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from repro.obs.provenance import (
    AttributeDependence,
    ParameterExplanation,
    ResultExplanation,
    VoteShare,
)
from repro.obs.tracing import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    Tracer,
    collect,
    configure as configure_tracing,
    current_context,
    disable as disable_tracing,
    get_tracer,
    ingest,
    span,
    span_from_context,
    active as tracing_active,
)

__all__ = [
    "AttributeDependence",
    "BucketHistogram",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
    "NullRegistry",
    "ParameterExplanation",
    "ResultExplanation",
    "RingBufferExporter",
    "Span",
    "Tracer",
    "VoteShare",
    "collect",
    "configure_logging",
    "configure_tracing",
    "counter",
    "current_context",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "ingest",
    "metrics_enabled",
    "set_registry",
    "span",
    "span_from_context",
    "tracing_active",
]
