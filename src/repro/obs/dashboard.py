"""A static-HTML snapshot of service health.

``render_dashboard`` turns a :class:`repro.obs.health.HealthReport`
(plus, optionally, the metrics registry it was computed from) into one
self-contained HTML page — no JavaScript, no external assets — suitable
for a CI artifact or a cron-driven ops page.  ``repro dashboard``
writes it to disk.
"""

from __future__ import annotations

import html
from typing import List, Optional

from repro.obs.health import HealthReport

__all__ = ["render_dashboard"]

_STATUS_COLORS = {
    "healthy": "#2e7d32",
    "ok": "#2e7d32",
    "stationary": "#2e7d32",
    "no_data": "#607d8b",
    "insufficient": "#607d8b",
    "degraded": "#ef6c00",
    "drifting": "#ef6c00",
    "moderate": "#ef6c00",
    "failing": "#c62828",
    "stale": "#c62828",
    "major": "#c62828",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       color: #212121; max-width: 70rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.9rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #e0e0e0; }
th { background: #fafafa; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
.badge { display: inline-block; padding: 0.1rem 0.5rem; border-radius:
         0.75rem; color: #fff; font-size: 0.8rem; }
pre { background: #fafafa; border: 1px solid #e0e0e0; padding: 0.75rem;
      overflow-x: auto; font-size: 0.8rem; }
"""


def _badge(status: str) -> str:
    color = _STATUS_COLORS.get(status, "#607d8b")
    return (
        f'<span class="badge" style="background:{color}">'
        f"{html.escape(status)}</span>"
    )


def render_dashboard(
    report: HealthReport,
    registry=None,
    title: str = "repro health",
    journal_records: Optional[List[dict]] = None,
) -> str:
    """One self-contained HTML health page."""
    parts: List[str] = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)} {_badge(report.status)}</h1>",
        f"<p>exit code {report.exit_code}</p>",
    ]

    if report.drift is not None:
        drift = report.drift
        parts.append(
            f"<h2>Drift {_badge(drift.verdict)}"
            f" <small>psi_max={drift.psi_max:.4f}</small></h2>"
        )
        parts.append(
            "<table><tr><th>attribute</th><th>psi</th><th>p-value</th>"
            "<th>n</th><th>verdict</th></tr>"
        )
        for d in drift.attributes:
            parts.append(
                f"<tr><td>{html.escape(d.attribute)}</td>"
                f'<td class="num">{d.psi:.4f}</td>'
                f'<td class="num">{d.p_value:.4f}</td>'
                f'<td class="num">{d.n_actual}</td>'
                f"<td>{_badge(d.verdict)}</td></tr>"
            )
        parts.append("</table>")

    if report.slo is not None:
        slo = report.slo
        parts.append(
            f"<h2>SLOs {_badge(getattr(slo, 'status', 'ok'))}</h2>"
        )
        parts.append(
            "<table><tr><th>rule</th><th>status</th><th>value</th>"
            "<th>objective</th><th>events</th><th>budget used</th></tr>"
        )
        for result in getattr(slo, "results", []):
            value = "–" if result.value is None else f"{result.value:.4f}"
            parts.append(
                f"<tr><td>{html.escape(result.rule.name)}</td>"
                f"<td>{_badge(result.status)}</td>"
                f'<td class="num">{value}</td>'
                f'<td class="num">{html.escape(result.rule.comparator)}'
                f"{result.rule.objective:g}</td>"
                f'<td class="num">{result.events}</td>'
                f'<td class="num">{result.budget_used:.2f}</td></tr>'
            )
        parts.append("</table>")

    if report.profile:
        parts.append("<h2>Top profile stacks</h2>")
        parts.append(
            "<table><tr><th>samples</th><th>collapsed stack</th></tr>"
        )
        for stack, samples in list(report.profile)[:15]:
            parts.append(
                f'<tr><td class="num">{samples}</td>'
                f"<td><code>{html.escape(stack)}</code></td></tr>"
            )
        parts.append("</table>")

    if journal_records:
        from repro.obs.journal import assemble_timeline

        timeline = assemble_timeline(journal_records)
        gaps = len(timeline.missing_parents)
        parts.append(
            "<h2>Engine lifecycle "
            f"{_badge('ok' if timeline.complete else 'degraded')}"
            f" <small>{timeline.total_records} records"
            + (f", {gaps} missing parent link(s)" if gaps else "")
            + "</small></h2>"
        )
        parts.append(f"<pre>{html.escape(timeline.render())}</pre>")
        parts.append(
            "<table><tr><th>seq</th><th>event</th><th>scope</th>"
            "<th>gen</th><th>trigger</th><th>duration</th></tr>"
        )
        for entry in journal_records[-15:]:
            duration = entry.get("duration_s")
            parts.append(
                f'<tr><td class="num">{entry.get("seq", "")}</td>'
                f"<td>{html.escape(str(entry.get('event', '')))}</td>"
                f"<td>{html.escape(str(entry.get('scope', '')))}</td>"
                f'<td class="num">{entry.get("generation", "")}</td>'
                f"<td>{html.escape(str(entry.get('trigger') or ''))}</td>"
                f'<td class="num">'
                + ("" if duration is None else f"{duration:.3f}s")
                + "</td></tr>"
            )
        parts.append("</table>")

    for note in report.notes:
        parts.append(f"<p><em>{html.escape(note)}</em></p>")

    if registry is not None:
        text = registry.to_prometheus_text()
        if text:
            parts.append("<h2>Metrics</h2>")
            parts.append(f"<pre>{html.escape(text)}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts)
