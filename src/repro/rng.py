"""Deterministic random number helpers.

Everything stochastic in the library flows through a seeded
:class:`numpy.random.Generator` so that experiments are exactly
reproducible.  ``derive`` produces independent child generators from a
parent seed and a string label, letting distinct subsystems (topology,
tuning, noise, EMS failures, ...) draw from decorrelated streams without
the order of calls in one subsystem perturbing another.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20210823  # SIGCOMM'21 started August 23, 2021.


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(seed)


def derive(seed: int, label: str) -> np.random.Generator:
    """Create a generator deterministically derived from ``seed`` and ``label``.

    The derivation hashes the label so that adding a new labelled stream
    never shifts the values drawn by existing streams.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(child_seed)


def derive_seed(seed: int, label: str) -> int:
    """Derive a plain integer seed (for APIs that take seeds, not generators)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
