"""Configuration change history.

Production configuration management keeps an auditable record of every
change: SmartLaunch pushes, rollbacks, manual engineer edits.  The
paper's future-work section (§6) wants exactly this record — "the
temporal aspect of the configuration parameter changes" and "the
performance impacts for historical configuration changes" — as learner
input; this module provides the substrate.

Timestamps are logical (a monotonically increasing sequence number):
the simulation has no wall clock, and ordering is what analyses need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.netmodel.identifiers import CarrierId
from repro.types import ParameterValue


class ChangeSource(enum.Enum):
    """Who made a change."""

    AURIC_PUSH = "auric-push"
    ROLLBACK = "rollback"
    MANUAL = "manual"
    VENDOR_INTEGRATION = "vendor-integration"


@dataclass(frozen=True)
class ChangeRecord:
    """One parameter change on one carrier."""

    sequence: int
    carrier_id: CarrierId
    parameter: str
    old_value: Optional[ParameterValue]
    new_value: ParameterValue
    source: ChangeSource
    batch_id: Optional[str] = None
    #: Optional recommendation provenance (the JSON form of a
    #: :class:`repro.obs.provenance.ParameterExplanation`): *why* the
    #: pushed value was recommended.  Excluded from equality so audits
    #: with and without provenance compare on the change itself.
    provenance: Optional[Dict] = field(default=None, compare=False)

    def __str__(self) -> str:
        return (
            f"#{self.sequence} {self.carrier_id} {self.parameter}: "
            f"{self.old_value!r} -> {self.new_value!r} [{self.source.value}]"
        )


class ChangeLog:
    """An append-only, queryable log of configuration changes."""

    def __init__(self) -> None:
        self._records: List[ChangeRecord] = []
        self._by_carrier: Dict[CarrierId, List[int]] = {}
        self._by_parameter: Dict[str, List[int]] = {}

    def record(
        self,
        carrier_id: CarrierId,
        parameter: str,
        old_value: Optional[ParameterValue],
        new_value: ParameterValue,
        source: ChangeSource,
        batch_id: Optional[str] = None,
        provenance: Optional[Dict] = None,
    ) -> ChangeRecord:
        entry = ChangeRecord(
            sequence=len(self._records),
            carrier_id=carrier_id,
            parameter=parameter,
            old_value=old_value,
            new_value=new_value,
            source=source,
            batch_id=batch_id,
            provenance=provenance,
        )
        self._records.append(entry)
        self._by_carrier.setdefault(carrier_id, []).append(entry.sequence)
        self._by_parameter.setdefault(parameter, []).append(entry.sequence)
        return entry

    def record_batch(
        self,
        carrier_id: CarrierId,
        changes: Iterable[tuple],
        source: ChangeSource,
        batch_id: Optional[str] = None,
        provenance: Optional[Mapping[str, Dict]] = None,
    ) -> List[ChangeRecord]:
        """Record (parameter, old, new) tuples as one batch.

        ``provenance`` optionally maps parameter names to their
        recommendation-provenance dicts; parameters without an entry are
        recorded without provenance.
        """
        return [
            self.record(
                carrier_id, parameter, old, new, source, batch_id,
                provenance=(
                    provenance.get(parameter) if provenance is not None else None
                ),
            )
            for parameter, old, new in changes
        ]

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def all_records(self) -> List[ChangeRecord]:
        return list(self._records)

    def for_carrier(self, carrier_id: CarrierId) -> List[ChangeRecord]:
        return [self._records[i] for i in self._by_carrier.get(carrier_id, ())]

    def for_parameter(self, parameter: str) -> List[ChangeRecord]:
        return [self._records[i] for i in self._by_parameter.get(parameter, ())]

    def by_source(self, source: ChangeSource) -> List[ChangeRecord]:
        return [r for r in self._records if r.source is source]

    def last_change(
        self, carrier_id: CarrierId, parameter: str
    ) -> Optional[ChangeRecord]:
        """The most recent change of one value, if any."""
        for index in reversed(self._by_carrier.get(carrier_id, ())):
            if self._records[index].parameter == parameter:
                return self._records[index]
        return None

    def churn_by_parameter(self) -> Dict[str, int]:
        """parameter → number of recorded changes (tuning churn)."""
        return {
            parameter: len(indices)
            for parameter, indices in self._by_parameter.items()
        }
