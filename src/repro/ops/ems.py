"""Element management system (EMS) simulator.

The EMS is the vendor-provided interface through which configuration
reaches the base station hardware (section 5).  Two of its production
behaviours matter for reproducing Table 5:

* configuration changes to lock-required parameters are rejected on an
  unlocked (live) carrier — the controller's conservative policy is to
  skip such carriers rather than disrupt service, and
* large change batches can time out: the paper reports fall-outs from
  "EMS restrictions [that] limited us in how many concurrent executions
  of parameters were supported".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.config.store import ConfigurationStore
from repro.config.templates import parse_config_file
from repro.exceptions import CarrierLockedError, EMSTimeoutError
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.rng import derive
from repro.types import ParameterValue


@dataclass(frozen=True)
class EMSConfig:
    """EMS behaviour knobs."""

    #: Batches larger than this always time out (hard vendor limit).
    max_batch_size: int = 120
    #: Baseline probability that any push batch times out.
    base_timeout_rate: float = 0.01
    #: Additional timeout probability per parameter in the batch.
    per_parameter_timeout_rate: float = 0.0005
    seed: int = 99


class ElementManagementSystem:
    """Applies configuration files to carriers, enforcing lock rules."""

    def __init__(
        self,
        network: Network,
        store: ConfigurationStore,
        config: Optional[EMSConfig] = None,
    ) -> None:
        self.network = network
        self.store = store
        self.config = config or EMSConfig()
        self._rng = derive(self.config.seed, "ems")
        self.pushed_batches = 0
        self.pushed_parameters = 0
        self.timeouts = 0

    # -- lock management ---------------------------------------------------

    def lock_carrier(self, carrier_id: CarrierId) -> None:
        """Take a carrier off-air (reboot-equivalent)."""
        self.network.carrier(carrier_id).lock()

    def unlock_carrier(self, carrier_id: CarrierId) -> None:
        """Put a carrier in service."""
        self.network.carrier(carrier_id).unlock()

    def is_locked(self, carrier_id: CarrierId) -> bool:
        return self.network.carrier(carrier_id).locked

    # -- configuration push --------------------------------------------------

    def apply_config_file(self, carrier_id: CarrierId, config_file: str) -> int:
        """Parse and apply a rendered config file to a locked carrier.

        Returns the number of parameters applied.  Raises
        :class:`CarrierLockedError` if the carrier is live and
        :class:`EMSTimeoutError` on a (size-dependent) timeout.
        """
        values = parse_config_file(config_file)
        return self.apply_values(carrier_id, values)

    def apply_values(
        self, carrier_id: CarrierId, values: Mapping[str, ParameterValue]
    ) -> int:
        if not self.is_locked(carrier_id):
            raise CarrierLockedError(
                f"{carrier_id} is unlocked (live); refusing a disruptive change"
            )
        batch_size = len(values)
        if batch_size == 0:
            return 0
        timeout_probability = (
            self.config.base_timeout_rate
            + self.config.per_parameter_timeout_rate * batch_size
        )
        if batch_size > self.config.max_batch_size or (
            self._rng.random() < timeout_probability
        ):
            self.timeouts += 1
            raise EMSTimeoutError(
                f"EMS timed out applying {batch_size} parameters to {carrier_id}"
            )
        applied = 0
        for name, value in values.items():
            spec = self.store.catalog.spec(name)
            if spec.is_pairwise:
                continue  # pair-wise pushes go through apply_pairwise
            self.store.set_singular(carrier_id, name, value)
            applied += 1
        self.pushed_batches += 1
        self.pushed_parameters += applied
        return applied
