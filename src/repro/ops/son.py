"""SON-style rule-book compliance auditing.

Section 2.4: "even with SON, the rule-books are created and maintained
using domain knowledge.  When new carriers are integrated, SON only
ensures the configured values are compliant with the rulebook ...  SON
is still unable to determine an appropriate value in case a parameter
has a range to choose from."

This module is that compliance layer: it verifies every configured
value against the catalog's legal domain and, where a rule-book entry
pins a value, against the book — and reports the violations, exactly
the capability (and the limitation) the paper contrasts Auric with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.config.rulebook import RuleBook
from repro.config.store import ConfigurationStore
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.types import ParameterValue


class ViolationKind(enum.Enum):
    """What a compliance finding means."""

    OUT_OF_DOMAIN = "out-of-domain"
    RULEBOOK_DEVIATION = "rulebook-deviation"
    MISSING_VALUE = "missing-value"


@dataclass(frozen=True)
class ComplianceViolation:
    carrier_id: CarrierId
    parameter: str
    kind: ViolationKind
    current: Optional[ParameterValue]
    expected: Optional[ParameterValue] = None

    def __str__(self) -> str:
        if self.kind is ViolationKind.RULEBOOK_DEVIATION:
            return (
                f"{self.carrier_id} {self.parameter}: {self.current!r} "
                f"deviates from rule-book value {self.expected!r}"
            )
        if self.kind is ViolationKind.MISSING_VALUE:
            return f"{self.carrier_id} {self.parameter}: not configured"
        return f"{self.carrier_id} {self.parameter}: {self.current!r} out of domain"


@dataclass
class ComplianceReport:
    """The audit result for a set of carriers."""

    carriers_audited: int
    values_audited: int
    violations: List[ComplianceViolation] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.violations

    def by_kind(self) -> Dict[ViolationKind, int]:
        counts = {kind: 0 for kind in ViolationKind}
        for violation in self.violations:
            counts[violation.kind] += 1
        return counts

    def summary(self) -> str:
        counts = self.by_kind()
        return (
            f"audited {self.values_audited} values on "
            f"{self.carriers_audited} carriers: "
            f"{len(self.violations)} violations ("
            f"{counts[ViolationKind.OUT_OF_DOMAIN]} out-of-domain, "
            f"{counts[ViolationKind.RULEBOOK_DEVIATION]} rule-book deviations, "
            f"{counts[ViolationKind.MISSING_VALUE]} missing)"
        )


class SONComplianceChecker:
    """Audits carrier configuration against the catalog and a rule-book.

    Like production SON, it verifies but does not recommend: a range
    parameter whose value is legal passes even when a better value
    exists — picking from the range is exactly what Auric adds.
    """

    def __init__(
        self,
        network: Network,
        store: ConfigurationStore,
        rulebook: Optional[RuleBook] = None,
        required_parameters: Optional[Iterable[str]] = None,
    ) -> None:
        self.network = network
        self.store = store
        self.rulebook = rulebook
        self.required_parameters = (
            list(required_parameters) if required_parameters is not None else None
        )

    def audit_carrier(self, carrier_id: CarrierId) -> List[ComplianceViolation]:
        carrier = self.network.carrier(carrier_id)
        configured = self.store.carrier_config(carrier_id)
        violations: List[ComplianceViolation] = []

        for name, value in configured.items():
            spec = self.store.catalog.spec(name)
            if not spec.contains(value):
                violations.append(
                    ComplianceViolation(
                        carrier_id, name, ViolationKind.OUT_OF_DOMAIN, value
                    )
                )
                continue
            if self.rulebook is not None and not spec.is_range:
                # Enumeration parameters are fully pinned by the book.
                expected = self.rulebook.lookup(name, carrier.attributes)
                if expected is not None and expected != value:
                    violations.append(
                        ComplianceViolation(
                            carrier_id,
                            name,
                            ViolationKind.RULEBOOK_DEVIATION,
                            value,
                            expected,
                        )
                    )

        if self.required_parameters is not None:
            for name in self.required_parameters:
                if name not in configured:
                    violations.append(
                        ComplianceViolation(
                            carrier_id, name, ViolationKind.MISSING_VALUE, None
                        )
                    )
        return violations

    def audit(
        self, carrier_ids: Optional[Iterable[CarrierId]] = None
    ) -> ComplianceReport:
        """Audit the given carriers (default: every carrier)."""
        if carrier_ids is None:
            carrier_ids = [c.carrier_id for c in self.network.carriers()]
        carrier_ids = list(carrier_ids)
        violations: List[ComplianceViolation] = []
        values = 0
        for carrier_id in carrier_ids:
            values += len(self.store.carrier_config(carrier_id))
            violations.extend(self.audit_carrier(carrier_id))
        return ComplianceReport(
            carriers_audited=len(carrier_ids),
            values_audited=values,
            violations=violations,
        )
