"""Post-launch KPI monitoring and rollback.

Section 4.3.3 ("Implications of inaccurate recommendations") and
section 6: after a new carrier is unlocked, engineers monitor traffic
distribution and service KPIs (data throughput, voice call admissions);
unexpected degradation triggers an immediate rollback of the carrier's
configuration to its pre-change state.

The simulator draws KPIs from a healthy baseline; carriers whose pushed
configuration deviated from the generator's intended values degrade with
elevated probability, exercising the rollback path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.config.store import ConfigurationStore
from repro.netmodel.identifiers import CarrierId
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics, tracing
from repro.obs.logs import get_logger
from repro.rng import derive

logger = get_logger("ops.monitoring")
from repro.types import ParameterValue


@dataclass(frozen=True)
class KPIReport:
    """Post-unlock KPI snapshot for one carrier."""

    carrier_id: CarrierId
    throughput_mbps: float
    drop_rate: float
    admission_rate: float

    @property
    def healthy(self) -> bool:
        return (
            self.throughput_mbps >= 10.0
            and self.drop_rate <= 0.02
            and self.admission_rate >= 0.95
        )


class KPIMonitor:
    """Synthesises post-launch KPIs and performs rollbacks."""

    def __init__(
        self,
        store: ConfigurationStore,
        degradation_rate: float = 0.02,
        seed: int = 5150,
        changelog=None,
    ) -> None:
        if not 0.0 <= degradation_rate <= 1.0:
            raise ValueError("degradation_rate must be in [0, 1]")
        self.store = store
        self.degradation_rate = degradation_rate
        self._rng = derive(seed, "kpi-monitor")
        self._snapshots: Dict[CarrierId, Dict[str, ParameterValue]] = {}
        self.rollbacks: List[CarrierId] = []
        #: Optional audit log; rollbacks are recorded to it.
        self.changelog = changelog

    def snapshot(self, carrier_id: CarrierId) -> None:
        """Record the carrier's config before changes (rollback point)."""
        self._snapshots[carrier_id] = self.store.carrier_config(carrier_id)

    def observe(self, carrier_id: CarrierId, changed: bool) -> KPIReport:
        """Draw a KPI report; changed carriers carry the degradation risk."""
        degraded = changed and self._rng.random() < self.degradation_rate
        if degraded:
            report = KPIReport(
                carrier_id=carrier_id,
                throughput_mbps=float(self._rng.uniform(1.0, 8.0)),
                drop_rate=float(self._rng.uniform(0.03, 0.10)),
                admission_rate=float(self._rng.uniform(0.80, 0.94)),
            )
        else:
            report = KPIReport(
                carrier_id=carrier_id,
                throughput_mbps=float(self._rng.uniform(25.0, 90.0)),
                drop_rate=float(self._rng.uniform(0.001, 0.01)),
                admission_rate=float(self._rng.uniform(0.97, 1.0)),
            )
        self._record_observation(report)
        return report

    @staticmethod
    def _record_observation(report: KPIReport) -> None:
        obs_metrics.counter(
            "repro_kpi_observations_total",
            "Post-launch KPI observations by health",
            labelnames=("healthy",),
        ).labels(str(report.healthy).lower()).inc()

    def rollback(self, carrier_id: CarrierId) -> int:
        """Restore the pre-change configuration; returns values restored."""
        snapshot = self._snapshots.get(carrier_id)
        if snapshot is None:
            return 0
        with tracing.span(
            "ops.rollback", carrier=str(carrier_id), values=len(snapshot)
        ):
            for name, value in snapshot.items():
                current = self.store.get_singular(carrier_id, name)
                if self.changelog is not None and current != value:
                    from repro.ops.history import ChangeSource

                    self.changelog.record(
                        carrier_id, name, current, value, ChangeSource.ROLLBACK
                    )
                self.store.set_singular(carrier_id, name, value)
            self.rollbacks.append(carrier_id)
            obs_metrics.counter(
                "repro_rollbacks_total", "Post-launch configuration rollbacks"
            ).inc()
            obs_journal.record(
                "rollback",
                scope="ops",
                trigger="kpi-degradation",
                carrier=str(carrier_id),
                values_restored=len(snapshot),
                parameters=sorted(snapshot),
            )
            logger.warning(
                "configuration rolled back",
                extra={
                    "carrier": str(carrier_id),
                    "values_restored": len(snapshot),
                },
            )
            return len(snapshot)


class SimulationKPIMonitor(KPIMonitor):
    """KPI monitoring backed by the radio simulator.

    Instead of drawing KPIs from a distribution, this monitor runs the
    :class:`~repro.radio.simulator.RadioSimulator` over the carrier's
    eNodeB and its X2 neighborhood under the *current* configuration —
    so a genuinely harmful push (say, ``pMax`` crushed to 0 dBm, killing
    coverage, or ``qrxlevmin`` raised until nobody qualifies) produces
    degraded KPIs and triggers the rollback path physically, not
    probabilistically.
    """

    def __init__(self, network, store: ConfigurationStore, seed: int = 5150):
        super().__init__(store, degradation_rate=0.0, seed=seed)
        self.network = network
        self._sim_seed = seed

    def observe(self, carrier_id: CarrierId, changed: bool) -> KPIReport:
        from repro.radio.simulator import RadioSimulator

        enodeb_id = carrier_id.enodeb
        scope = [self.network.enodeb(enodeb_id)]
        for neighbor_id in self.network.x2.enodeb_neighbors(enodeb_id):
            scope.append(self.network.enodeb(neighbor_id))
        simulator = RadioSimulator(
            self.network, self.store, enodebs=scope, seed=self._sim_seed
        )
        report = simulator.run()
        kpi = report.kpi_of(carrier_id)
        if kpi is None or kpi.connected_users == 0:
            # No traffic landed on the carrier: treat coverage collapse
            # on a previously-offered carrier as degradation.
            offered = kpi.offered_users if kpi is not None else 0
            if changed and offered == 0 and report.users_total > 0:
                return KPIReport(carrier_id, 0.0, 0.0, 0.0)
            return KPIReport(carrier_id, 25.0, 0.0, 1.0)
        return KPIReport(
            carrier_id=carrier_id,
            throughput_mbps=max(kpi.mean_throughput_mbps, 0.0) * 10.0,
            drop_rate=kpi.drop_rate,
            admission_rate=kpi.admission_rate,
        )
