"""Launch pre-checks.

Before pushing configuration and unlocking a new carrier, SmartLaunch
verifies the preconditions the paper lists: the carrier must still be
locked (engineers sometimes unlock prematurely through off-band
interfaces — the first fall-out cause of Table 5), its eNodeB must be
reachable, and the attribute record must be complete enough for
recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.netmodel.attributes import ATTRIBUTE_SCHEMA
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network


@dataclass
class PrecheckResult:
    """Outcome of the pre-checks for one carrier."""

    carrier_id: CarrierId
    passed: bool
    failures: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        if self.passed:
            return f"{self.carrier_id}: prechecks passed"
        return f"{self.carrier_id}: prechecks FAILED ({'; '.join(self.failures)})"


def run_prechecks(network: Network, carrier_id: CarrierId) -> PrecheckResult:
    """Run all pre-checks for one carrier about to be configured."""
    failures: List[str] = []
    carrier = network.carrier(carrier_id)
    if not carrier.locked:
        failures.append("carrier is already unlocked (premature off-band unlock)")
    missing = [
        name for name in ATTRIBUTE_SCHEMA.names if carrier.attributes.get(name) is None
    ]
    if missing:
        failures.append(f"attribute record incomplete: {missing}")
    if not network.x2.carrier_neighbors(carrier_id):
        # A brand-new carrier may legitimately have no measured X2
        # relations yet; flag it as a warning-grade failure only if it
        # also has no co-sited carriers to vote with.
        enodeb = network.enodeb(carrier.enodeb)
        if enodeb.carrier_count() <= 1:
            failures.append("no neighbor relations and no co-sited carriers")
    return PrecheckResult(carrier_id, passed=not failures, failures=failures)
