"""SmartLaunch: the automated carrier-launch workflow.

The production workflow of section 5: vendors physically integrate a new
carrier and set its initial software configuration; SmartLaunch then
runs pre-checks, generates Auric's recommendation, pushes only the
mismatches through the EMS *while the carrier is still locked*, unlocks
the carrier, and monitors alarms/KPIs as post-checks (rolling back on
degradation).

The two fall-out causes the paper reports are both modelled:

* **premature unlock** — an engineer unlocks the carrier through an
  off-band interface between the recommendation and the push, so the
  conservative controller skips it, and
* **EMS timeout** — large parameter batches exceed what the EMS can
  execute concurrently.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.pipeline import NewCarrierRequest
from repro.core.recommendation import CarrierRecommendation, RecommendRequest
from repro.exceptions import RecommendationError
from repro.netmodel.identifiers import CarrierId
from repro.obs import journal as obs_journal
from repro.obs import tracing
from repro.obs.provenance import ResultExplanation
from repro.ops.controller import ConfigPushController, PushOutcome, PushResult
from repro.ops.monitoring import KPIMonitor
from repro.ops.prechecks import run_prechecks
from repro.rng import derive
from repro.types import ParameterValue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import RecommendationService

logger = logging.getLogger(__name__)


class LaunchOutcome(enum.Enum):
    """Final status of one carrier launch."""

    LAUNCHED_NO_CHANGES = "launched-no-changes"
    LAUNCHED_WITH_CHANGES = "launched-with-changes"
    FALLOUT_PREMATURE_UNLOCK = "fallout-premature-unlock"
    FALLOUT_EMS_TIMEOUT = "fallout-ems-timeout"
    FALLOUT_PRECHECK = "fallout-precheck"
    ROLLED_BACK = "rolled-back"


#: Outcomes counted as fall-outs in Table 5.
FALLOUT_OUTCOMES = frozenset(
    {
        LaunchOutcome.FALLOUT_PREMATURE_UNLOCK,
        LaunchOutcome.FALLOUT_EMS_TIMEOUT,
        LaunchOutcome.FALLOUT_PRECHECK,
    }
)


@dataclass(frozen=True)
class SmartLaunchConfig:
    """Workflow behaviour knobs."""

    #: Probability an engineer unlocks the carrier off-band before the
    #: controller's push lands.
    premature_unlock_rate: float = 0.10
    seed: int = 314
    #: Ask the recommendation service for provenance on every resolved
    #: request; the explanation rides on the launch record and the
    #: pushed changes' audit-log entries.
    explain: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.premature_unlock_rate <= 1.0:
            raise ValueError("premature_unlock_rate must be in [0, 1]")


@dataclass
class LaunchRecord:
    """Everything that happened for one launch."""

    carrier_id: CarrierId
    outcome: LaunchOutcome
    changes_recommended: int
    parameters_pushed: int
    push_result: Optional[PushResult] = None
    #: Recommendation provenance, when the workflow asked for it
    #: (:attr:`SmartLaunchConfig.explain`).
    explanation: Optional[ResultExplanation] = None


@dataclass
class LaunchStats:
    """Aggregate over a launch campaign — the Table 5 rows."""

    records: List[LaunchRecord] = field(default_factory=list)

    def add(self, record: LaunchRecord) -> None:
        self.records.append(record)

    @property
    def launched(self) -> int:
        return len(self.records)

    @property
    def changes_recommended(self) -> int:
        """Carriers for which Auric recommended at least one change."""
        return sum(1 for r in self.records if r.changes_recommended > 0)

    @property
    def changes_implemented(self) -> int:
        """Carriers whose changes were successfully pushed."""
        return sum(
            1 for r in self.records if r.outcome is LaunchOutcome.LAUNCHED_WITH_CHANGES
        )

    @property
    def parameters_changed(self) -> int:
        return sum(r.parameters_pushed for r in self.records)

    @property
    def fallouts(self) -> int:
        return sum(1 for r in self.records if r.outcome in FALLOUT_OUTCOMES)

    @property
    def rollbacks(self) -> int:
        return sum(1 for r in self.records if r.outcome is LaunchOutcome.ROLLED_BACK)

    def outcome_counts(self) -> Dict[LaunchOutcome, int]:
        counts: Dict[LaunchOutcome, int] = {o: 0 for o in LaunchOutcome}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def table5_rows(self) -> List[tuple]:
        """(label, count, percent-of-launches) rows, Table 5 layout."""
        n = max(self.launched, 1)
        return [
            ("New carriers launched", self.launched, 100.0),
            (
                "Changes recommended by Auric",
                self.changes_recommended,
                100.0 * self.changes_recommended / n,
            ),
            (
                "Changes implemented successfully",
                self.changes_implemented,
                100.0 * self.changes_implemented / n,
            ),
        ]


class SmartLaunch:
    """The launch workflow orchestrator."""

    def __init__(
        self,
        controller: ConfigPushController,
        monitor: KPIMonitor,
        config: Optional[SmartLaunchConfig] = None,
        service: Optional["RecommendationService"] = None,
    ) -> None:
        self.controller = controller
        self.monitor = monitor
        self.config = config or SmartLaunchConfig()
        #: Optional long-lived recommendation service.  With it, launch
        #: entries may carry a :class:`NewCarrierRequest` instead of a
        #: pre-computed recommendation — the workflow asks the service
        #: (one persistent fitted engine, cached voting) instead of the
        #: caller refitting an engine per carrier.
        self.service = service
        self._rng = derive(self.config.seed, "smartlaunch")

    def _resolve_recommendation(
        self,
        recommendation: Union[CarrierRecommendation, NewCarrierRequest],
        parameters: Optional[Sequence[str]] = None,
    ) -> CarrierRecommendation:
        return self._resolve(recommendation, parameters)[0]

    def _resolve(
        self,
        recommendation: Union[CarrierRecommendation, NewCarrierRequest],
        parameters: Optional[Sequence[str]] = None,
    ) -> Tuple[CarrierRecommendation, Optional[ResultExplanation]]:
        """Resolve a launch entry to (recommendation, explanation).

        Pre-computed recommendations carry no explanation; service
        resolutions request one when the workflow's ``explain`` knob is
        on.
        """
        if isinstance(recommendation, CarrierRecommendation):
            return recommendation, None
        if self.service is None:
            raise RecommendationError(
                "launch entry is a NewCarrierRequest but SmartLaunch has "
                "no recommendation service attached"
            )
        unified = RecommendRequest.from_new_carrier(
            recommendation,
            parameters=tuple(parameters) if parameters is not None else None,
        )
        if self.config.explain:
            unified = replace(unified, explain=True)
        result = self.service.handle(unified)
        return result.recommendation, result.explain

    def launch_request(
        self,
        carrier_id: CarrierId,
        vendor_config: Dict[str, ParameterValue],
        request: NewCarrierRequest,
        parameters: Optional[Sequence[str]] = None,
    ) -> LaunchRecord:
        """Launch one carrier, recommendations served by the service."""
        recommendation, explanation = self._resolve(request, parameters)
        return self.launch(
            carrier_id, vendor_config, recommendation, explanation
        )

    def launch(
        self,
        carrier_id: CarrierId,
        vendor_config: Dict[str, ParameterValue],
        recommendation: CarrierRecommendation,
        explanation: Optional[ResultExplanation] = None,
    ) -> LaunchRecord:
        """Run the full workflow for one new carrier.

        ``vendor_config`` is the initial configuration the integration
        vendor set; the controller pushes only Auric's confident
        mismatches against it.  ``explanation`` (when the resolution
        produced one) rides on the launch record and is audited with
        the pushed changes.
        """
        with tracing.span("ops.launch", carrier=str(carrier_id)) as sp:
            record = self._launch(
                carrier_id, vendor_config, recommendation, explanation
            )
            record.explanation = explanation
            sp.set("outcome", record.outcome.value)
            obs_journal.record(
                "launch",
                scope="ops",
                trigger="smartlaunch",
                carrier=str(carrier_id),
                outcome=record.outcome.value,
                changes_recommended=record.changes_recommended,
                parameters_pushed=record.parameters_pushed,
            )
            logger.info(
                "carrier launch finished",
                extra={
                    "carrier": str(carrier_id),
                    "outcome": record.outcome.value,
                    "changes_recommended": record.changes_recommended,
                    "parameters_pushed": record.parameters_pushed,
                },
            )
            return record

    def _launch(
        self,
        carrier_id: CarrierId,
        vendor_config: Dict[str, ParameterValue],
        recommendation: CarrierRecommendation,
        explanation: Optional[ResultExplanation] = None,
    ) -> LaunchRecord:
        ems = self.controller.ems
        network = ems.network
        ems.lock_carrier(carrier_id)  # new carriers arrive locked

        precheck = run_prechecks(network, carrier_id)
        diff = self.controller.plan(carrier_id, vendor_config, recommendation)
        changes_recommended = len(diff)
        if not precheck.passed:
            ems.unlock_carrier(carrier_id)
            return LaunchRecord(
                carrier_id, LaunchOutcome.FALLOUT_PRECHECK, changes_recommended, 0
            )

        # An engineer may unlock the carrier off-band before our push.
        if (
            changes_recommended > 0
            and self._rng.random() < self.config.premature_unlock_rate
        ):
            ems.unlock_carrier(carrier_id)

        self.monitor.snapshot(carrier_id)
        push = self.controller.push(
            carrier_id, vendor_config, recommendation, provenance=explanation
        )
        ems.unlock_carrier(carrier_id)

        if push.outcome is PushOutcome.SKIPPED_UNLOCKED:
            return LaunchRecord(
                carrier_id,
                LaunchOutcome.FALLOUT_PREMATURE_UNLOCK,
                changes_recommended,
                0,
                push,
            )
        if push.outcome is PushOutcome.EMS_TIMEOUT:
            return LaunchRecord(
                carrier_id,
                LaunchOutcome.FALLOUT_EMS_TIMEOUT,
                changes_recommended,
                0,
                push,
            )

        changed = push.outcome is PushOutcome.PUSHED
        report = self.monitor.observe(carrier_id, changed=changed)
        if changed and not report.healthy:
            self.monitor.rollback(carrier_id)
            return LaunchRecord(
                carrier_id,
                LaunchOutcome.ROLLED_BACK,
                changes_recommended,
                push.parameters_pushed,
                push,
            )
        outcome = (
            LaunchOutcome.LAUNCHED_WITH_CHANGES
            if changed
            else LaunchOutcome.LAUNCHED_NO_CHANGES
        )
        return LaunchRecord(
            carrier_id, outcome, changes_recommended, push.parameters_pushed, push
        )

    def run_campaign(
        self,
        launches: Iterable[tuple],
    ) -> LaunchStats:
        """Launch a sequence of (carrier_id, vendor_config, recommendation).

        The third element may be a pre-computed
        :class:`CarrierRecommendation` or, when a service is attached, a
        :class:`NewCarrierRequest` the service resolves at launch time.
        """
        stats = LaunchStats()
        for carrier_id, vendor_config, recommendation in launches:
            resolved, explanation = self._resolve(recommendation)
            stats.add(
                self.launch(carrier_id, vendor_config, resolved, explanation)
            )
        return stats
