"""Operational layer: SmartLaunch, the push controller and the EMS.

Models the production integration of section 5 of the paper: Auric's
recommendations are diffed against the vendor's initial configuration,
validated (optionally) by an engineer, rendered through the vendor
template, and pushed through the element management system into the
base station — all *before* the carrier is unlocked, because changing
some parameters on a live carrier requires a service-disrupting lock.
"""

from repro.ops.controller import ConfigPushController, PushOutcome, PushResult
from repro.ops.ems import ElementManagementSystem, EMSConfig
from repro.ops.monitoring import KPIMonitor, KPIReport, SimulationKPIMonitor
from repro.ops.history import ChangeLog, ChangeRecord, ChangeSource
from repro.ops.prechecks import PrecheckResult, run_prechecks
from repro.ops.son import (
    ComplianceReport,
    ComplianceViolation,
    SONComplianceChecker,
    ViolationKind,
)
from repro.ops.smartlaunch import (
    LaunchOutcome,
    LaunchRecord,
    LaunchStats,
    SmartLaunch,
    SmartLaunchConfig,
)

__all__ = [
    "ConfigPushController",
    "PushOutcome",
    "PushResult",
    "ElementManagementSystem",
    "EMSConfig",
    "KPIMonitor",
    "KPIReport",
    "SimulationKPIMonitor",
    "ComplianceReport",
    "ComplianceViolation",
    "SONComplianceChecker",
    "ViolationKind",
    "ChangeLog",
    "ChangeRecord",
    "ChangeSource",
    "PrecheckResult",
    "run_prechecks",
    "LaunchOutcome",
    "LaunchRecord",
    "LaunchStats",
    "SmartLaunch",
    "SmartLaunchConfig",
]
