"""Inter-frequency load balancing (IFLB).

Section 2.2: with ``actInterFreqLB`` active, the eNodeB measures
per-carrier load and hands users over to under-utilized overlapping or
neighboring carriers on other frequencies.  ``lbCapacityThreshold``
(the paper's example range parameter) sets the utilization above which
a carrier starts shedding load; ``lbCeiling`` caps how much a receiving
carrier may be filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.config.store import ConfigurationStore
from repro.netmodel.carrier import Carrier
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.radio.selection import practical_capacity
from repro.radio.signal import received_power_dbm
from repro.radio.users import UserEquipment

_DEFAULT_LB_THRESHOLD = 80.0
_DEFAULT_LB_CEILING = 90.0


@dataclass
class Assignment:
    """The mutable UE → carrier assignment the balancer operates on."""

    user_to_carrier: Dict[int, CarrierId] = field(default_factory=dict)
    users_by_carrier: Dict[CarrierId, List[int]] = field(default_factory=dict)

    def assign(self, user_index: int, carrier_id: CarrierId) -> None:
        previous = self.user_to_carrier.get(user_index)
        if previous is not None:
            self.users_by_carrier[previous].remove(user_index)
        self.user_to_carrier[user_index] = carrier_id
        self.users_by_carrier.setdefault(carrier_id, []).append(user_index)

    def load_of(self, carrier_id: CarrierId, capacity: int) -> float:
        """Utilization in percent of connection capacity."""
        if capacity <= 0:
            return 100.0
        count = len(self.users_by_carrier.get(carrier_id, ()))
        return 100.0 * count / capacity


def _iflb_active(store: ConfigurationStore, carrier: Carrier) -> bool:
    value = store.carrier_config(carrier.carrier_id).get("actInterFreqLB")
    return bool(value) if value is not None else True


def rebalance(
    network: Network,
    store: ConfigurationStore,
    users: Sequence[UserEquipment],
    assignment: Assignment,
    rounds: int = 2,
) -> int:
    """Run IFLB rounds over the current assignment.

    Returns the number of users moved.  For each overloaded carrier
    (load above its ``lbCapacityThreshold``) with IFLB active, users are
    offered to X2-neighbor carriers on other frequencies that cover them
    and sit below their ``lbCeiling``.
    """
    users_by_index = {u.index: u for u in users}
    moved = 0
    for _ in range(rounds):
        moved_this_round = 0
        for carrier_id, members in list(assignment.users_by_carrier.items()):
            if not members:
                continue
            carrier = network.carrier(carrier_id)
            if not _iflb_active(store, carrier):
                continue
            values = store.carrier_config(carrier_id)
            threshold = float(
                values.get("lbCapacityThreshold", _DEFAULT_LB_THRESHOLD)
            )
            capacity = practical_capacity(store, carrier)
            if assignment.load_of(carrier_id, capacity) <= threshold:
                continue

            neighbors = [
                network.carrier(n)
                for n in network.x2.carrier_neighbors(carrier_id)
            ]
            targets = [
                n for n in neighbors if n.frequency_mhz != carrier.frequency_mhz
            ]
            # Shed the most recently attached users first.
            for user_index in list(reversed(members)):
                if assignment.load_of(carrier_id, capacity) <= threshold:
                    break
                user = users_by_index[user_index]
                destination = _best_target(user, targets, store, assignment)
                if destination is None:
                    continue
                assignment.assign(user_index, destination.carrier_id)
                moved_this_round += 1
        moved += moved_this_round
        if moved_this_round == 0:
            break
    return moved


def _best_target(
    user: UserEquipment,
    targets: Sequence[Carrier],
    store: ConfigurationStore,
    assignment: Assignment,
):
    best = None
    best_load = None
    for target in targets:
        values = store.carrier_config(target.carrier_id)
        qrxlevmin = float(values.get("qrxlevmin", -120.0))
        pmax = float(values.get("pMax", 30.0))
        received = received_power_dbm(
            pmax, target.band, user.location.distance_km(target.location)
        )
        if received < qrxlevmin:
            continue
        capacity = practical_capacity(store, target)
        ceiling = float(values.get("lbCeiling", _DEFAULT_LB_CEILING))
        load = assignment.load_of(target.carrier_id, capacity)
        if load >= ceiling:
            continue
        if best_load is None or load < best_load:
            best, best_load = target, load
    return best
