"""User-equipment placement.

Users cluster where eNodeBs cluster (that is why the eNodeBs are
there): each UE is drawn by picking an eNodeB and offsetting by a
morphology-dependent radius, with urban sites attracting more users.
Every UE carries a demand in Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.netmodel.enodeb import ENodeB
from repro.netmodel.geo import GeoPoint
from repro.rng import derive

#: Mean users drawn per eNodeB by morphology (urban areas are busiest).
_USERS_PER_ENODEB = {"urban": 30.0, "suburban": 18.0, "rural": 8.0}

#: UE scatter radius around the site, km.
_SCATTER_KM = {"urban": 0.8, "suburban": 1.8, "rural": 4.0}


@dataclass(frozen=True)
class UserEquipment:
    """One simulated user: a location and a downlink demand."""

    index: int
    location: GeoPoint
    demand_mbps: float

    def __post_init__(self) -> None:
        if self.demand_mbps <= 0:
            raise ValueError("demand must be positive")


def _morphology_of(enodeb: ENodeB) -> str:
    return str(next(enodeb.carriers()).attributes["morphology"])


def place_users(
    enodebs: Sequence[ENodeB],
    seed: int = 0,
    density_factor: float = 1.0,
) -> List[UserEquipment]:
    """Draw a UE population around the given eNodeBs."""
    if density_factor <= 0:
        raise ValueError("density_factor must be positive")
    rng = derive(seed, "users")
    users: List[UserEquipment] = []
    for enodeb in enodebs:
        if enodeb.carrier_count() == 0:
            continue
        morphology = _morphology_of(enodeb)
        mean = _USERS_PER_ENODEB[morphology] * density_factor
        count = int(rng.poisson(mean))
        scatter = _SCATTER_KM[morphology]
        for _ in range(count):
            offset_north = float(rng.normal(0.0, scatter))
            offset_east = float(rng.normal(0.0, scatter))
            users.append(
                UserEquipment(
                    index=len(users),
                    location=enodeb.location.offset_km(offset_north, offset_east),
                    demand_mbps=float(rng.uniform(1.0, 8.0)),
                )
            )
    return users
