"""Cell selection and carrier layer management.

Implements the connection behaviour of section 2.1: a UE considers the
carriers that cover it (received power above the carrier's configured
``qrxlevmin``), and the network steers it high-band-first —
``cellReselectionPriority`` orders the layers (higher value preferred
here), ties break toward higher bands, then ``sFreqPrio`` (lower =
higher priority) and finally signal strength.  A carrier at its
admission limits rejects the UE and the next candidate is tried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config.store import ConfigurationStore
from repro.netmodel.bands import layer_priority
from repro.netmodel.carrier import Carrier
from repro.radio.signal import received_power_dbm
from repro.radio.users import UserEquipment

#: Fallbacks when a carrier lacks a configured value (rule-book
#: mid-range defaults keep the simulator total).
_DEFAULT_QRXLEVMIN = -120.0
_DEFAULT_PMAX = 30.0
_DEFAULT_PRIORITY = 4
_DEFAULT_SFREQPRIO = 5000
_DEFAULT_MAX_CONNECTIONS = 2000


@dataclass(frozen=True)
class CandidateEvaluation:
    """One carrier's suitability for one UE."""

    carrier: Carrier
    received_dbm: float
    covered: bool
    priority_key: tuple

    def __str__(self) -> str:
        state = "covers" if self.covered else "out of range"
        return f"{self.carrier.carrier_id}: {self.received_dbm:.1f} dBm ({state})"


def _config(store: ConfigurationStore, carrier: Carrier) -> Dict[str, float]:
    values = store.carrier_config(carrier.carrier_id)
    return {
        "pMax": float(values.get("pMax", _DEFAULT_PMAX)),
        "qrxlevmin": float(values.get("qrxlevmin", _DEFAULT_QRXLEVMIN)),
        "cellReselectionPriority": float(
            values.get("cellReselectionPriority", _DEFAULT_PRIORITY)
        ),
        "sFreqPrio": float(values.get("sFreqPrio", _DEFAULT_SFREQPRIO)),
    }


def evaluate_candidates(
    user: UserEquipment,
    carriers: Sequence[Carrier],
    store: ConfigurationStore,
) -> List[CandidateEvaluation]:
    """Evaluate every carrier for one UE, best candidate first.

    The priority key implements layer management: reselection priority
    (descending), band (high first), ``sFreqPrio`` (ascending — 1 is the
    highest priority in the paper), then received power (descending).
    """
    evaluations: List[CandidateEvaluation] = []
    for carrier in carriers:
        config = _config(store, carrier)
        received = received_power_dbm(
            config["pMax"],
            carrier.band,
            user.location.distance_km(carrier.location),
        )
        covered = received >= config["qrxlevmin"]
        key = (
            -config["cellReselectionPriority"],
            layer_priority(carrier.band),
            config["sFreqPrio"],
            -received,
        )
        evaluations.append(
            CandidateEvaluation(
                carrier=carrier,
                received_dbm=received,
                covered=covered,
                priority_key=key,
            )
        )
    evaluations.sort(key=lambda e: e.priority_key)
    return evaluations


def practical_capacity(store: ConfigurationStore, carrier: Carrier) -> int:
    """Connections a carrier can realistically serve.

    Scales with channel bandwidth (a 20 MHz cell carries more users at
    acceptable quality than a 5 MHz one) and is capped by the configured
    ``maxNumRrcConnections``.
    """
    bandwidth = int(carrier.attributes["channel_bandwidth"])
    natural = bandwidth * 4
    values = store.carrier_config(carrier.carrier_id)
    limit = int(values.get("maxNumRrcConnections", _DEFAULT_MAX_CONNECTIONS))
    return max(1, min(natural, limit))


def select_carrier(
    user: UserEquipment,
    carriers: Sequence[Carrier],
    store: ConfigurationStore,
    connections: Mapping[object, int],
) -> Tuple[Optional[Carrier], Optional[Carrier]]:
    """(connected carrier, first-choice carrier) for one UE.

    The first-choice carrier is the best covering candidate in layer-
    management order — the cell the UE is *offered* to.  If that cell
    (or subsequent candidates) is at practical capacity, the UE spills
    down the candidate list; it connects to the first candidate with
    room, or to nothing when every covering carrier is full.
    """
    first_choice: Optional[Carrier] = None
    for evaluation in evaluate_candidates(user, carriers, store):
        if not evaluation.covered:
            continue
        carrier = evaluation.carrier
        if first_choice is None:
            first_choice = carrier
        capacity = practical_capacity(store, carrier)
        if connections.get(carrier.carrier_id, 0) >= capacity:
            continue
        return carrier, first_choice
    return None, first_choice
