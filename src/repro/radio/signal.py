"""Signal propagation: a log-distance path-loss model per band.

Deliberately simple — the simulator needs monotone, band-dependent
signal behaviour (low band reaches further; higher transmit power
reaches further), not a calibrated channel model.  Constants follow the
common log-distance form ``PL(d) = PL0 + 10 n log10(d / d0)`` with a
band-dependent exponent and 1 km reference losses in the right ballpark
for macro cells.
"""

from __future__ import annotations

import math

from repro.types import Band

#: Reference path loss at 1 km, dB (roughly free space + margin @ band).
_REFERENCE_LOSS_DB = {
    Band.LOW: 100.0,
    Band.MID: 108.0,
    Band.HIGH: 114.0,
}

#: Path-loss exponents: low band propagates best.
_EXPONENT = {
    Band.LOW: 3.2,
    Band.MID: 3.5,
    Band.HIGH: 3.8,
}

_MIN_DISTANCE_KM = 0.02  # clamp: inside ~20 m everything saturates


def path_loss_db(band: Band, distance_km: float) -> float:
    """Log-distance path loss in dB at ``distance_km``."""
    if distance_km < 0.0:
        raise ValueError("distance must be non-negative")
    d = max(distance_km, _MIN_DISTANCE_KM)
    return _REFERENCE_LOSS_DB[band] + 10.0 * _EXPONENT[band] * math.log10(d)


def received_power_dbm(
    transmit_power_dbm: float, band: Band, distance_km: float
) -> float:
    """Received signal power (RSRP-like) in dBm."""
    return transmit_power_dbm - path_loss_db(band, distance_km)


def covers(
    transmit_power_dbm: float,
    band: Band,
    distance_km: float,
    qrxlevmin_dbm: float,
) -> bool:
    """Whether a carrier covers a point: received power >= qrxlevmin."""
    return received_power_dbm(transmit_power_dbm, band, distance_km) >= qrxlevmin_dbm
