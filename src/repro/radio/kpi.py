"""KPIs from a simulated assignment.

The post-launch indicators the paper's engineers watch (section 4.3.3):
data throughput, drops, and call admissions — here computed from the
UE→carrier assignment the simulator produced under the configured
parameter values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.config.store import ConfigurationStore
from repro.netmodel.carrier import Carrier
from repro.netmodel.identifiers import CarrierId
from repro.radio.loadbalance import Assignment
from repro.radio.users import UserEquipment

#: Spectral efficiency in Mbps per MHz of bandwidth shared by the cell.
_MBPS_PER_MHZ = 15.0


@dataclass(frozen=True)
class CarrierKPI:
    """Post-launch KPIs for one carrier."""

    carrier_id: CarrierId
    connected_users: int
    offered_users: int
    mean_throughput_mbps: float
    drop_rate: float
    admission_rate: float

    @property
    def healthy(self) -> bool:
        """The same health bar the operational monitor applies."""
        if self.connected_users == 0:
            return True  # an idle carrier is not degraded
        return (
            self.mean_throughput_mbps >= 3.0
            and self.drop_rate <= 0.05
            and self.admission_rate >= 0.9
        )


def carrier_kpi(
    carrier: Carrier,
    store: ConfigurationStore,
    users: Mapping[int, UserEquipment],
    assignment: Assignment,
    offered: int,
) -> CarrierKPI:
    """KPIs for one carrier given the final assignment.

    Throughput: the cell's capacity (bandwidth x spectral efficiency) is
    shared across connected users, capped by each user's demand.  Drops:
    demand beyond what the share can carry counts proportionally as
    dropped traffic.  Admission rate: connected / offered.
    """
    members = assignment.users_by_carrier.get(carrier.carrier_id, [])
    connected = len(members)
    if connected == 0:
        return CarrierKPI(carrier.carrier_id, 0, offered, 0.0, 0.0, 1.0)

    bandwidth_mhz = float(carrier.attributes["channel_bandwidth"])
    cell_mbps = bandwidth_mhz * _MBPS_PER_MHZ
    fair_share = cell_mbps / connected
    served: List[float] = []
    dropped = 0.0
    demanded = 0.0
    for index in members:
        demand = users[index].demand_mbps
        got = min(demand, fair_share)
        served.append(got)
        demanded += demand
        dropped += demand - got
    admission = connected / offered if offered else 1.0
    return CarrierKPI(
        carrier_id=carrier.carrier_id,
        connected_users=connected,
        offered_users=offered,
        mean_throughput_mbps=sum(served) / connected,
        drop_rate=dropped / demanded if demanded else 0.0,
        admission_rate=min(admission, 1.0),
    )


def network_kpis(
    carriers: Sequence[Carrier],
    store: ConfigurationStore,
    users: Sequence[UserEquipment],
    assignment: Assignment,
    offered_by_carrier: Optional[Mapping[CarrierId, int]] = None,
) -> Dict[CarrierId, CarrierKPI]:
    """KPIs for every carrier in one pass."""
    users_by_index = {u.index: u for u in users}
    out: Dict[CarrierId, CarrierKPI] = {}
    for carrier in carriers:
        offered = (
            offered_by_carrier.get(carrier.carrier_id, 0)
            if offered_by_carrier is not None
            else len(assignment.users_by_carrier.get(carrier.carrier_id, ()))
        )
        out[carrier.carrier_id] = carrier_kpi(
            carrier, store, users_by_index, assignment, offered
        )
    return out
