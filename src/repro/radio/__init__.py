"""Radio-layer simulation substrate.

Section 2.1 of the paper describes what the configuration *does*: users
connect to carriers by signal level (``qrxlevmin``), are steered
high-band-first (*carrier layer management*, ``cellReselectionPriority``
/ ``sFreqPrio``), spill to lower bands as capacity thresholds trip
(``admissionThreshold``, ``maxNumRrcConnections``) and are shifted
between carriers by inter-frequency load balancing
(``actInterFreqLB`` / ``lbCapacityThreshold``).

This package simulates that behaviour so configuration has observable
consequences: KPIs (throughput, drop rate, admission rate) emerge from
user placement + the configured values, which gives SmartLaunch's
post-checks and the performance-feedback extension a physical basis
instead of a coin flip.
"""

from repro.radio.kpi import CarrierKPI, network_kpis
from repro.radio.mobility import (
    HandoverEvent,
    MobilitySimulator,
    WalkResult,
    straight_path,
)
from repro.radio.selection import CandidateEvaluation, select_carrier
from repro.radio.signal import received_power_dbm, path_loss_db
from repro.radio.simulator import RadioSimulator, SimulationReport
from repro.radio.users import UserEquipment, place_users

__all__ = [
    "CarrierKPI",
    "network_kpis",
    "HandoverEvent",
    "MobilitySimulator",
    "WalkResult",
    "straight_path",
    "CandidateEvaluation",
    "select_carrier",
    "received_power_dbm",
    "path_loss_db",
    "RadioSimulator",
    "SimulationReport",
    "UserEquipment",
    "place_users",
]
