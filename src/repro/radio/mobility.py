"""User mobility and handover simulation.

The 26 pair-wise parameters exist to manage handovers (section 4.1 of
the paper: "these parameters are used to deal with user mobility and
handovers across carriers").  This module gives them semantics: a UE
walks a path; at each step the serving carrier's signal is compared
against same-frequency neighbors using the LTE A3 event —

    neighbor RSRP > serving RSRP + a3Offset + hysA3Offset
                    - cellIndividualOffset(serving → neighbor)

— and a handover fires once the condition holds for ``timeToTriggerA3``
milliseconds.  Badly tuned pairs show up exactly as they do in real
networks: zero hysteresis causes ping-pong, excessive hysteresis drags
the UE into radio-link failure at the cell edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.store import ConfigurationStore, PairKey
from repro.netmodel.carrier import Carrier
from repro.netmodel.geo import GeoPoint
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.radio.signal import received_power_dbm

#: Simulation step length in milliseconds (UE measurement period).
STEP_MS = 100

#: Defaults when a pair has no configured value (catalog mid-range-ish).
_DEFAULT_A3_OFFSET = 2.0
_DEFAULT_HYSTERESIS = 1.0
_DEFAULT_TIME_TO_TRIGGER_MS = 160.0
_DEFAULT_CIO = 0.0
_DEFAULT_PMAX = 30.0
_DEFAULT_QRXLEVMIN = -120.0

#: A handover back to a carrier left less than this long ago (in steps)
#: counts as a ping-pong.
PING_PONG_WINDOW_STEPS = 30


@dataclass(frozen=True)
class HandoverEvent:
    """One handover along a walk."""

    step: int
    source: CarrierId
    target: CarrierId
    ping_pong: bool


@dataclass
class WalkResult:
    """Everything one simulated walk produced."""

    steps: int
    serving_history: List[Optional[CarrierId]]
    handovers: List[HandoverEvent] = field(default_factory=list)
    radio_link_failures: int = 0

    @property
    def handover_count(self) -> int:
        return len(self.handovers)

    @property
    def ping_pong_count(self) -> int:
        return sum(1 for h in self.handovers if h.ping_pong)

    @property
    def ping_pong_rate(self) -> float:
        if not self.handovers:
            return 0.0
        return self.ping_pong_count / len(self.handovers)


def straight_path(
    start: GeoPoint, end: GeoPoint, steps: int
) -> List[GeoPoint]:
    """A constant-speed straight walk sampled at ``steps`` points."""
    if steps < 2:
        raise ValueError("a path needs at least 2 steps")
    out = []
    for i in range(steps):
        t = i / (steps - 1)
        out.append(
            GeoPoint(
                start.lat + (end.lat - start.lat) * t,
                start.lon + (end.lon - start.lon) * t,
            )
        )
    return out


class MobilitySimulator:
    """Walks a UE through the network and applies A3 handover logic."""

    def __init__(
        self,
        network: Network,
        store: ConfigurationStore,
        carriers: Optional[Sequence[Carrier]] = None,
    ) -> None:
        self.network = network
        self.store = store
        self._carriers = (
            list(carriers)
            if carriers is not None
            else list(network.carriers())
        )
        #: Measurement scope: a UE only evaluates carriers in the
        #: simulated set (all of them by default).
        self._carrier_ids = {c.carrier_id for c in self._carriers}

    # -- configuration lookups ---------------------------------------------

    def _pair_value(
        self, serving: CarrierId, neighbor: CarrierId, name: str, default: float
    ) -> float:
        value = self.store.get_pairwise(PairKey(serving, neighbor), name)
        return float(value) if value is not None else default

    def _carrier_value(self, carrier_id: CarrierId, name: str, default: float) -> float:
        value = self.store.get_singular(carrier_id, name)
        return float(value) if value is not None else default

    def _rsrp(self, carrier: Carrier, location: GeoPoint) -> float:
        pmax = self._carrier_value(carrier.carrier_id, "pMax", _DEFAULT_PMAX)
        return received_power_dbm(
            pmax, carrier.band, location.distance_km(carrier.location)
        )

    # -- walk ---------------------------------------------------------------

    def _initial_carrier(self, location: GeoPoint) -> Optional[Carrier]:
        best = None
        best_rsrp = None
        for carrier in self._carriers:
            rsrp = self._rsrp(carrier, location)
            qrx = self._carrier_value(
                carrier.carrier_id, "qrxlevmin", _DEFAULT_QRXLEVMIN
            )
            if rsrp < qrx:
                continue
            if best_rsrp is None or rsrp > best_rsrp:
                best, best_rsrp = carrier, rsrp
        return best

    def _neighbors_of(self, serving: Carrier) -> List[Carrier]:
        return [
            self.network.carrier(n)
            for n in self.network.x2.carrier_neighbors(serving.carrier_id)
            if n in self._carrier_ids
            and self.network.carrier(n).frequency_mhz == serving.frequency_mhz
        ]

    def walk(self, path: Sequence[GeoPoint]) -> WalkResult:
        """Simulate one UE along ``path`` (one step per point)."""
        result = WalkResult(steps=len(path), serving_history=[])
        serving = self._initial_carrier(path[0])
        # Per-neighbor count of consecutive steps the A3 condition held.
        a3_timers: Dict[CarrierId, int] = {}
        last_left: Dict[CarrierId, int] = {}

        for step, location in enumerate(path):
            if serving is None:
                serving = self._initial_carrier(location)
                result.serving_history.append(
                    serving.carrier_id if serving else None
                )
                continue

            serving_rsrp = self._rsrp(serving, location)
            serving_qrx = self._carrier_value(
                serving.carrier_id, "qrxlevmin", _DEFAULT_QRXLEVMIN
            )

            # A3 measurement against every same-frequency neighbor.
            fired: Optional[Carrier] = None
            for neighbor in self._neighbors_of(serving):
                neighbor_rsrp = self._rsrp(neighbor, location)
                bar = (
                    serving_rsrp
                    + self._pair_value(
                        serving.carrier_id, neighbor.carrier_id,
                        "a3Offset", _DEFAULT_A3_OFFSET,
                    )
                    + self._pair_value(
                        serving.carrier_id, neighbor.carrier_id,
                        "hysA3Offset", _DEFAULT_HYSTERESIS,
                    )
                    - self._pair_value(
                        serving.carrier_id, neighbor.carrier_id,
                        "cellIndividualOffset", _DEFAULT_CIO,
                    )
                )
                if neighbor_rsrp > bar:
                    a3_timers[neighbor.carrier_id] = (
                        a3_timers.get(neighbor.carrier_id, 0) + 1
                    )
                    ttt_ms = self._pair_value(
                        serving.carrier_id, neighbor.carrier_id,
                        "timeToTriggerA3", _DEFAULT_TIME_TO_TRIGGER_MS,
                    )
                    if a3_timers[neighbor.carrier_id] * STEP_MS >= ttt_ms:
                        fired = neighbor
                        break
                else:
                    a3_timers.pop(neighbor.carrier_id, None)

            if fired is not None:
                ping_pong = (
                    fired.carrier_id in last_left
                    and step - last_left[fired.carrier_id]
                    <= PING_PONG_WINDOW_STEPS
                )
                result.handovers.append(
                    HandoverEvent(
                        step=step,
                        source=serving.carrier_id,
                        target=fired.carrier_id,
                        ping_pong=ping_pong,
                    )
                )
                last_left[serving.carrier_id] = step
                serving = fired
                a3_timers.clear()
            elif serving_rsrp < serving_qrx:
                # Out of coverage with no handover fired: radio link failure.
                result.radio_link_failures += 1
                serving = self._initial_carrier(location)
                a3_timers.clear()

            result.serving_history.append(
                serving.carrier_id if serving else None
            )
        return result
