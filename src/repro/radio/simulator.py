"""The radio simulator: users → selection → load balancing → KPIs.

Scopes to a set of eNodeBs (a whole market or a launch neighborhood),
places a UE population, connects each UE per carrier layer management,
runs IFLB rounds, and reports per-carrier KPIs.  Deterministic per
seed, so a pre-change/post-change comparison isolates the effect of the
configuration delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config.store import ConfigurationStore
from repro.netmodel.carrier import Carrier
from repro.netmodel.enodeb import ENodeB
from repro.netmodel.identifiers import CarrierId
from repro.netmodel.network import Network
from repro.radio.kpi import CarrierKPI, network_kpis
from repro.radio.loadbalance import Assignment, rebalance
from repro.radio.selection import select_carrier
from repro.radio.users import UserEquipment, place_users


@dataclass
class SimulationReport:
    """Everything one simulation run produced."""

    kpis: Dict[CarrierId, CarrierKPI]
    users_total: int
    users_connected: int
    users_unserved: int
    handovers: int

    @property
    def connection_rate(self) -> float:
        if self.users_total == 0:
            return 1.0
        return self.users_connected / self.users_total

    def unhealthy_carriers(self) -> List[CarrierId]:
        return [cid for cid, kpi in self.kpis.items() if not kpi.healthy]

    def kpi_of(self, carrier_id: CarrierId) -> Optional[CarrierKPI]:
        return self.kpis.get(carrier_id)


class RadioSimulator:
    """Simulates the radio behaviour of a set of eNodeBs."""

    def __init__(
        self,
        network: Network,
        store: ConfigurationStore,
        enodebs: Optional[Sequence[ENodeB]] = None,
        seed: int = 0,
        density_factor: float = 1.0,
    ) -> None:
        self.network = network
        self.store = store
        self.enodebs = list(enodebs) if enodebs is not None else list(
            network.enodebs()
        )
        self.seed = seed
        self.density_factor = density_factor
        self._carriers: List[Carrier] = [
            carrier for enodeb in self.enodebs for carrier in enodeb.carriers()
        ]

    @property
    def carriers(self) -> List[Carrier]:
        return list(self._carriers)

    def run(self, lb_rounds: int = 2) -> SimulationReport:
        """One full simulation pass."""
        users = place_users(
            self.enodebs, seed=self.seed, density_factor=self.density_factor
        )
        assignment = Assignment()
        offered: Dict[CarrierId, int] = {}
        connections: Dict[CarrierId, int] = {}
        unserved = 0
        for user in users:
            connected, first_choice = select_carrier(
                user, self._carriers, self.store, connections
            )
            if first_choice is not None:
                # "Offered" tracks the cell layer management steered the
                # UE to first, whether or not it had room.
                offered[first_choice.carrier_id] = (
                    offered.get(first_choice.carrier_id, 0) + 1
                )
            if connected is None:
                unserved += 1
                continue
            assignment.assign(user.index, connected.carrier_id)
            connections[connected.carrier_id] = (
                connections.get(connected.carrier_id, 0) + 1
            )

        handovers = rebalance(
            self.network, self.store, users, assignment, rounds=lb_rounds
        )
        kpis = network_kpis(
            self._carriers, self.store, users, assignment, offered
        )
        return SimulationReport(
            kpis=kpis,
            users_total=len(users),
            users_connected=len(users) - unserved,
            users_unserved=unserved,
            handovers=handovers,
        )
