"""Learning views over a dataset: per-parameter (keys, rows, labels).

The view turns a network + configuration store into the matrices of the
paper's formulation (Fig 6): predictor rows X (carrier attributes — for
pair-wise parameters, the concatenated attributes of both carriers) and
the predictee vector Y (one configuration parameter).
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro.config.parameters import ParameterSpec
from repro.config.store import ConfigurationStore, PairKey
from repro.netmodel.attributes import ATTRIBUTE_SCHEMA
from repro.netmodel.identifiers import CarrierId, MarketId
from repro.netmodel.network import Network
from repro.types import AttributeValue, ParameterValue

Row = Tuple[AttributeValue, ...]


class ParameterSamples:
    """All samples of one parameter: aligned keys, rows and labels.

    ``rows`` materialize lazily: the LOO evaluation sweep votes from the
    engine's stored cells and only ever touches ``keys``/``labels``, so
    building one attribute tuple per sample up front was pure overhead
    there.  Paths that do train raw learners (``compare_learners``)
    trigger the build on first access and it is cached thereafter.
    """

    __slots__ = ("parameter", "keys", "labels", "_rows", "_row_builder")

    def __init__(
        self,
        parameter: str,
        keys: List[Hashable],
        labels: List[ParameterValue],
        rows: Optional[List[Row]] = None,
        row_builder: Optional[Callable[[Hashable], Row]] = None,
    ) -> None:
        if rows is None and row_builder is None:
            raise ValueError("either rows or row_builder is required")
        self.parameter = parameter
        self.keys = keys
        self.labels = labels
        self._rows = rows
        self._row_builder = row_builder

    @property
    def rows(self) -> List[Row]:
        if self._rows is None:
            builder = self._row_builder
            self._rows = [builder(key) for key in self.keys]
        return self._rows

    def __len__(self) -> int:
        return len(self.keys)

    def subset(self, indices: Sequence[int]) -> "ParameterSamples":
        """An index-selected view; stays lazy if rows were never built."""
        return ParameterSamples(
            parameter=self.parameter,
            keys=[self.keys[i] for i in indices],
            labels=[self.labels[i] for i in indices],
            rows=(
                None
                if self._rows is None
                else [self._rows[i] for i in indices]
            ),
            row_builder=self._row_builder,
        )


class LearningView:
    """Builds and caches per-parameter sample sets from a network."""

    def __init__(self, network: Network, store: ConfigurationStore):
        self.network = network
        self.store = store
        self._row_cache: dict = {}

    def carrier_row(self, carrier_id: CarrierId) -> Row:
        row = self._row_cache.get(carrier_id)
        if row is None:
            row = self.network.carrier(carrier_id).attributes.as_tuple()
            self._row_cache[carrier_id] = row
        return row

    def pair_row(self, pair: PairKey) -> Row:
        return self.carrier_row(pair.carrier) + self.carrier_row(pair.neighbor)

    def column_names(self, spec: ParameterSpec) -> Tuple[str, ...]:
        if spec.is_pairwise:
            return tuple(f"own.{n}" for n in ATTRIBUTE_SCHEMA.names) + tuple(
                f"nbr.{n}" for n in ATTRIBUTE_SCHEMA.names
            )
        return ATTRIBUTE_SCHEMA.names

    def samples(
        self,
        parameter: str,
        market_id: Optional[MarketId] = None,
    ) -> ParameterSamples:
        """Samples of one parameter, optionally restricted to a market.

        For pair-wise parameters the market filter applies to the source
        carrier of each pair (the carrier on which the value is
        configured).
        """
        spec = self.store.catalog.spec(parameter)
        if spec.is_pairwise:
            values = self.store.pairwise_values(parameter)
            keys: List[Hashable] = sorted(
                k
                for k in values
                if market_id is None or k.carrier.market == market_id
            )
            row_builder: Callable[[Hashable], Row] = self.pair_row
        else:
            values = self.store.singular_values(parameter)
            keys = sorted(
                k for k in values if market_id is None or k.market == market_id
            )
            row_builder = self.carrier_row
        return ParameterSamples(
            parameter=parameter,
            keys=keys,
            labels=[values[k] for k in keys],
            row_builder=row_builder,
        )
