"""Evaluation harness.

Implements the paper's methodology (section 4.2): every carrier is
treated as a new carrier with the rest of the network as training data;
accuracy is the fraction of recommendations matching the currently
configured values.  Also provides the data analyses of section 2.6
(variability, skewness) and the engineer-validation oracle for labeling
mismatches (section 4.3.3 / Fig 12).
"""

from repro.eval.accuracy import LearnerScore, ParameterAccuracy
from repro.eval.dataset import LearningView, ParameterSamples
from repro.eval.engineers import MismatchLabel, label_mismatches
from repro.eval.runner import EvaluationRunner, LocalVsGlobalResult
from repro.eval.skewness import skewness, skewness_classification, skewness_per_parameter
from repro.eval.splits import kfold_indices, stratified_sample_indices
from repro.eval.variability import distinct_values_per_parameter, variability_by_market

__all__ = [
    "LearnerScore",
    "ParameterAccuracy",
    "LearningView",
    "ParameterSamples",
    "MismatchLabel",
    "label_mismatches",
    "EvaluationRunner",
    "LocalVsGlobalResult",
    "skewness",
    "skewness_classification",
    "skewness_per_parameter",
    "kfold_indices",
    "stratified_sample_indices",
    "distinct_values_per_parameter",
    "variability_by_market",
]
