"""Variability analysis: distinct values per configuration parameter.

Section 2.6 / Figs 2-3 of the paper: the number of distinct values a
parameter takes, network-wide and per market.  High variability is what
makes rule-books insufficient and recommendation necessary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.config.store import ConfigurationStore
from repro.netmodel.identifiers import MarketId
from repro.netmodel.network import Network


def _values_for(store: ConfigurationStore, parameter: str) -> Iterable:
    spec = store.catalog.spec(parameter)
    if spec.is_pairwise:
        return store.pairwise_values(parameter).items()
    return store.singular_values(parameter).items()


def distinct_values_per_parameter(
    store: ConfigurationStore,
    parameters: Optional[Iterable[str]] = None,
) -> Dict[str, int]:
    """parameter → number of distinct configured values (Fig 2)."""
    names = (
        list(parameters)
        if parameters is not None
        else [s.name for s in store.catalog.range_parameters()]
    )
    return {
        name: len({value for _, value in _values_for(store, name)})
        for name in names
    }


def variability_by_market(
    network: Network,
    store: ConfigurationStore,
    parameters: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, int]]:
    """market name → parameter → distinct values in that market (Fig 3).

    For pair-wise parameters a value belongs to the market of the source
    carrier of its pair.
    """
    names = (
        list(parameters)
        if parameters is not None
        else [s.name for s in store.catalog.range_parameters()]
    )
    market_names = {m.market_id: m.name for m in network.markets}
    out: Dict[str, Dict[str, int]] = {
        m.name: {} for m in network.markets
    }
    for parameter in names:
        spec = store.catalog.spec(parameter)
        per_market: Dict[MarketId, set] = {}
        for key, value in _values_for(store, parameter):
            market = key.carrier.market if spec.is_pairwise else key.market
            per_market.setdefault(market, set()).add(value)
        for market_id, values in per_market.items():
            out[market_names[market_id]][parameter] = len(values)
    return out
