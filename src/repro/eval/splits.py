"""Cross-validation splits and sampling helpers."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.rng import derive


def kfold_indices(
    n: int, k: int, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train, test) index arrays for k-fold cross-validation.

    The paper uses "the standard machine learning cross-validation
    approach" for the global-learner comparison.  Folds partition a
    shuffled permutation; every sample appears in exactly one test fold.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} samples")
    order = derive(seed, "kfold").permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def uniform_sample_indices(n: int, size: int, seed: int = 0) -> List[int]:
    """A uniform random sample of at most ``size`` indices out of ``n``.

    This is the estimator the accuracy evaluations use: the paper's
    accuracy is over *all* carriers, so a subsample must be uniform —
    stratifying by label would over-represent rare values and bias the
    estimate down.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if size >= n:
        return list(range(n))
    rng = derive(seed, "uniform-sample")
    picked = rng.choice(n, size=size, replace=False)
    return sorted(int(i) for i in picked)


def stratified_sample_indices(
    labels: Sequence[object], size: int, seed: int = 0
) -> List[int]:
    """A label-stratified sample of at most ``size`` indices.

    Every label keeps at least one representative, and remaining slots
    are allocated proportionally — so rare parameter values stay in the
    evaluation sample, which matters for skewed predictees.
    """
    n = len(labels)
    if size >= n:
        return list(range(n))
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = derive(seed, "stratified-sample")
    by_label: dict = {}
    for i, label in enumerate(labels):
        by_label.setdefault(label, []).append(i)
    if size < len(by_label):
        # Not even one slot per label: sample labels uniformly.
        picked_labels = rng.choice(len(by_label), size=size, replace=False)
        label_list = list(by_label)
        return sorted(
            by_label[label_list[i]][int(rng.integers(0, len(by_label[label_list[i]])))]
            for i in picked_labels
        )
    out: List[int] = []
    # One guaranteed representative per label.
    for indices in by_label.values():
        out.append(indices[int(rng.integers(0, len(indices)))])
    taken = set(out)
    remaining = [i for i in range(n) if i not in taken]
    extra = size - len(out)
    if extra > 0:
        picked = rng.choice(len(remaining), size=extra, replace=False)
        out.extend(remaining[int(i)] for i in picked)
    return sorted(out)
