"""Engineer-validation oracle for mismatch labeling (Fig 12).

Section 4.3.3: market engineers labeled a sample of ~55K recommendation
mismatches into three categories — (a) *update learner* (Auric was
missing attributes like terrain, or the current value was an in-flight
certified rollout not yet in the voting majority), (b) *good
recommendation* (the network had been left in a sub-optimal state by a
past trial; the recommendation was pushed as a config change), and (c)
*inconclusive* (a field trial would be needed to judge).

With real engineers unavailable, the oracle consults the generator's
value provenance — which encodes exactly those three causes — and labels
each mismatch the way the corresponding engineer would:

* ``TRIAL_LEFTOVER`` value and the recommendation equals the intended
  (pre-trial) value → *good recommendation*;
* ``ROLLOUT_INFLIGHT`` or ``HIDDEN_FACTOR`` value → *update learner*;
* everything else (engineer-tuned one-offs, locally-tuned cells the vote
  diluted, plain model error) → *inconclusive*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

from repro.datagen.provenance import Provenance, ProvenanceMap
from repro.types import ParameterValue


class MismatchLabel(enum.Enum):
    """The three Fig 12 labels."""

    UPDATE_LEARNER = "update-learner"
    GOOD_RECOMMENDATION = "good-recommendation"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class LabeledMismatch:
    """One labeled mismatch."""

    parameter: str
    key: Hashable
    current: ParameterValue
    recommended: ParameterValue
    label: MismatchLabel


def label_mismatch(
    provenance: ProvenanceMap,
    parameter: str,
    key: Hashable,
    current: ParameterValue,
    recommended: ParameterValue,
) -> MismatchLabel:
    """Label a single (current != recommended) mismatch."""
    if current == recommended:
        raise ValueError("not a mismatch: current equals recommended")
    record = provenance.get(parameter, key)
    if (
        record.provenance is Provenance.TRIAL_LEFTOVER
        and record.intended == recommended
    ):
        return MismatchLabel.GOOD_RECOMMENDATION
    if record.provenance in (
        Provenance.ROLLOUT_INFLIGHT,
        Provenance.HIDDEN_FACTOR,
    ):
        return MismatchLabel.UPDATE_LEARNER
    return MismatchLabel.INCONCLUSIVE


def label_mismatches(
    provenance: ProvenanceMap,
    mismatches: List[Tuple[str, Hashable, ParameterValue, ParameterValue]],
) -> Tuple[List[LabeledMismatch], Dict[MismatchLabel, int]]:
    """Label a batch of (parameter, key, current, recommended) mismatches.

    Returns the labeled list plus the Fig 12 label counts.
    """
    labeled: List[LabeledMismatch] = []
    counts: Dict[MismatchLabel, int] = {label: 0 for label in MismatchLabel}
    for parameter, key, current, recommended in mismatches:
        label = label_mismatch(provenance, parameter, key, current, recommended)
        labeled.append(LabeledMismatch(parameter, key, current, recommended, label))
        counts[label] += 1
    return labeled, counts
