"""Skewness analysis (section 2.6 / Fig 4).

The paper computes, per parameter, the skewness of the distribution of
its values across the 28 markets, using the standard third-moment
formula, and classifies |skew| > 1 as highly skewed, 0.5 < |skew| <= 1
as moderately skewed, and |skew| <= 0.5 as approximately symmetric.
The paper reports 33 of 65 parameters highly skewed and 12 moderately.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.config.store import ConfigurationStore

HIGH_SKEW_THRESHOLD = 1.0
MODERATE_SKEW_THRESHOLD = 0.5


def skewness(values: Sequence[float]) -> float:
    """Population skewness: E[(X-mean)^3] / std^3 (the paper's formula)."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot compute skewness of zero values")
    centered = x - x.mean()
    second = float(np.mean(centered**2))
    denominator = second**1.5
    # Guard both exact-zero variance and subnormal underflow of the
    # 3/2 power (hypothesis found values like 5e-135 whose squared mean
    # is positive but whose 1.5 power underflows to zero).
    if denominator <= 0.0:
        return 0.0
    third = float(np.mean(centered**3))
    return third / denominator


def skewness_classification(value: float) -> str:
    """"high" / "moderate" / "symmetric" per the paper's thresholds."""
    magnitude = abs(value)
    if magnitude > HIGH_SKEW_THRESHOLD:
        return "high"
    if magnitude > MODERATE_SKEW_THRESHOLD:
        return "moderate"
    return "symmetric"


def skewness_per_parameter(
    store: ConfigurationStore,
    parameters: Optional[Iterable[str]] = None,
) -> Dict[str, float]:
    """parameter → skewness of its configured numeric values (Fig 4)."""
    names = (
        list(parameters)
        if parameters is not None
        else [s.name for s in store.catalog.range_parameters()]
    )
    out: Dict[str, float] = {}
    for name in names:
        spec = store.catalog.spec(name)
        mapping = (
            store.pairwise_values(name)
            if spec.is_pairwise
            else store.singular_values(name)
        )
        values = [float(v) for v in mapping.values()]
        if values:
            out[name] = skewness(values)
    return out


def classification_counts(skews: Dict[str, float]) -> Dict[str, int]:
    """Counts of high / moderate / symmetric parameters."""
    counts = {"high": 0, "moderate": 0, "symmetric": 0}
    for value in skews.values():
        counts[skewness_classification(value)] += 1
    return counts
