"""Accuracy record types for learner comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class LearnerScore:
    """One learner's accuracy on one parameter (one market, one split)."""

    learner: str
    parameter: str
    accuracy: float
    samples: int
    distinct_values: int
    market: Optional[str] = None


@dataclass
class ParameterAccuracy:
    """Aggregate of learner scores, grouped however a figure needs."""

    scores: List[LearnerScore] = field(default_factory=list)

    def add(self, score: LearnerScore) -> None:
        self.scores.append(score)

    def mean_by_learner(self) -> Dict[str, float]:
        """Learner → unweighted mean accuracy across parameters."""
        sums: Dict[str, List[float]] = {}
        for score in self.scores:
            sums.setdefault(score.learner, []).append(score.accuracy)
        return {name: sum(v) / len(v) for name, v in sums.items()}

    def mean_by_learner_and_market(self) -> Dict[str, Dict[str, float]]:
        """market → learner → mean accuracy (the Table 4 layout)."""
        grouped: Dict[str, ParameterAccuracy] = {}
        for score in self.scores:
            market = score.market or "all"
            grouped.setdefault(market, ParameterAccuracy()).add(score)
        return {m: acc.mean_by_learner() for m, acc in grouped.items()}

    def by_parameter(self, learner: str) -> Dict[str, float]:
        """parameter → accuracy for one learner (the Fig 10 series)."""
        return {
            s.parameter: s.accuracy for s in self.scores if s.learner == learner
        }

    def __len__(self) -> int:
        return len(self.scores)
