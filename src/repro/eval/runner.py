"""The evaluation runner: learner comparisons and LOO accuracy.

Two evaluation modes, matching the paper's two experiments:

* :meth:`EvaluationRunner.compare_learners` — k-fold cross-validation of
  the five global learners on each parameter (Table 4, Fig 10).
* :meth:`EvaluationRunner.loo_accuracy` — leave-one-out accuracy of the
  Auric engine (CF), globally or locally scoped (section 4.3.2, Fig 11),
  collecting mismatches for the Fig 12 labeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.auric import AuricEngine
from repro.datagen.generator import SyntheticDataset
from repro.eval.accuracy import LearnerScore, ParameterAccuracy
from repro.eval.dataset import LearningView, ParameterSamples
from repro.eval.splits import kfold_indices, uniform_sample_indices
from repro.learners.base import Learner
from repro.learners.metrics import accuracy_score
from repro.netmodel.identifiers import MarketId
from repro.obs import tracing
from repro.rng import derive, derive_seed
from repro.types import ParameterValue

Mismatch = Tuple[str, Hashable, ParameterValue, ParameterValue]


def evaluate_loo_chunk(
    engine: AuricEngine,
    parameter: str,
    samples: ParameterSamples,
    indices: Sequence[int],
    scopes: Tuple[str, ...],
) -> Tuple[Dict[str, int], Dict[str, List[Mismatch]]]:
    """Leave-one-out-evaluate one parameter over a chunk of target indices.

    The shared inner loop of the serial sweep and the process-pool
    workers (:mod:`repro.parallel.evaluate`): per scope, bulk-recommend
    the chunk's targets with the target's own value excluded and count
    hits, collecting mismatches in target order.  Returns
    ``(hits per scope, mismatches per scope)``.
    """
    hits = {scope: 0 for scope in scopes}
    mismatches: Dict[str, List[Mismatch]] = {scope: [] for scope in scopes}
    keys = [samples.keys[i] for i in indices]
    with tracing.span(
        "eval.loo_chunk", parameter=parameter, targets=len(indices)
    ):
        for scope in scopes:
            recommendations = engine.recommend_for_targets(
                parameter, keys, local=(scope == "local"), leave_one_out=True
            )
            for i, rec in zip(indices, recommendations):
                truth = samples.labels[i]
                if rec.value == truth:
                    hits[scope] += 1
                else:
                    mismatches[scope].append(
                        (parameter, samples.keys[i], truth, rec.value)
                    )
    return hits, mismatches


@dataclass
class LocalVsGlobalResult:
    """LOO accuracy of the CF engine, local vs global voting."""

    parameter_accuracy_local: Dict[str, float] = field(default_factory=dict)
    parameter_accuracy_global: Dict[str, float] = field(default_factory=dict)
    mismatches_local: List[Mismatch] = field(default_factory=list)
    mismatches_global: List[Mismatch] = field(default_factory=list)
    evaluated: int = 0

    def mean_local(self) -> float:
        values = list(self.parameter_accuracy_local.values())
        return sum(values) / len(values) if values else float("nan")

    def mean_global(self) -> float:
        values = list(self.parameter_accuracy_global.values())
        return sum(values) / len(values) if values else float("nan")


class EvaluationRunner:
    """Runs the paper's evaluations over a synthetic dataset."""

    def __init__(self, dataset: SyntheticDataset, seed: int = 11):
        self.dataset = dataset
        self.view = LearningView(dataset.network, dataset.store)
        self.seed = seed
        self._samples_cache: Dict[Tuple, ParameterSamples] = {}

    def samples(
        self, parameter: str, market_id: Optional[MarketId] = None
    ) -> ParameterSamples:
        """Per-(parameter, market) sample sets, cached for the runner's
        lifetime — the LOO planner and sweep share one key sort."""
        cache_key = (parameter, market_id)
        samples = self._samples_cache.get(cache_key)
        if samples is None:
            samples = self.view.samples(parameter, market_id)
            self._samples_cache[cache_key] = samples
        return samples

    # -- global-learner comparison (Table 4 / Fig 10) ----------------------

    def compare_learners(
        self,
        factories: Mapping[str, Callable[[], Learner]],
        parameters: Sequence[str],
        market_id: Optional[MarketId] = None,
        folds: int = 3,
        max_samples_per_parameter: Optional[int] = 4000,
    ) -> ParameterAccuracy:
        """k-fold accuracy of each learner on each parameter.

        ``max_samples_per_parameter`` caps per-parameter sample counts
        with a *uniform* subsample: the paper's accuracy is an
        all-carriers population metric, so the estimator must not skew
        the label distribution.
        """
        market_name = (
            self.dataset.network.market(market_id).name
            if market_id is not None
            else None
        )
        results = ParameterAccuracy()
        for parameter in parameters:
            samples = self.samples(parameter, market_id)
            if len(samples) < folds * 2:
                continue
            if (
                max_samples_per_parameter is not None
                and len(samples) > max_samples_per_parameter
            ):
                picked = uniform_sample_indices(
                    len(samples), max_samples_per_parameter, seed=self.seed
                )
                samples = samples.subset(picked)
            distinct = len(set(samples.labels))
            for learner_name, factory in factories.items():
                hits = 0
                total = 0
                for train, test in kfold_indices(len(samples), folds, self.seed):
                    learner = factory()
                    learner.fit(
                        [samples.rows[i] for i in train],
                        [samples.labels[i] for i in train],
                    )
                    predictions = learner.predict([samples.rows[i] for i in test])
                    hits += sum(
                        1
                        for i, p in zip(test, predictions)
                        if p == samples.labels[i]
                    )
                    total += len(test)
                results.add(
                    LearnerScore(
                        learner=learner_name,
                        parameter=parameter,
                        accuracy=hits / total,
                        samples=len(samples),
                        distinct_values=distinct,
                        market=market_name,
                    )
                )
        return results

    # -- leave-one-out CF evaluation (sections 4.3.2-4.3.3) -----------------

    def loo_plan(
        self,
        parameters: Sequence[str],
        market_id: Optional[MarketId] = None,
        max_targets_per_parameter: Optional[int] = 2000,
    ) -> List[Tuple[str, List[int]]]:
        """The LOO evaluation plan: ``(parameter, target indices)`` pairs.

        Target subsampling happens here, in the master, from a stable
        per-parameter derived seed — so the plan is reproducible across
        processes and interpreter runs (``hash()``-free) and the
        process-pool path evaluates exactly the targets the serial path
        would.
        """
        plan: List[Tuple[str, List[int]]] = []
        for parameter in parameters:
            samples = self.samples(parameter, market_id)
            if not len(samples):
                continue
            indices = list(range(len(samples)))
            if (
                max_targets_per_parameter is not None
                and len(indices) > max_targets_per_parameter
            ):
                indices = uniform_sample_indices(
                    len(indices), max_targets_per_parameter,
                    seed=derive_seed(self.seed, f"loo-targets:{parameter}"),
                )
            plan.append((parameter, indices))
        return plan

    def loo_accuracy(
        self,
        engine: AuricEngine,
        parameters: Sequence[str],
        market_id: Optional[MarketId] = None,
        max_targets_per_parameter: Optional[int] = 2000,
        scopes: Tuple[str, ...] = ("local", "global"),
        jobs: int = 1,
    ) -> LocalVsGlobalResult:
        """Leave-one-out accuracy of the fitted Auric engine.

        Each evaluated target's own value is excluded from the vote; the
        recommendation is compared against the currently configured
        value.  Mismatches are collected per scope for Fig 12 labeling.

        ``jobs`` fans the evaluation out across a process pool
        (:mod:`repro.parallel.evaluate`); the sampled target indices are
        decided here first, so the parallel result — accuracies and
        mismatch lists alike — is identical to ``jobs=1``.
        """
        plan = self.loo_plan(parameters, market_id, max_targets_per_parameter)
        if jobs != 1 and plan:
            from repro.parallel.evaluate import parallel_loo_accuracy

            with tracing.span("eval.loo", parameters=len(plan), jobs=jobs):
                return parallel_loo_accuracy(
                    engine, plan, market_id, scopes, jobs
                )
        with tracing.span("eval.loo", parameters=len(plan), jobs=1):
            return self._loo_serial(engine, plan, market_id, scopes)

    def _loo_serial(
        self,
        engine: AuricEngine,
        plan: List[Tuple[str, List[int]]],
        market_id: Optional[MarketId],
        scopes: Tuple[str, ...],
    ) -> LocalVsGlobalResult:
        result = LocalVsGlobalResult()
        for parameter, indices in plan:
            samples = self.samples(parameter, market_id)
            hits, mismatches = evaluate_loo_chunk(
                engine, parameter, samples, indices, scopes
            )
            for scope in scopes:
                if scope == "local":
                    result.mismatches_local.extend(mismatches[scope])
                else:
                    result.mismatches_global.extend(mismatches[scope])
            n = len(indices)
            if "local" in scopes:
                result.parameter_accuracy_local[parameter] = hits["local"] / n
            if "global" in scopes:
                result.parameter_accuracy_global[parameter] = hits["global"] / n
            result.evaluated += n
        return result

    def shadow_audit(
        self,
        engine: AuricEngine,
        parameters: Optional[Sequence[str]] = None,
        max_targets_per_parameter: int = 50,
        scope: str = "global",
    ) -> Dict[str, float]:
        """A cheap LOO spot-check feeding the accuracy SLO.

        Samples a small per-parameter target set (deterministic via the
        runner's derived seeds) and leave-one-out-evaluates the *fitted*
        engine against the currently configured values — the shadow
        traffic a live deployment would replay off the serving path.
        Publishes ``repro_shadow_audit_accuracy`` (mean over parameters)
        and per-parameter ``repro_shadow_audit_parameter_accuracy``
        gauges on the global registry, which the stock
        ``shadow-accuracy`` SLO rule (:mod:`repro.obs.slo`) reads.
        Returns the per-parameter accuracies.
        """
        from repro.obs import metrics

        if parameters is None:
            parameters = engine.fitted_parameters()
        with tracing.span(
            "eval.shadow_audit", parameters=len(parameters)
        ) as sp:
            result = self.loo_accuracy(
                engine,
                parameters,
                max_targets_per_parameter=max_targets_per_parameter,
                scopes=(scope,),
            )
            accuracies = (
                result.parameter_accuracy_local
                if scope == "local"
                else result.parameter_accuracy_global
            )
            per_parameter = metrics.gauge(
                "repro_shadow_audit_parameter_accuracy",
                "Shadow LOO audit accuracy per parameter",
                labelnames=("parameter",),
            )
            for name, accuracy in accuracies.items():
                per_parameter.labels(parameter=name).set(accuracy)
            if accuracies:
                mean = sum(accuracies.values()) / len(accuracies)
                metrics.gauge(
                    "repro_shadow_audit_accuracy",
                    "Mean shadow LOO audit accuracy across parameters",
                ).set(mean)
                sp.set("accuracy", round(mean, 4))
            sp.set("targets", result.evaluated)
            return dict(accuracies)

    def loo_accuracy_by_market(
        self,
        engine: AuricEngine,
        parameter: str,
        max_targets_per_market: int = 500,
        scope: str = "local",
        jobs: int = 1,
    ) -> Dict[str, float]:
        """LOO accuracy of one parameter per market (the Fig 11 series)."""
        out: Dict[str, float] = {}
        for market in self.dataset.network.markets:
            result = self.loo_accuracy(
                engine,
                [parameter],
                market_id=market.market_id,
                max_targets_per_parameter=max_targets_per_market,
                scopes=(scope,),
                jobs=jobs,
            )
            accuracy = (
                result.parameter_accuracy_local
                if scope == "local"
                else result.parameter_accuracy_global
            ).get(parameter)
            if accuracy is not None:
                out[market.name] = accuracy
        return out
