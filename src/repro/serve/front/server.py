"""The asyncio HTTP surface of the serving front end.

A deliberately small, dependency-free HTTP/1.1 server (keep-alive,
``Content-Length`` framing) — the protocol layer is not the point; the
serving discipline behind it is:

* ``POST /recommend`` — one unified request.  Parsed with structured
  validation (400s name the field), routed by consistent hash, gated
  by admission control (503s carry ``retry_after_ms``), coalesced into
  the shard's micro-batch window.
* ``POST /batch`` — a request batch; split per shard and submitted
  directly (the client already batched — no window).
* ``POST /admin/swap`` — refit (or reuse the snapshot) and hot-swap
  every shard with zero downtime; returns the swap report.
* ``POST /admin/invalidate`` — drop cached votes (all or one
  parameter) on every shard.
* ``GET /healthz`` / ``GET /stats`` / ``GET /metrics`` — liveness, the
  shard-set counters, and the Prometheus exposition of the process
  registry (exemplars included).
* ``GET /debug/trace/<trace_id>`` / ``GET /debug/flight`` — the
  reassembled span tree of one request, and the flight recorder's
  black-box ring.
* ``GET /debug/generations`` — the engine-lifecycle timeline from the
  process journal: which generation is serving, how it came to be
  (fit → refresh → hot swap → ...), and the raw recent records.

Every recommendation request is traced end to end: the server accepts
and emits W3C ``traceparent``, answers with a ``Server-Timing`` header
plus a ``timings`` body field (queue/coalesce/engine/serialize), and
appends a digest to the flight recorder.

The event loop owns parsing, routing, admission and coalescing; shard
worker threads own the engine calls; completion crosses back with
``call_soon_threadsafe``.  :func:`serve_in_thread` hosts the loop in a
daemon thread for synchronous callers (the CLI, the benchmark, CI).
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.recommendation import RecommendResult
from repro.obs import flight
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.serve.front.admission import AdmissionController, OverloadError
from repro.serve.front.coalesce import Coalescer
from repro.serve.front.routing import shard_key
from repro.serve.front.shards import EngineShard, ShardSet
from repro.serve.front.timings import RequestTimings
from repro.serve.validation import (
    RequestValidationError,
    unified_request_from_dict,
    unified_requests_from_json,
)

__all__ = ["FrontConfig", "FrontServer", "ServerHandle", "serve_in_thread"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


@dataclass
class FrontConfig:
    """Tuning knobs of the front end (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on the handle
    shards: int = 2
    max_inflight: int = 512
    batch_window_ms: float = 2.0
    max_batch: int = 32
    max_queue: int = 256
    cache_size: int = 4096
    #: Default parameter restriction applied to requests that do not
    #: name their own (None = the service's default set).
    parameters: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch window must be >= 0")


@dataclass
class _ConnState:
    requests: int = 0
    keep_alive: bool = True


class FrontServer:
    """One front end over one :class:`ShardSet`."""

    def __init__(self, shard_set: ShardSet, config: Optional[FrontConfig] = None):
        self.shard_set = shard_set
        self.config = config or FrontConfig()
        self._admission = AdmissionController(self.config.max_inflight)
        self._coalescers: Dict[int, Coalescer] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._requests_counter = obs_metrics.counter(
            "repro_front_requests_total",
            "Front-end requests by endpoint and outcome",
            labelnames=("endpoint", "status"),
        )
        self._latency_histogram = obs_metrics.histogram(
            "repro_front_request_seconds",
            "Front-end request latency (admission to response)",
            buckets=obs_metrics.DEFAULT_LATENCY_BUCKETS,
        )
        #: Span store backing ``/debug/trace/<id>``; attached to the
        #: global tracer while the server runs (only when tracing is
        #: enabled at start).
        self._trace_buffer: Optional[tracing.RingBufferExporter] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._loop = asyncio.get_event_loop()
        tracer = tracing.get_tracer()
        if tracer is not None:
            self._trace_buffer = tracing.RingBufferExporter(capacity=8192)
            tracer.exporters.append(self._trace_buffer)
        for shard in self.shard_set.shards:
            self._coalescers[shard.shard_id] = Coalescer(
                self._make_flush(shard),
                window_s=self.config.batch_window_ms / 1000.0,
                max_batch=self.config.max_batch,
                loop=self._loop,
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit in readuntil forever; cancel
        # them so the loop can close cleanly.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for coalescer in self._coalescers.values():
            coalescer.close()
        if self._trace_buffer is not None:
            tracer = tracing.get_tracer()
            if tracer is not None and self._trace_buffer in tracer.exporters:
                tracer.exporters.remove(self._trace_buffer)

    @property
    def port(self) -> Optional[int]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    # -- shard dispatch ------------------------------------------------------

    def _make_flush(self, shard: EngineShard):
        """The coalescer flush: hand one micro-batch to the shard."""

        def flush(batch):
            requests = [entry.request for entry in batch]
            futures = [entry.future for entry in batch]
            traces = [entry.trace for entry in batch]
            timings = [entry.timings for entry in batch]

            def on_done(results, error):
                # Runs on the shard worker thread.
                self._loop.call_soon_threadsafe(
                    self._resolve_batch, shard, futures, results, error
                )

            try:
                shard.submit_batch(requests, on_done, traces, timings)
            except queue.Full:
                shed = self._admission.shed_queue_full(
                    shard.shard_id, shard.max_queue, shard.depth
                )
                for future in futures:
                    if not future.done():
                        future.set_exception(
                            OverloadError(
                                shed.reason, shed.limit, shed.depth,
                                shed.retry_after_ms, shed.shard,
                            )
                        )

        return flush

    def _resolve_batch(self, shard, futures, results, error) -> None:
        if error is not None:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result((shard.shard_id, result))

    async def _dispatch(
        self,
        request,
        context: Optional[Tuple[str, str]] = None,
        timings: Optional[RequestTimings] = None,
    ) -> Tuple[int, RecommendResult]:
        """Admit, coalesce and await one request's result.

        ``context`` is the request's ``front.request`` span context; it
        rides with the coalesced entry so the shard worker can re-root
        its spans, and the coalesce/queue waits are emitted as
        retroactive spans once the timings are complete.
        """
        shard = self.shard_set.shard_for(request)
        with tracing.span("front.admission", shard=shard.shard_id):
            self._admission.admit()
        started = time.perf_counter()
        try:
            outcome = await self._coalescers[shard.shard_id].submit(
                request, trace=context, timings=timings
            )
        finally:
            self._admission.release(
                latency_s=time.perf_counter() - started
            )
        if context is not None and timings is not None and tracing.active():
            self._emit_wait_spans(context, timings, shard.shard_id)
        return outcome

    def _emit_wait_spans(
        self,
        context: Tuple[str, str],
        timings: RequestTimings,
        shard_id: int,
    ) -> None:
        """Retroactive ``front.coalesce`` / ``front.queue`` spans.

        The waits are only bounded after the shard worker dequeued the
        batch, so the spans are recorded after the fact, parented at
        the request's root span and placed on the wall clock via the
        timings anchor.
        """
        if timings.submitted is not None and timings.flushed is not None:
            tracing.record_span(
                "front.coalesce",
                context,
                timings.wall(timings.submitted),
                timings.coalesce_s,
                shard=shard_id,
            )
        if timings.flushed is not None and timings.dequeued is not None:
            tracing.record_span(
                "front.queue",
                context,
                timings.wall(timings.flushed),
                timings.queue_s,
                shard=shard_id,
            )

    def _result_body(
        self,
        shard_id: int,
        result: RecommendResult,
        timings: Optional[RequestTimings] = None,
    ) -> Dict:
        serialize_started = time.perf_counter()
        body = {
            "target": result.recommendation.target,
            "values": {
                name: rec.value
                for name, rec in sorted(
                    result.recommendation.recommendations.items()
                )
            },
            "scopes": result.scope_counts(),
            "shard": shard_id,
            "generation": self.shard_set.generation,
            "duration_ms": round(result.duration_s * 1000.0, 3),
            "explain": result.explain.to_dict() if result.explain else None,
        }
        if timings is not None:
            if timings.engine_s is None:
                timings.engine_s = result.duration_s
            else:
                timings.engine_s += result.duration_s
            serialize_s = time.perf_counter() - serialize_started
            timings.serialize_s = (timings.serialize_s or 0.0) + serialize_s
        return body

    # -- endpoints -----------------------------------------------------------

    async def _post_recommend(
        self,
        payload,
        context: Optional[Tuple[str, str]] = None,
        timings: Optional[RequestTimings] = None,
    ) -> Tuple[int, Dict]:
        request = unified_request_from_dict(
            payload, "request", self.config.parameters
        )
        shard_id, result = await self._dispatch(request, context, timings)
        body = self._result_body(shard_id, result, timings)
        body["market"] = str(shard_key(request))
        return 200, body

    async def _post_batch(
        self,
        payload,
        context: Optional[Tuple[str, str]] = None,
        timings: Optional[RequestTimings] = None,
    ) -> Tuple[int, Dict]:
        requests = unified_requests_from_json(payload, self.config.parameters)
        if not requests:
            return 200, {"results": []}
        # The client already batched: admit the whole batch, split it
        # per shard and submit directly — no coalescing window.  One
        # trace and one (aggregate) timings object cover the batch.
        with tracing.span("front.admission", batch=len(requests)):
            self._admission.admit(weight=len(requests))
        started = time.perf_counter()
        if timings is not None:
            timings.submitted = started
            timings.flushed = started
        try:
            groups: Dict[int, List[Tuple[int, object]]] = {}
            for position, request in enumerate(requests):
                shard = self.shard_set.shard_for(request)
                groups.setdefault(shard.shard_id, []).append(
                    (position, request)
                )
            shard_by_id = {s.shard_id: s for s in self.shard_set.shards}
            futures = []
            for shard_id, entries in groups.items():
                shard = shard_by_id[shard_id]
                group_future = self._loop.create_future()

                def on_done(results, error, _future=group_future):
                    self._loop.call_soon_threadsafe(
                        self._resolve_group, _future, results, error
                    )

                group_requests = [r for _, r in entries]
                try:
                    shard.submit_batch(
                        group_requests,
                        on_done,
                        traces=[context] * len(group_requests),
                        timings=[timings] * len(group_requests),
                    )
                except queue.Full:
                    raise self._admission.shed_queue_full(
                        shard.shard_id, shard.max_queue, shard.depth
                    ) from None
                futures.append((shard_id, entries, group_future))

            ordered: List[Optional[Dict]] = [None] * len(requests)
            for shard_id, entries, group_future in futures:
                results = await group_future
                for (position, _), result in zip(entries, results):
                    ordered[position] = self._result_body(
                        shard_id, result, timings
                    )
            return 200, {"results": ordered}
        finally:
            self._admission.release(
                weight=len(requests),
                latency_s=time.perf_counter() - started,
            )

    def _resolve_group(self, future, results, error) -> None:
        if future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(results)

    async def _post_swap(self, payload) -> Tuple[int, Dict]:
        payload = payload or {}
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 0:
            raise RequestValidationError(
                "jobs", "expected a non-negative integer"
            )
        report = await self._loop.run_in_executor(
            None, lambda: self.shard_set.hot_swap(jobs=jobs)
        )
        return 200, {
            "generation": report.generation,
            "refit_s": round(report.refit_s, 6),
            "swap_s": round(report.swap_s, 6),
            "warmed": report.warmed,
            "shards": report.shards,
        }

    async def _post_invalidate(self, payload) -> Tuple[int, Dict]:
        payload = payload or {}
        parameter = payload.get("parameter")
        if parameter is not None and not isinstance(parameter, str):
            raise RequestValidationError(
                "parameter", "expected a parameter name string"
            )
        dropped = self.shard_set.invalidate(parameter)
        return 200, {"dropped": dropped}

    def _get_healthz(self) -> Tuple[int, Dict]:
        return 200, {
            "status": "ok",
            "generation": self.shard_set.generation,
            "shards": len(self.shard_set.shards),
            "inflight": self._admission.inflight,
        }

    def _get_stats(self) -> Tuple[int, Dict]:
        stats = self.shard_set.stats()
        stats["inflight"] = self._admission.inflight
        stats["max_inflight"] = self.config.max_inflight
        stats["coalescer_pending"] = {
            shard_id: c.pending for shard_id, c in self._coalescers.items()
        }
        return 200, stats

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = _ConnState()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while state.keep_alive:
                head = await self._read_head(reader)
                if head is None:
                    break
                method, path, headers = head
                if headers.get("connection", "").lower() == "close":
                    state.keep_alive = False
                body = b""
                length = int(headers.get("content-length", "0") or "0")
                if length:
                    if length > _MAX_BODY_BYTES:
                        await self._respond(
                            writer, 413,
                            {"error": "payload_too_large", "limit": _MAX_BODY_BYTES},
                        )
                        break
                    body = await reader.readexactly(length)
                status, payload, extra = await self._route(
                    method, path, body, headers
                )
                state.requests += 1
                await self._respond(writer, status, payload, extra)
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_head(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object, Dict[str, str]]:
        started = time.perf_counter()
        endpoint = path.split("?", 1)[0]
        headers = headers or {}
        extra: Dict[str, str] = {}
        try:
            if method == "GET":
                if endpoint == "/healthz":
                    status, payload = self._get_healthz()
                elif endpoint == "/stats":
                    status, payload = self._get_stats()
                elif endpoint == "/metrics":
                    text = obs_metrics.get_registry().to_prometheus_text(
                        exemplars=True
                    )
                    self._count(endpoint, "200", started)
                    return 200, text, {"content-type": "text/plain; version=0.0.4"}
                elif endpoint == "/debug/generations":
                    status, payload = self._get_debug_generations()
                elif endpoint == "/debug/flight":
                    status, payload = self._get_debug_flight()
                elif endpoint.startswith("/debug/trace/"):
                    status, payload = self._get_debug_trace(
                        endpoint[len("/debug/trace/"):]
                    )
                else:
                    status, payload = 404, {"error": "not_found", "path": endpoint}
            elif method == "POST":
                try:
                    parsed = json.loads(body.decode("utf-8")) if body else None
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise RequestValidationError(
                        "body", f"request body is not valid JSON: {exc}"
                    ) from None
                if endpoint in ("/recommend", "/batch"):
                    # The traced request path does its own error
                    # handling, accounting and response decoration.
                    return await self._serve_traced(
                        endpoint, parsed, headers, started
                    )
                if endpoint == "/admin/swap":
                    status, payload = await self._post_swap(parsed)
                elif endpoint == "/admin/invalidate":
                    status, payload = await self._post_invalidate(parsed)
                else:
                    status, payload = 404, {"error": "not_found", "path": endpoint}
            else:
                status, payload = 405, {"error": "method_not_allowed"}
        except RequestValidationError as exc:
            status, payload = 400, exc.to_dict()
        except OverloadError as exc:
            status, payload = 503, exc.to_dict()
            extra["retry-after"] = str(
                max(exc.retry_after_ms / 1000.0, 0.001)
            )
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            status, payload = 500, {
                "error": "internal",
                "reason": f"{type(exc).__name__}: {exc}",
            }
        self._count(endpoint, str(status), started)
        return status, payload, extra

    async def _serve_traced(
        self,
        endpoint: str,
        parsed,
        headers: Dict[str, str],
        started: float,
    ) -> Tuple[int, object, Dict[str, str]]:
        """The recommendation path: ``POST /recommend`` and ``/batch``.

        Opens the request's root span (continuing the client's W3C
        ``traceparent`` when one arrived), decorates the response with
        ``traceparent`` + ``Server-Timing`` headers and a ``timings``
        body field, feeds the latency histogram an exemplar and the
        flight recorder a digest — for every outcome, including sheds.
        """
        timings = RequestTimings()
        incoming = tracing.parse_traceparent(headers.get("traceparent"))
        extra: Dict[str, str] = {}
        handler = (
            self._post_recommend if endpoint == "/recommend" else self._post_batch
        )
        context: Optional[Tuple[str, str]] = None
        try:
            if tracing.active():
                attrs: Dict[str, object] = {"endpoint": endpoint}
                if incoming is not None:
                    attrs["remote_parent"] = True
                handle = tracing.span_from_context(
                    incoming, "front.request", **attrs
                )
                with handle:
                    context = (handle.span.trace_id, handle.span.span_id)
                    status, payload = await handler(parsed, context, timings)
                    handle.set("status", status)
            else:
                # Tracing off: still mint a context so the response
                # carries a traceparent and the digest a trace id.
                trace_id = incoming[0] if incoming else os.urandom(16).hex()
                context = (trace_id, os.urandom(8).hex())
                status, payload = await handler(parsed, context, timings)
        except RequestValidationError as exc:
            status, payload = 400, exc.to_dict()
        except OverloadError as exc:
            status, payload = 503, exc.to_dict()
            extra["retry-after"] = str(
                max(exc.retry_after_ms / 1000.0, 0.001)
            )
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            status, payload = 500, {
                "error": "internal",
                "reason": f"{type(exc).__name__}: {exc}",
            }
        timings.finished = time.perf_counter()
        if status == 200 and isinstance(payload, dict):
            payload["timings"] = timings.breakdown_ms()
        traceparent = tracing.format_traceparent(context)
        if traceparent is not None:
            extra["traceparent"] = traceparent
        extra["server-timing"] = timings.server_timing()
        trace_id = context[0] if context is not None else None
        self._record_digest(trace_id, status, payload, timings)
        self._count(endpoint, str(status), started, trace_id=trace_id)
        return status, payload, extra

    def _record_digest(
        self,
        trace_id: Optional[str],
        status: int,
        payload,
        timings: RequestTimings,
    ) -> None:
        """One flight-recorder digest per recommendation request."""
        market = shard_id = generation = shed_reason = None
        if isinstance(payload, dict):
            market = payload.get("market")
            shard_id = payload.get("shard")
            generation = payload.get("generation")
            if status == 503:
                shed_reason = payload.get("reason")
        if generation is None:
            generation = self.shard_set.generation
        flight.record(
            flight.RequestDigest(
                trace_id=trace_id,
                market=market,
                shard=shard_id,
                generation=generation,
                status=status,
                latency_ms=round(timings.total_s * 1000.0, 3),
                shed_reason=shed_reason,
            )
        )

    def _get_debug_trace(self, trace_id: str) -> Tuple[int, Dict]:
        """``GET /debug/trace/<trace_id>`` — the reassembled span tree."""
        trace_id = trace_id.strip().strip("/")
        if not trace_id:
            return 404, {"error": "not_found", "path": "/debug/trace/"}
        if self._trace_buffer is None:
            return 404, {
                "error": "tracing_disabled",
                "detail": "start the server with tracing enabled",
            }
        tree = tracing.assemble_trace(self._trace_buffer.spans(), trace_id)
        if not tree.spans:
            return 404, {"error": "trace_not_found", "trace_id": trace_id}
        return 200, tree.to_dict()

    def _get_debug_generations(self) -> Tuple[int, Dict]:
        """``GET /debug/generations`` — the lifecycle timeline.

        Resolves the ``generation`` id stamped on response payloads back
        to the journal records that created it: the assembled timeline
        plus the raw recent records."""
        from repro.obs import journal as obs_journal

        active_journal = obs_journal.get_journal()
        if active_journal is None:
            return 404, {
                "error": "journal_disabled",
                "detail": "start the server with --journal PATH",
            }
        records = active_journal.tail()
        timeline = obs_journal.assemble_timeline(records)
        return 200, {
            "serving": {
                "generation": self.shard_set.generation,
                "stream": self.shard_set.journal_stream,
                "shards": len(self.shard_set.shards),
            },
            "journal": active_journal.digest(),
            "timeline": timeline.to_dict(),
            "records": records,
        }

    def _get_debug_flight(self) -> Tuple[int, Dict]:
        """``GET /debug/flight`` — recorder stats + recent digests."""
        recorder = flight.get_recorder()
        if recorder is None:
            return 404, {
                "error": "flight_recorder_disabled",
                "detail": "start the server with the flight recorder enabled",
            }
        stats = recorder.stats()
        stats["digests"] = [
            digest.to_dict() for digest in recorder.digests(limit=200)
        ]
        return 200, stats

    def _count(
        self,
        endpoint: str,
        status: str,
        started: float,
        trace_id: Optional[str] = None,
    ) -> None:
        self._requests_counter.labels(endpoint=endpoint, status=status).inc()
        self._latency_histogram.observe(
            time.perf_counter() - started, exemplar=trace_id
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        reasons = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
        }
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            body = json.dumps(payload, default=str).encode("utf-8")
            content_type = "application/json"
        headers = {
            "content-type": content_type,
            "content-length": str(len(body)),
        }
        if extra:
            headers.update(extra)
        head = f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()


class ServerHandle:
    """A front end hosted on a daemon thread, for synchronous callers."""

    def __init__(self, server: FrontServer):
        self.server = server
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stopping = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-front", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("front end did not start in time")
        if self._error is not None:
            raise RuntimeError(f"front end failed to start: {self._error}")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        stop_waiter = self._loop.create_future()
        self._stop_waiter = stop_waiter
        try:
            self.port = self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_until_complete(stop_waiter)
            self._loop.run_until_complete(self.server.stop())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if not self._stopping.is_set():
            self._stopping.set()

            def _finish():
                if not self._stop_waiter.done():
                    self._stop_waiter.set_result(None)

            self._loop.call_soon_threadsafe(_finish)
        self._thread.join(timeout=timeout)


def serve_in_thread(
    shard_set: ShardSet, config: Optional[FrontConfig] = None
) -> ServerHandle:
    """Boot a front end on a daemon thread; returns the started handle
    (``handle.port`` is the bound port)."""
    return ServerHandle(FrontServer(shard_set, config)).start()
