"""Launch-storm traffic generation against a running front end.

The paper's deployment reality is bursty: a market activates a wave of
carriers and every one of them asks for its configuration at once.
:func:`run_storm` replays that shape — N persistent connections
hammering the ``/recommend`` endpoint closed-loop, optionally firing a
mid-run ``/admin/swap`` — and audits the answers:

* every request must be *answered* (a shed 503 is retried after the
  server's ``retry_after_ms`` hint, honoring backpressure; a request
  that exhausts its retries or loses its connection counts as
  **dropped**),
* when the caller supplies expected values (computed by serving the
  same payloads directly), every answer is checked — a response whose
  values differ counts as **incorrect**, which is how the benchmark
  asserts a hot swap never surfaced a half-swapped or stale engine,
* latencies are recorded per request (retries included — the client
  experiences the backoff) and summarized as p50/p99.

The report is the gate artifact: ``BENCH_serve_scale.json`` is one
:meth:`StormReport.to_dict` plus the swap telemetry.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["StormProfile", "StormReport", "run_storm"]


@dataclass
class StormProfile:
    """Shape of one storm replay."""

    requests: int = 500
    connections: int = 8
    #: Fire one hot swap after this fraction of requests was sent
    #: (None = no swap).
    swap_at: Optional[float] = None
    swap_jobs: int = 1
    #: Retry budget for shed (503) responses, honoring retry_after_ms.
    max_retries: int = 25
    #: Cap on one backoff sleep, seconds (the server's hint is trusted
    #: below this).
    max_backoff_s: float = 0.5
    timeout_s: float = 60.0


@dataclass
class StormReport:
    """What the storm observed."""

    sent: int = 0
    ok: int = 0
    #: Requests never answered successfully (transport failure or
    #: retries exhausted).
    dropped: int = 0
    #: Successful answers whose values differed from the expectation.
    incorrect: int = 0
    #: 503 responses absorbed through retry (backpressure working).
    shed_retried: int = 0
    #: Non-200/503 statuses seen, by status code.
    http_errors: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    #: Responses seen per shard-set generation (the hot-swap audit).
    generations: Dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    swap: Optional[Dict] = None

    @property
    def rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        answered = self.sent if self.sent else 1
        return (self.dropped + self.incorrect) / answered

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def to_dict(self) -> Dict:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "dropped": self.dropped,
            "incorrect": self.incorrect,
            "shed_retried": self.shed_retried,
            "http_errors": dict(self.http_errors),
            "error_rate": self.error_rate,
            "rps": round(self.rps, 2),
            "latency_ms": {
                "p50": round(self.percentile_ms(0.50), 3),
                "p99": round(self.percentile_ms(0.99), 3),
                "mean": round(
                    sum(self.latencies_ms) / len(self.latencies_ms), 3
                )
                if self.latencies_ms
                else 0.0,
            },
            "generations": dict(self.generations),
            "duration_s": round(self.duration_s, 3),
            "swap": self.swap,
        }


class _Counter:
    """A shared take-a-number dispenser for the closed loop."""

    def __init__(self, total: int):
        self.total = total
        self._lock = threading.Lock()
        self._next = 0

    def take(self) -> Optional[int]:
        with self._lock:
            if self._next >= self.total:
                return None
            value = self._next
            self._next += 1
            return value

    def take_overflow(self) -> int:
        """Dispense past ``total`` — sustain-fire while a swap drains."""
        with self._lock:
            value = self._next
            self._next += 1
            return value

    @property
    def dispensed(self) -> int:
        with self._lock:
            return self._next


def _post_json(
    conn: http.client.HTTPConnection, path: str, payload
) -> "http.client.HTTPResponse":
    body = json.dumps(payload).encode("utf-8")
    conn.request(
        "POST", path, body=body, headers={"Content-Type": "application/json"}
    )
    return conn.getresponse()


def _storm_worker(
    host: str,
    port: int,
    payloads: Sequence[Dict],
    expected: Optional[Sequence[Optional[Dict]]],
    counter: _Counter,
    profile: StormProfile,
    report: StormReport,
    lock: threading.Lock,
    swap_done: Optional[threading.Event] = None,
) -> None:
    conn = http.client.HTTPConnection(host, port, timeout=profile.timeout_s)
    try:
        while True:
            index = counter.take()
            if index is None:
                # Keep the storm *sustained* while a hot swap is still
                # draining: a refit slower than the nominal request
                # budget must still land under live, audited load.
                if swap_done is not None and not swap_done.is_set():
                    index = counter.take_overflow()
                else:
                    return
            payload = payloads[index % len(payloads)]
            started = time.perf_counter()
            outcome = None  # (status, body) of the final attempt
            retried_sheds = 0
            for _attempt in range(profile.max_retries + 1):
                try:
                    response = _post_json(conn, "/recommend", payload)
                    status = response.status
                    body = response.read()
                except (
                    http.client.HTTPException, OSError, ConnectionError
                ):
                    # One reconnect per attempt: the server may have
                    # recycled an idle keep-alive connection.
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=profile.timeout_s
                    )
                    continue
                if status == 503:
                    retried_sheds += 1
                    try:
                        hint_ms = json.loads(body).get("retry_after_ms", 50)
                    except (json.JSONDecodeError, AttributeError):
                        hint_ms = 50
                    time.sleep(
                        min(hint_ms / 1000.0, profile.max_backoff_s)
                    )
                    continue
                outcome = (status, body)
                break
            latency_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                report.sent += 1
                report.shed_retried += retried_sheds
                if outcome is None:
                    report.dropped += 1
                    continue
                status, body = outcome
                if status != 200:
                    report.http_errors[str(status)] = (
                        report.http_errors.get(str(status), 0) + 1
                    )
                    report.dropped += 1
                    continue
                report.ok += 1
                report.latencies_ms.append(latency_ms)
                try:
                    answer = json.loads(body)
                except json.JSONDecodeError:
                    report.incorrect += 1
                    continue
                generation = str(answer.get("generation", "?"))
                report.generations[generation] = (
                    report.generations.get(generation, 0) + 1
                )
                if expected is not None:
                    want = expected[index % len(payloads)]
                    if want is not None and answer.get("values") != want:
                        report.incorrect += 1
    finally:
        conn.close()


def _swap_controller(
    host: str,
    port: int,
    counter: _Counter,
    profile: StormProfile,
    report: StormReport,
    lock: threading.Lock,
    swap_done: threading.Event,
) -> None:
    """Fire one hot swap after ``swap_at`` of the storm was dispensed."""
    threshold = int(profile.swap_at * profile.requests)
    while counter.dispensed < threshold:
        time.sleep(0.005)
    conn = http.client.HTTPConnection(host, port, timeout=profile.timeout_s)
    try:
        started = time.perf_counter()
        response = _post_json(conn, "/admin/swap", {"jobs": profile.swap_jobs})
        body = response.read()
        elapsed = time.perf_counter() - started
        with lock:
            if response.status == 200:
                swap = json.loads(body)
                swap["client_roundtrip_s"] = round(elapsed, 6)
                swap["fired_after_requests"] = threshold
                report.swap = swap
            else:
                report.swap = {
                    "error": f"swap returned HTTP {response.status}",
                    "body": body.decode("utf-8", "replace"),
                }
    except (http.client.HTTPException, OSError, ConnectionError) as exc:
        with lock:
            report.swap = {"error": f"swap request failed: {exc}"}
    finally:
        swap_done.set()
        conn.close()


def run_storm(
    host: str,
    port: int,
    payloads: Sequence[Dict],
    profile: Optional[StormProfile] = None,
    expected: Optional[Sequence[Optional[Dict]]] = None,
) -> StormReport:
    """Replay a launch storm and audit every answer.

    ``payloads`` are ``/recommend`` JSON bodies, cycled round-robin
    across the storm; ``expected[i]`` (optional) is the value map
    payload ``i`` must answer with, regardless of when the hot swap
    lands.  With ``swap_at`` set the storm is *sustained*: workers keep
    firing (and auditing) past the nominal request count until the swap
    response arrives, so a refit slower than the request budget still
    completes under live load — ``report.sent`` can exceed
    ``profile.requests``.
    """
    profile = profile or StormProfile()
    if not payloads:
        raise ValueError("storm needs at least one request payload")
    report = StormReport()
    counter = _Counter(profile.requests)
    lock = threading.Lock()
    swap_done = (
        threading.Event() if profile.swap_at is not None else None
    )
    workers = [
        threading.Thread(
            target=_storm_worker,
            args=(
                host, port, payloads, expected, counter, profile, report,
                lock, swap_done,
            ),
            name=f"storm-{i}",
            daemon=True,
        )
        for i in range(profile.connections)
    ]
    controller = None
    if profile.swap_at is not None:
        controller = threading.Thread(
            target=_swap_controller,
            args=(host, port, counter, profile, report, lock, swap_done),
            name="storm-swap",
            daemon=True,
        )
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    if controller is not None:
        controller.start()
    for worker in workers:
        worker.join(timeout=profile.timeout_s * 4)
    if controller is not None:
        controller.join(timeout=profile.timeout_s * 4)
    report.duration_s = time.perf_counter() - started
    return report
