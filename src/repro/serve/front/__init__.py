"""repro.serve.front — the sharded async serving front end.

The network surface in front of the recommendation engine: an asyncio
HTTP server that routes each request to a per-market
:class:`~repro.serve.service.RecommendationService` shard via a
consistent-hash ring, coalesces concurrent single-carrier requests into
micro-batches that hit the vectorized kernels through ``handle_batch``,
applies admission control and backpressure (bounded queues, structured
503 load shedding), and hot-swaps refitted engines into the shards with
zero downtime (FIFO swap sentinels: the old service drains while the
new one warms).

* :mod:`repro.serve.front.routing` — the consistent-hash ring and
  request → shard-key extraction.
* :mod:`repro.serve.front.admission` — global in-flight and per-shard
  queue bounds; :class:`OverloadError` is the 503 body.
* :mod:`repro.serve.front.coalesce` — the micro-batch window.
* :mod:`repro.serve.front.shards` — shard worker threads and the
  atomic hot-swap protocol.
* :mod:`repro.serve.front.server` — the asyncio HTTP surface.
* :mod:`repro.serve.front.traffic` — the launch-storm traffic
  generator that gates the whole tier (``BENCH_serve_scale.json``).
"""

from repro.serve.front.admission import AdmissionController, OverloadError
from repro.serve.front.coalesce import Coalescer
from repro.serve.front.routing import HashRing, shard_key
from repro.serve.front.server import (
    FrontConfig,
    FrontServer,
    ServerHandle,
    serve_in_thread,
)
from repro.serve.front.shards import EngineShard, ShardSet, SwapReport
from repro.serve.front.traffic import StormProfile, StormReport, run_storm

__all__ = [
    "AdmissionController",
    "OverloadError",
    "Coalescer",
    "HashRing",
    "shard_key",
    "FrontConfig",
    "FrontServer",
    "ServerHandle",
    "serve_in_thread",
    "EngineShard",
    "ShardSet",
    "SwapReport",
    "StormProfile",
    "StormReport",
    "run_storm",
]
