"""Engine shards and the zero-downtime hot-swap protocol.

Each :class:`EngineShard` is one worker thread draining a bounded FIFO
queue of micro-batches into its own
:class:`~repro.serve.service.RecommendationService`.  The services of
one :class:`ShardSet` share a single fitted engine (the vote tables are
read-only after :meth:`~repro.core.auric.AuricEngine.warm_votes`), but
each shard owns a private LRU vote cache — consistent routing keeps a
market's keys concentrated on its shard, and the per-shard service
lock never contends across shards.

**Hot swap.**  A refreshed engine enters the tier through a *swap
sentinel* enqueued on every shard's FIFO queue:

1. the replacement engine is fitted (or loaded) and **warmed** outside
   every queue — the old services keep serving the whole time
   (stale-but-available, exactly :meth:`EngineRefresher.full_refit`'s
   posture);
2. fresh services wrap the new engine, one per shard;
3. a sentinel lands at the tail of each shard queue.  FIFO order is the
   atomicity argument: every batch enqueued before the sentinel drains
   through the **old** service, every batch after it is served by the
   **new** one.  No request is dropped, none observes a half-swapped
   shard, and the tier never blocks — queues keep accepting during the
   drain.

Swap duration (sentinel enqueue → last shard swapped) is exported as
``repro_front_swap_seconds``; the set-wide generation counter rides on
every response so clients — and the storm benchmark's zero-stale
assertion — can see exactly which engine answered.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.config.rulebook import RuleBook
from repro.core.auric import AuricEngine
from repro.core.recommendation import RecommendRequest, RecommendResult
from repro.netmodel.identifiers import CarrierId
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.serve.front.routing import HashRing, shard_key
from repro.serve.refresh import EngineRefresher, RefreshResult
from repro.serve.service import DEFAULT_CACHE_SIZE, RecommendationService

__all__ = ["EngineShard", "ShardSet", "SwapReport"]

#: Default bound on each shard's batch queue.
DEFAULT_MAX_QUEUE = 256

_STOP = object()


@dataclass
class SwapReport:
    """What one hot swap did."""

    generation: int
    #: Engine build time (fit or load), before any shard was touched.
    refit_s: float
    #: Sentinel enqueue → last shard confirmed on the new service.
    swap_s: float
    #: Models warmed on the incoming engine while the old one served.
    warmed: int
    shards: int


class _SwapSentinel:
    __slots__ = ("service", "done")

    def __init__(self, service: RecommendationService):
        self.service = service
        self.done = threading.Event()


class _BatchItem:
    __slots__ = ("requests", "on_done", "traces", "timings")

    def __init__(
        self,
        requests: Sequence[RecommendRequest],
        on_done: Callable[[Optional[List[RecommendResult]], Optional[BaseException]], None],
        traces: Optional[Sequence] = None,
        timings: Optional[Sequence] = None,
    ):
        self.requests = requests
        self.on_done = on_done
        #: Per-request ``(trace_id, span_id)`` contexts (or ``None``s) —
        #: the shard worker re-roots its spans under each request's
        #: ``front.request`` span.
        self.traces = traces
        #: Per-request :class:`RequestTimings` (or ``None``s) — stamped
        #: ``dequeued`` when the worker picks the batch up.
        self.timings = timings


class EngineShard:
    """One serving shard: a worker thread over a bounded batch queue."""

    def __init__(
        self,
        shard_id: int,
        service: RecommendationService,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> None:
        self.shard_id = shard_id
        self._service = service
        self.max_queue = max_queue
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self.served = 0
        self.batches = 0
        self._depth_gauge = obs_metrics.gauge(
            "repro_front_queue_depth",
            "Batches waiting on each shard queue",
            labelnames=("shard",),
        ).labels(shard=str(shard_id))
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{shard_id}", daemon=True
        )
        self._thread.start()

    @property
    def service(self) -> RecommendationService:
        return self._service

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def submit_batch(
        self,
        requests: Sequence[RecommendRequest],
        on_done: Callable[[Optional[List[RecommendResult]], Optional[BaseException]], None],
        traces: Optional[Sequence] = None,
        timings: Optional[Sequence] = None,
    ) -> None:
        """Enqueue one micro-batch; raises :class:`queue.Full` when the
        shard's bound is hit (the caller sheds with a structured 503).

        ``traces``/``timings`` are optional per-request observability
        context (same length as ``requests``) carried across the
        thread boundary.
        """
        self._queue.put_nowait(_BatchItem(requests, on_done, traces, timings))
        self._depth_gauge.set(float(self._queue.qsize()))

    def swap(self, service: RecommendationService) -> threading.Event:
        """Enqueue a swap sentinel; the event fires once every batch
        ahead of it has drained through the old service and the shard
        answers from ``service``.  Sentinels bypass the queue bound —
        shedding a swap under load would defeat its purpose."""
        sentinel = _SwapSentinel(service)
        self._queue.put(sentinel)
        return sentinel.done

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            self._depth_gauge.set(float(self._queue.qsize()))
            if item is _STOP:
                break
            if isinstance(item, _SwapSentinel):
                self._service = item.service
                item.done.set()
                continue
            if item.timings:
                dequeued = time.perf_counter()
                for entry in item.timings:
                    if entry is not None:
                        entry.dequeued = dequeued
            try:
                results = self._handle_item(item)
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                item.on_done(None, exc)
            else:
                self.served += len(results)
                self.batches += 1
                item.on_done(results, None)

    def _handle_item(self, item: _BatchItem) -> List[RecommendResult]:
        """Serve one dequeued micro-batch, under its trace contexts.

        Both paths route through ``handle_batch`` — and so through the
        one-vote-per-distinct-cell planner for multi-request batches.
        With tracing enabled and propagated contexts present, the batch
        runs inside a ``front.batch`` span (parented at the first traced
        request, linking every member trace) and the service wraps each
        request's serving in its own ``shard.handle`` span re-rooted at
        that request's ``front.request`` context — so engine/planner
        spans land in the right trace.
        """
        traces = item.traces
        if not tracing.active() or not traces or not any(traces):
            return self._service.handle_batch(item.requests)
        first = next(trace for trace in traces if trace)
        links = [trace[0] for trace in traces if trace]
        with tracing.span_from_context(
            first,
            "front.batch",
            shard=self.shard_id,
            batch_size=len(item.requests),
            links=links,
        ):
            return self._service.handle_batch(
                item.requests, traces=traces, shard=self.shard_id
            )

    def stop(self, timeout: float = 5.0) -> None:
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout)


class ShardSet:
    """The routed collection of engine shards behind the front end."""

    def __init__(
        self,
        engine: AuricEngine,
        rulebook: Optional[RuleBook] = None,
        shards: int = 2,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_queue: int = DEFAULT_MAX_QUEUE,
        warm: bool = True,
        batch_planner: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("shard count must be positive")
        if rulebook is None:
            rulebook = RuleBook(engine.catalog)
        self.rulebook = rulebook
        self.cache_size = cache_size
        #: Forwarded to every shard service (including hot-swap
        #: replacements): False pins the serial per-request loop.
        self.batch_planner = batch_planner
        if warm:
            engine.warm_votes()
        self._services = [
            RecommendationService(
                engine, rulebook, cache_size=cache_size,
                batch_planner=batch_planner,
            )
            for _ in range(shards)
        ]
        self._shards = [
            EngineShard(i, service, max_queue=max_queue)
            for i, service in enumerate(self._services)
        ]
        self._ring = HashRing(range(shards))
        self._swap_lock = threading.Lock()
        #: Bumped once per completed hot swap; rides on every response.
        self.generation = 0
        #: Lifecycle-journal stream for the tier's generation counter —
        #: the one clients see on responses.
        self.journal_stream = obs_journal.mint_stream("front")
        obs_journal.record(
            "front-start",
            scope="front",
            stream=self.journal_stream,
            generation=0,
            shards=shards,
            engine_stream=engine.lineage,
            parameters=len(engine.fitted_parameters()),
        )
        self._swap_gauge = obs_metrics.gauge(
            "repro_front_swap_seconds",
            "Duration of the most recent shard hot-swap (drain + swap)",
        )
        self._swap_counter = obs_metrics.counter(
            "repro_front_swaps_total", "Completed shard-set hot swaps"
        )

    # -- routing -------------------------------------------------------------

    @property
    def shards(self) -> List[EngineShard]:
        return list(self._shards)

    @property
    def services(self) -> List[RecommendationService]:
        return list(self._services)

    def shard_for_key(self, key: Hashable) -> EngineShard:
        return self._shards[self._ring.node_for(key)]

    def shard_for(self, request: RecommendRequest) -> EngineShard:
        return self.shard_for_key(shard_key(request))

    # -- cache coherence across shards ---------------------------------------

    def notify_change(self, carrier_id: CarrierId, parameter: str) -> None:
        """Fan a configuration change to every shard's cache."""
        for service in self._services:
            service.notify_change(carrier_id, parameter)

    def invalidate(self, parameter: Optional[str] = None) -> int:
        """Drop cached votes on every shard; returns entries dropped."""
        return sum(
            service.invalidate(parameter) for service in self._services
        )

    def incremental_add(
        self,
        carrier_ids: Sequence[CarrierId],
        source_store=None,
        active=None,
    ) -> RefreshResult:
        """Activate carriers into the (shared) serving engine.

        Delegates to :meth:`EngineRefresher.incremental_add` on the
        first shard — the engine is shared, so one application updates
        every shard's electorate — then invalidates the affected
        parameters on the remaining shards' caches.
        """
        result = EngineRefresher(self._services[0]).incremental_add(
            carrier_ids, source_store, active
        )
        for name in result.added:
            for service in self._services[1:]:
                service.invalidate(name)
        return result

    # -- hot swap ------------------------------------------------------------

    def hot_swap(
        self,
        engine: Optional[AuricEngine] = None,
        parameters: Optional[Sequence[str]] = None,
        jobs: int = 1,
        warm: bool = True,
        trigger: Optional[str] = None,
    ) -> SwapReport:
        """Swap a refreshed engine into every shard with zero downtime.

        With ``engine=None`` a full refit runs first on the current
        snapshot (:meth:`EngineRefresher.full_refit`'s recipe, outside
        every shard queue) — the old services keep serving throughout.
        The new engine warms, fresh services wrap it, and a FIFO swap
        sentinel lands on each shard queue; see the module docstring
        for the atomicity argument.  ``trigger`` annotates the
        lifecycle-journal record (e.g. ``drift``, ``push``, ``storm``).
        """
        with self._swap_lock:
            with tracing.span("front.swap", shards=len(self._shards)) as sp:
                refit_started = time.perf_counter()
                if engine is None:
                    old = self._services[0].engine
                    if parameters is None:
                        parameters = old.fitted_parameters()
                    engine = AuricEngine(old.network, old.store, old.config).fit(
                        parameters, jobs=jobs
                    )
                refit_s = time.perf_counter() - refit_started
                warmed = engine.warm_votes() if warm else 0

                new_services = [
                    RecommendationService(
                        engine, self.rulebook, cache_size=self.cache_size,
                        batch_planner=self.batch_planner,
                    )
                    for _ in self._shards
                ]
                swap_started = time.perf_counter()
                events = [
                    shard.swap(service)
                    for shard, service in zip(self._shards, new_services)
                ]
                for event in events:
                    event.wait()
                swap_s = time.perf_counter() - swap_started

                self._services = new_services
                self.generation += 1
                self._swap_gauge.set(swap_s)
                self._swap_counter.inc()
                sp.set("generation", self.generation)
                sp.set("swap_s", round(swap_s, 6))
                obs_journal.record(
                    "hot-swap",
                    scope="front",
                    stream=self.journal_stream,
                    generation=self.generation,
                    parent_generation=self.generation - 1,
                    trigger=trigger or "manual",
                    duration_s=refit_s + swap_s,
                    refit_s=round(refit_s, 6),
                    swap_s=round(swap_s, 6),
                    warmed=warmed,
                    shards=len(self._shards),
                    engine_stream=engine.lineage,
                )
                return SwapReport(
                    generation=self.generation,
                    refit_s=refit_s,
                    swap_s=swap_s,
                    warmed=warmed,
                    shards=len(self._shards),
                )

    # -- lifecycle / stats ---------------------------------------------------

    def stats(self) -> Dict:
        return {
            "shards": len(self._shards),
            "generation": self.generation,
            "served": sum(s.served for s in self._shards),
            "batches": sum(s.batches for s in self._shards),
            "queue_depths": {s.shard_id: s.depth for s in self._shards},
            "cache_entries": sum(
                service.cache_len() for service in self._services
            ),
        }

    def stop(self) -> None:
        for shard in self._shards:
            shard.stop()
