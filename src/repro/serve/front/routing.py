"""Consistent-hash routing of requests onto engine shards.

Auric's electorate is organized by market (the paper's state-sized
operational regions), so the front end keeps all of one market's
traffic on one shard: the shard's vote cache then concentrates that
market's (cell, scope) keys instead of spreading them across every
shard's LRU.  The ring hashes each market onto ``replicas`` virtual
points so adding or removing a shard only remaps ~1/N of the markets —
the standard consistent-hashing argument — which keeps cache loss
proportional when an operator resizes the tier.

Routing keys are derived with :func:`shard_key`: existing-carrier and
launch (eNodeB) targets use their market index; attribute-only
new-carrier requests fall back to the ``market`` attribute, then to a
stable hash of the whole attribute vector.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.recommendation import RecommendRequest

__all__ = ["HashRing", "shard_key"]

#: Virtual nodes per shard — enough for an even spread at small N.
DEFAULT_REPLICAS = 64


def _stable_hash(key: str) -> int:
    """A platform-stable 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over shard identifiers."""

    def __init__(
        self, nodes: Sequence[Hashable], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        points: List[Tuple[int, Hashable]] = []
        for node in nodes:
            for replica in range(replicas):
                points.append((_stable_hash(f"{node}#{replica}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._nodes_at = [n for _, n in points]
        self._nodes = nodes

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._nodes)

    def node_for(self, key: Hashable) -> Hashable:
        """The shard owning ``key`` (first ring point clockwise)."""
        point = _stable_hash(str(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._nodes_at[index]

    def distribution(self, keys: Sequence[Hashable]) -> Dict[Hashable, int]:
        """How many of ``keys`` land on each node (diagnostics)."""
        counts: Dict[Hashable, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts


def shard_key(request: RecommendRequest) -> Hashable:
    """The routing key for one request.

    Market-affine wherever a market is known — existing carriers and
    launch requests carry one in their identifier, and new-carrier
    attribute vectors carry the ``market`` attribute — falling back to
    a stable hash of the attribute vector so even market-less requests
    route deterministically.
    """
    if request.carrier_id is not None:
        return f"market:{request.carrier_id.enodeb.market.index}"
    if request.enodeb_id is not None:
        return f"market:{request.enodeb_id.market.index}"
    market = request.attributes.get("market")
    if market is not None:
        return f"market:{market}"
    return f"attrs:{_stable_hash(repr(request.attributes.as_tuple()))}"
