"""Micro-batch coalescing of concurrent single-carrier requests.

During a launch storm many independent clients ask for one carrier
each within the same few milliseconds.  Serving them one-by-one pays
the per-call dispatch overhead N times; the engine's vectorized
columnar kernels are happiest when handed a batch.  The coalescer
holds each shard's arrivals for at most ``window_s`` (the
``--batch-window-ms`` knob) or until ``max_batch`` accumulate —
whichever comes first — then flushes the whole run as a single
``handle_batch`` call on the shard worker.

The window is a latency *budget*, not a fixed delay: the timer arms on
the first request of a batch, so an isolated request waits the window
once and a storm flushes early on size.  Batch sizes are observed in
``repro_front_batch_size`` — the distribution is the direct measure of
how much coalescing the storm achieved.

The coalescer is confined to the asyncio event loop (submit and flush
both run there); only the flush *callback* hands work to a shard
thread.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, List, Optional, Tuple

from repro.core.recommendation import RecommendRequest
from repro.obs import metrics as obs_metrics
from repro.serve.front.timings import RequestTimings

__all__ = ["Coalescer", "Entry"]

#: Batch-size histogram buckets (requests per flush).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Entry:
    """One coalesced request: the payload, the future its response
    resolves, and the observability context riding along — the
    request's trace context (``(trace_id, span_id)`` of its
    ``front.request`` span, or ``None``) and its
    :class:`~repro.serve.front.timings.RequestTimings`."""

    __slots__ = ("request", "future", "trace", "timings")

    def __init__(
        self,
        request: RecommendRequest,
        future: "asyncio.Future",
        trace: Optional[Tuple[str, str]] = None,
        timings: Optional[RequestTimings] = None,
    ):
        self.request = request
        self.future = future
        self.trace = trace
        self.timings = timings


class Coalescer:
    """Accumulates one shard's requests into micro-batches."""

    def __init__(
        self,
        flush: Callable[[List[Entry]], None],
        window_s: float,
        max_batch: int,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        if window_s < 0:
            raise ValueError("batch window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self._flush_fn = flush
        self.window_s = window_s
        self.max_batch = max_batch
        self._loop = loop
        self._pending: List[Entry] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._batch_histogram = obs_metrics.histogram(
            "repro_front_batch_size",
            "Coalesced requests per shard batch",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._coalesced_counter = obs_metrics.counter(
            "repro_front_coalesced_total",
            "Requests that shared a flush with at least one other request",
        )
        # Distinct request targets per flush: the upper bound on how
        # many votes the downstream batch planner must compute, so
        # (batch size − distinct targets) is the dedup opportunity the
        # coalescing window actually created.
        self._distinct_histogram = obs_metrics.histogram(
            "repro_front_batch_distinct_targets",
            "Distinct request labels per coalesced flush",
            buckets=BATCH_SIZE_BUCKETS,
        )

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _get_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop

    def submit(
        self,
        request: RecommendRequest,
        trace: Optional[Tuple[str, str]] = None,
        timings: Optional[RequestTimings] = None,
    ) -> "asyncio.Future":
        """Queue one request; returns the future its result resolves.

        ``trace``/``timings`` ride with the entry to the shard worker —
        the flush timer fires outside the request's coroutine (no
        :mod:`contextvars` inheritance), so the context must travel
        explicitly.
        """
        loop = self._get_loop()
        future: asyncio.Future = loop.create_future()
        if timings is not None:
            timings.submitted = time.perf_counter()
        self._pending.append(Entry(request, future, trace, timings))
        if len(self._pending) >= self.max_batch:
            self.flush_now()
        elif self._timer is None:
            if self.window_s == 0:
                self.flush_now()
            else:
                self._timer = loop.call_later(self.window_s, self.flush_now)
        return future

    def flush_now(self) -> int:
        """Flush the pending batch immediately; returns its size."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        flushed = time.perf_counter()
        for entry in batch:
            if entry.timings is not None:
                entry.timings.flushed = flushed
        self._batch_histogram.observe(float(len(batch)))
        if len(batch) > 1:
            self._coalesced_counter.inc(len(batch))
            labels = {
                label() if (label := getattr(entry.request, "label", None))
                else id(entry.request)
                for entry in batch
            }
            self._distinct_histogram.observe(float(len(labels)))
        self._flush_fn(batch)
        return len(batch)

    def close(self) -> None:
        """Cancel the timer and fail any stranded entries."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        for entry in batch:
            if not entry.future.done():
                entry.future.set_exception(RuntimeError("coalescer closed"))
