"""Admission control and load shedding for the serving front end.

Two bounds protect the tier:

* a **global in-flight ceiling** (``max_inflight``) — requests admitted
  but not yet answered, across every shard.  This is the knob that
  keeps a launch storm from queueing unbounded work in front of the
  engine;
* a **per-shard queue bound** (``max_queue``) — a hot market cannot
  monopolize the tier; its shard sheds while the others keep serving.

A request that would exceed either bound is *shed*: the server answers
a structured 503 whose body (:meth:`OverloadError.to_dict`) names the
exhausted resource, the current depth and a ``retry_after_ms`` hint
derived from the recent service rate — the client-visible half of the
backpressure loop.  Shed decisions are counted per reason in
``repro_front_shed_total`` and the in-flight level is exported through
``repro_front_inflight``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Optional

from repro.exceptions import ReproError
from repro.obs import flight
from repro.obs import metrics as obs_metrics

__all__ = ["AdmissionController", "OverloadError"]

#: Fallback retry hint when no latency estimate is available yet.
DEFAULT_RETRY_AFTER_MS = 50

#: Shed-burst detection: this many sheds inside the window triggers a
#: flight-recorder dump (the recorder rate-limits repeats).
SHED_BURST_COUNT = 20
SHED_BURST_WINDOW_S = 1.0


class OverloadError(ReproError):
    """The front end is shedding load; the payload is the 503 body."""

    def __init__(
        self,
        reason: str,
        limit: int,
        depth: int,
        retry_after_ms: int = DEFAULT_RETRY_AFTER_MS,
        shard: Optional[int] = None,
    ) -> None:
        self.reason = reason
        self.limit = limit
        self.depth = depth
        self.retry_after_ms = retry_after_ms
        self.shard = shard
        where = f" (shard {shard})" if shard is not None else ""
        super().__init__(
            f"overloaded{where}: {reason} at {depth}/{limit}; "
            f"retry in {retry_after_ms}ms"
        )

    def to_dict(self) -> Dict:
        body: Dict = {
            "error": "overloaded",
            "reason": self.reason,
            "limit": self.limit,
            "depth": self.depth,
            "retry_after_ms": self.retry_after_ms,
        }
        if self.shard is not None:
            body["shard"] = self.shard
        return body


class AdmissionController:
    """Bounded-admission accounting shared by every front-end endpoint.

    Thread-safe: the asyncio loop admits, shard worker threads release
    (through the completion callbacks).
    """

    def __init__(self, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        #: Smoothed per-request service time (seconds) feeding the
        #: Retry-After hint; seeded pessimistically.
        self._ewma_latency_s = 0.005
        self._inflight_gauge = obs_metrics.gauge(
            "repro_front_inflight",
            "Requests admitted by the front end and not yet answered",
        )
        self._shed_counter = obs_metrics.counter(
            "repro_front_shed_total",
            "Requests shed by admission control",
            labelnames=("reason",),
        )
        #: Recent shed timestamps (monotonic) for burst detection.
        self._shed_times: "deque[float]" = deque(maxlen=SHED_BURST_COUNT)

    def _note_shed(self, reason: str, weight: int = 1) -> None:
        """Count a shed and dump the flight recorder on a burst.

        A single shed is routine backpressure; ``SHED_BURST_COUNT``
        sheds inside ``SHED_BURST_WINDOW_S`` is an overload event worth
        a black-box snapshot.  Caller holds ``self._lock``.
        """
        self._shed_counter.labels(reason=reason).inc(weight)
        now = time.monotonic()
        self._shed_times.append(now)
        if (
            len(self._shed_times) == SHED_BURST_COUNT
            and now - self._shed_times[0] <= SHED_BURST_WINDOW_S
        ):
            recorder = flight.get_recorder()
            if recorder is not None:
                recorder.dump("shed-burst")

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def retry_after_ms(self, backlog: int) -> int:
        """A drain-time hint: backlog × smoothed service time."""
        with self._lock:
            latency = self._ewma_latency_s
        return max(int(backlog * latency * 1000), DEFAULT_RETRY_AFTER_MS)

    def admit(self, weight: int = 1) -> None:
        """Admit ``weight`` requests or raise :class:`OverloadError`."""
        with self._lock:
            if self._inflight + weight > self.max_inflight:
                depth = self._inflight
                latency = self._ewma_latency_s
                self._note_shed("max_inflight", weight)
                raise OverloadError(
                    reason="max_inflight",
                    limit=self.max_inflight,
                    depth=depth,
                    retry_after_ms=max(
                        int(depth * latency * 1000), DEFAULT_RETRY_AFTER_MS
                    ),
                )
            self._inflight += weight
            self._inflight_gauge.set(self._inflight)

    def shed_queue_full(self, shard: int, limit: int, depth: int) -> OverloadError:
        """Record a per-shard queue shed and build its 503."""
        with self._lock:
            self._note_shed("shard_queue")
        return OverloadError(
            reason="shard_queue",
            limit=limit,
            depth=depth,
            retry_after_ms=self.retry_after_ms(depth),
            shard=shard,
        )

    def release(self, weight: int = 1, latency_s: Optional[float] = None) -> None:
        """A request finished (answered or failed); update accounting."""
        with self._lock:
            self._inflight = max(self._inflight - weight, 0)
            self._inflight_gauge.set(self._inflight)
            if latency_s is not None and latency_s >= 0.0:
                self._ewma_latency_s += 0.2 * (latency_s - self._ewma_latency_s)
