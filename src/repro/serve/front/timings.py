"""Per-request timing breakdown through the serving path.

One :class:`RequestTimings` rides with each request from HTTP accept to
response write, collecting monotonic stamps at every hand-off:

* ``accepted`` — request parsed and routed (the front door),
* ``submitted`` — admitted and handed to the shard's coalescer,
* ``flushed`` — the coalescer window closed and the micro-batch was
  enqueued on the shard,
* ``dequeued`` — the shard worker picked the batch up,

plus two measured durations: ``engine_s`` (the service/engine call,
straight from ``RecommendResult.duration_s``) and ``serialize_s``
(building the response body).  The derived phases — ``queue`` (shard
queue wait), ``coalesce`` (window wait), ``engine``, ``serialize`` —
are what the ``Server-Timing`` response header and the body's
``timings`` field expose, and what the retroactive ``front.coalesce`` /
``front.queue`` spans are cut from.

Stamps are :func:`time.perf_counter` values — comparable across the
event loop and the shard worker threads of one process — with a
wall-clock anchor captured at construction so spans can be placed on
the epoch timeline (:meth:`wall`).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["RequestTimings"]


class RequestTimings:
    """Monotonic hand-off stamps + measured phases for one request."""

    __slots__ = (
        "anchor_wall",
        "anchor_perf",
        "accepted",
        "submitted",
        "flushed",
        "dequeued",
        "finished",
        "engine_s",
        "serialize_s",
    )

    def __init__(self) -> None:
        self.anchor_wall = time.time()
        self.anchor_perf = time.perf_counter()
        self.accepted = self.anchor_perf
        self.submitted: Optional[float] = None
        self.flushed: Optional[float] = None
        self.dequeued: Optional[float] = None
        self.finished: Optional[float] = None
        self.engine_s: Optional[float] = None
        self.serialize_s: Optional[float] = None

    def wall(self, perf_stamp: float) -> float:
        """Map a perf_counter stamp onto the epoch timeline."""
        return self.anchor_wall + (perf_stamp - self.anchor_perf)

    @staticmethod
    def _delta(start: Optional[float], end: Optional[float]) -> float:
        if start is None or end is None:
            return 0.0
        return max(0.0, end - start)

    @property
    def coalesce_s(self) -> float:
        """Time parked in the coalescer window (submit → flush)."""
        return self._delta(self.submitted, self.flushed)

    @property
    def queue_s(self) -> float:
        """Time waiting on the shard queue (flush → dequeue)."""
        return self._delta(self.flushed, self.dequeued)

    @property
    def total_s(self) -> float:
        end = self.finished if self.finished is not None else time.perf_counter()
        return max(0.0, end - self.accepted)

    def breakdown_ms(self) -> Dict[str, float]:
        """The ``timings`` body field: phase durations in milliseconds."""
        return {
            "queue_ms": round(self.queue_s * 1000.0, 3),
            "coalesce_ms": round(self.coalesce_s * 1000.0, 3),
            "engine_ms": round((self.engine_s or 0.0) * 1000.0, 3),
            "serialize_ms": round((self.serialize_s or 0.0) * 1000.0, 3),
            "total_ms": round(self.total_s * 1000.0, 3),
        }

    def server_timing(self) -> str:
        """The ``Server-Timing`` header value (phase;dur=ms, ...)."""
        parts = [
            ("queue", self.queue_s),
            ("coalesce", self.coalesce_s),
            ("engine", self.engine_s or 0.0),
            ("serialize", self.serialize_s or 0.0),
            ("total", self.total_s),
        ]
        return ", ".join(
            f"{name};dur={duration * 1000.0:.3f}" for name, duration in parts
        )
