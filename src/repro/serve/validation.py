"""Structured validation for serving-request payloads.

The serving front end answers malformed payloads with HTTP 400s that
name the offending field and the reason, so operators (and the traffic
generator's assertions) see *what* to fix instead of a bare
``KeyError`` traceback.  Every parse failure raises
:class:`RequestValidationError`, which carries:

* ``field`` — a dotted/indexed path into the payload
  (``requests[3].attributes``, ``enodeb``, ``neighbors[0]``),
* ``reason`` — a human-actionable sentence,
* :meth:`RequestValidationError.to_dict` — the JSON body the server
  returns.

Two request vocabularies are parsed here:

* the legacy *new-carrier* shape consumed by
  :func:`repro.serve.service.requests_from_json` (``attributes`` /
  ``enodeb`` / ``neighbors``), and
* the *unified* shape of :class:`~repro.core.recommendation.RecommendRequest`
  accepted by the HTTP front end, which additionally supports
  existing-carrier targets (``carrier`` + ``leave_one_out``),
  ``parameters`` restriction and the ``local`` / ``explain`` flags.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.pipeline import NewCarrierRequest
from repro.core.recommendation import RecommendRequest
from repro.dataio.keys import carrier_key_from_str
from repro.exceptions import GenerationError, ReproError
from repro.netmodel.attributes import CarrierAttributes
from repro.netmodel.identifiers import CarrierId, ENodeBId, MarketId

__all__ = [
    "RequestValidationError",
    "parse_carrier_key",
    "parse_enodeb_key",
    "new_carrier_request_from_dict",
    "new_carrier_requests_from_json",
    "unified_request_from_dict",
    "unified_requests_from_json",
]


class RequestValidationError(ReproError):
    """A request payload failed validation.

    ``field`` locates the problem inside the payload; ``reason`` says
    what is wrong with it.  The server maps this straight onto a 400
    response with :meth:`to_dict` as the body.
    """

    def __init__(self, field: str, reason: str):
        self.field = field
        self.reason = reason
        super().__init__(f"invalid request field {field!r}: {reason}")

    def to_dict(self) -> Dict[str, str]:
        return {
            "error": "invalid_request",
            "field": self.field,
            "reason": self.reason,
        }


def _require_mapping(payload: Any, field: str) -> Dict:
    if not isinstance(payload, dict):
        raise RequestValidationError(
            field, f"expected an object, got {type(payload).__name__}"
        )
    return payload


def parse_carrier_key(text: Any, field: str) -> CarrierId:
    """``market.enodeb.face.slot`` → :class:`CarrierId`, or a 400."""
    if not isinstance(text, str):
        raise RequestValidationError(
            field,
            "expected a 'market.enodeb.face.slot' string, got "
            f"{type(text).__name__}",
        )
    try:
        return carrier_key_from_str(text)
    except ValueError:
        raise RequestValidationError(
            field,
            f"malformed carrier key {text!r} "
            "(expected 'market.enodeb.face.slot', four integers)",
        ) from None


def parse_enodeb_key(text: Any, field: str) -> ENodeBId:
    """``market.index`` → :class:`ENodeBId`, or a 400."""
    parts = str(text).split(".")
    if len(parts) != 2:
        raise RequestValidationError(
            field,
            f"malformed eNodeB key {text!r} "
            "(expected 'market.index', two integers)",
        )
    try:
        market, index = (int(part) for part in parts)
        return ENodeBId(MarketId(market), index)
    except ValueError as exc:
        raise RequestValidationError(
            field, f"malformed eNodeB key {text!r}: {exc}"
        ) from None


def _parse_attributes(payload: Any, field: str) -> CarrierAttributes:
    if not isinstance(payload, dict):
        raise RequestValidationError(
            field,
            f"expected an attribute object, got {type(payload).__name__}",
        )
    try:
        return CarrierAttributes(payload)
    except GenerationError as exc:
        raise RequestValidationError(field, str(exc)) from None


def _parse_neighbors(
    payload: Any, field: str
) -> Tuple[CarrierId, ...]:
    if not isinstance(payload, (list, tuple)):
        raise RequestValidationError(
            field,
            f"expected a list of carrier keys, got {type(payload).__name__}",
        )
    return tuple(
        parse_carrier_key(item, f"{field}[{i}]")
        for i, item in enumerate(payload)
    )


def _parse_bool(payload: Dict, name: str, field: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise RequestValidationError(
            f"{field}.{name}" if field else name,
            f"expected a boolean, got {type(value).__name__}",
        )
    return value


def new_carrier_request_from_dict(
    payload: Any, field: str = "request"
) -> NewCarrierRequest:
    """Parse the legacy new-carrier shape with structured errors.

    Shape: ``{"attributes": {...}, "enodeb": "market.index" | null,
    "neighbors": ["m.e.f.s", ...]}``.
    """
    payload = _require_mapping(payload, field)
    if "attributes" not in payload:
        raise RequestValidationError(
            f"{field}.attributes", "required field is missing"
        )
    attributes = _parse_attributes(payload["attributes"], f"{field}.attributes")
    enodeb_id = None
    if payload.get("enodeb") is not None:
        enodeb_id = parse_enodeb_key(payload["enodeb"], f"{field}.enodeb")
    neighbors = _parse_neighbors(
        payload.get("neighbors", ()), f"{field}.neighbors"
    )
    return NewCarrierRequest(
        attributes=attributes,
        enodeb_id=enodeb_id,
        neighbor_carriers=neighbors,
    )


def _batch_items(payload: Any, field: str) -> List[Tuple[Any, str]]:
    """Normalize a batch payload (bare list or ``{"requests": [...]}``)
    into ``(item, item_field)`` pairs."""
    if isinstance(payload, dict):
        if "requests" not in payload:
            raise RequestValidationError(
                "requests",
                "batch object must carry a 'requests' list "
                "(or post a bare JSON list)",
            )
        payload = payload["requests"]
    if not isinstance(payload, (list, tuple)):
        raise RequestValidationError(
            field,
            f"expected a list of requests, got {type(payload).__name__}",
        )
    return [
        (item, f"{field}[{index}]") for index, item in enumerate(payload)
    ]


def new_carrier_requests_from_json(payload: Any) -> List[NewCarrierRequest]:
    """Parse a legacy request batch with per-item error locations."""
    return [
        new_carrier_request_from_dict(item, item_field)
        for item, item_field in _batch_items(payload, "requests")
    ]


def unified_request_from_dict(
    payload: Any,
    field: str = "request",
    parameters: Optional[Tuple[str, ...]] = None,
) -> RecommendRequest:
    """Parse the unified request shape the HTTP front end accepts.

    Either an existing-carrier query::

        {"carrier": "m.e.f.s", "leave_one_out": true}

    or a new-carrier query (the legacy shape)::

        {"attributes": {...}, "enodeb": "m.i", "neighbors": [...]}

    plus the optional ``parameters`` (list of names), ``local``,
    ``include_enumerations`` and ``explain`` flags.  ``parameters``
    passed by the caller is a default applied when the payload does not
    restrict the query itself.
    """
    payload = _require_mapping(payload, field)
    has_carrier = payload.get("carrier") is not None
    has_attributes = "attributes" in payload
    if has_carrier == has_attributes:
        raise RequestValidationError(
            field,
            "exactly one of 'carrier' (existing target) or 'attributes' "
            "(new carrier) must identify the target",
        )

    requested = payload.get("parameters")
    if requested is not None:
        if not isinstance(requested, (list, tuple)) or not all(
            isinstance(name, str) for name in requested
        ):
            raise RequestValidationError(
                f"{field}.parameters",
                "expected a list of parameter names",
            )
        parameters = tuple(requested)

    common = dict(
        parameters=parameters,
        include_enumerations=_parse_bool(
            payload, "include_enumerations", field, True
        ),
        local=_parse_bool(payload, "local", field, True),
        explain=_parse_bool(payload, "explain", field, False),
    )
    if has_carrier:
        if "neighbors" in payload or "enodeb" in payload:
            raise RequestValidationError(
                field,
                "existing-carrier queries resolve their neighborhood from "
                "the snapshot; 'enodeb'/'neighbors' apply to new carriers",
            )
        return RecommendRequest(
            carrier_id=parse_carrier_key(
                payload["carrier"], f"{field}.carrier"
            ),
            leave_one_out=_parse_bool(payload, "leave_one_out", field, False),
            **common,
        )
    if _parse_bool(payload, "leave_one_out", field, False):
        raise RequestValidationError(
            f"{field}.leave_one_out",
            "leave_one_out only applies to existing-carrier targets",
        )
    legacy = new_carrier_request_from_dict(payload, field)
    return RecommendRequest(
        attributes=legacy.attributes,
        enodeb_id=legacy.enodeb_id,
        neighbor_carriers=legacy.neighbor_carriers,
        **common,
    )


def unified_requests_from_json(
    payload: Any, parameters: Optional[Tuple[str, ...]] = None
) -> List[RecommendRequest]:
    """Parse a unified request batch with per-item error locations."""
    return [
        unified_request_from_dict(item, item_field, parameters)
        for item, item_field in _batch_items(payload, "requests")
    ]
