"""repro.serve — persistent model artifacts + a long-lived service.

The deployment-facing layer: train the Auric engine once, persist the
fitted state as a versioned artifact, and serve many recommendation
requests from one process — with caching, metrics, cold-start fallback
to the rule-book, and incremental refresh as the network grows.

* :mod:`repro.serve.artifacts` — save/load a fitted engine with
  recommendation-identical round-trips.
* :mod:`repro.serve.service` — the lock-free-read
  :class:`RecommendationService` with generation-stamped, lock-striped
  LRU vote caching and explicit invalidation.
* :mod:`repro.serve.batchplan` — one-vote-per-distinct-cell batch
  execution for micro-batches (:class:`BatchReport`,
  :func:`execute_batch`), byte-identical to the serial loop.
* :mod:`repro.serve.refresh` — incremental electorate updates and
  full refits with stale-but-available swapping.
* Service metrics live in :mod:`repro.obs.metrics`
  (:class:`ServiceMetrics`, re-exported here for convenience);
  the old ``repro.serve.metrics`` module is retired and raises on
  import.
* :mod:`repro.serve.validation` — structured payload validation
  (:class:`RequestValidationError` names the field and reason; the
  front end's 400 body).
* :mod:`repro.serve.front` — the sharded asyncio HTTP front end
  (consistent-hash routing, micro-batch coalescing, admission control,
  zero-downtime hot swap).  Imported explicitly — ``from
  repro.serve.front import ...`` — so library users of the in-process
  service never pay for the network stack.
"""

from repro.serve.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    artifact_fingerprint,
    artifact_summary,
    engine_from_dict,
    engine_to_dict,
    load_engine,
    save_engine,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_REFRESH_BUCKETS,
    LatencyHistogram,
    ServiceMetrics,
)
from repro.serve.batchplan import BatchReport, execute_batch
from repro.serve.refresh import (
    DriftCheck,
    EngineRefresher,
    GrowthReplay,
    RefreshResult,
    store_subset,
)
from repro.serve.service import (
    DEFAULT_CACHE_SIZE,
    RecommendationService,
    request_from_dict,
    requests_from_json,
)
from repro.serve.validation import (
    RequestValidationError,
    unified_request_from_dict,
    unified_requests_from_json,
)

__all__ = [
    "request_from_dict",
    "requests_from_json",
    "RequestValidationError",
    "unified_request_from_dict",
    "unified_requests_from_json",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "artifact_fingerprint",
    "artifact_summary",
    "engine_from_dict",
    "engine_to_dict",
    "load_engine",
    "save_engine",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_REFRESH_BUCKETS",
    "LatencyHistogram",
    "ServiceMetrics",
    "DriftCheck",
    "EngineRefresher",
    "GrowthReplay",
    "RefreshResult",
    "store_subset",
    "DEFAULT_CACHE_SIZE",
    "RecommendationService",
    "BatchReport",
    "execute_batch",
]
