"""One-vote-per-distinct-cell batch execution for the serving layer.

The front end coalesces bursts of new-carrier requests into
micro-batches (PR 6), and the columnar kernels answer a *set* of
distinct cells in one vectorized pass (PR 4) — this module is the
bridge.  A parameter's vote depends only on its (dependent-attribute
cell, neighborhood scope, leave-one-out exclusion) triple, which is
exactly the serving-cache key, so a batch's work factors as:

1. **Plan** — resolve every request against the snapshot once, expand
   its parameter list, and group the per-request parameter votes by
   cache key.  Burst traffic is duplicate-heavy (one eNodeB launching
   a band's worth of carriers shares attributes and neighborhoods), so
   the distinct-key count is typically far below the occurrence count.
2. **Compute** — each distinct key is computed exactly once: global
   no-exclusion votes for fitted parameters go through
   :meth:`~repro.core.auric.AuricEngine.table_global_votes`, one
   vectorized gather over all distinct cells per parameter; local,
   excluded, vote-capturing and rule-book entries take the same
   scalar compute core the serial loop uses.
3. **Scatter** — replay the serial per-request, per-parameter loop in
   request order against each group's state machine: every
   disposition ("hit"/"miss"), fallback reason, provenance record and
   ``service.handle``/``shard.handle`` span comes out exactly as the
   serial loop would have produced it, and the cache ends with the same
   entries in the same recency order (one put per distinct key at its
   last occurrence's slot).  ``handle_batch(planner=False)`` pins the
   serial loop, and the equivalence suite holds the two paths
   byte-identical (modulo wall-clock ``duration_s``).

The planner reads the service's immutable engine state once, so a
mid-batch snapshot refresh never mixes generations inside one batch:
every result carries the generation of the engine that voted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.recommendation import (
    CarrierRecommendation,
    ParameterRecommendation,
    RecommendRequest,
    RecommendResult,
)
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.provenance import ResultExplanation


@dataclass
class BatchReport:
    """What the planner did with one micro-batch.

    ``occurrences`` counts the parameter votes the batch asked for,
    ``distinct`` how many were actually distinct after grouping,
    ``computed`` how many the compute phase ran (cached keys cost
    nothing), and ``vectorized`` how many of those were answered by the
    batched plurality-table gather.  Exposed for tests and folded into
    the ``repro_batch_*`` instruments.
    """

    requests: int = 0
    occurrences: int = 0
    distinct: int = 0
    computed: int = 0
    vectorized: int = 0
    plan_s: float = 0.0
    compute_s: float = 0.0

    @property
    def dedup_savings(self) -> int:
        return self.occurrences - self.distinct

    @property
    def distinct_ratio(self) -> float:
        return self.distinct / self.occurrences if self.occurrences else 1.0


@dataclass(eq=False)
class _Group:
    """One distinct (parameter, cell, scope, exclusion) vote.

    Besides the grouping identity, the group carries the whole serial
    replay for its key: the pre-batch cached entry, the computed
    plain/vote-capturing variants, and ``served`` — the entry the next
    occurrence's cache lookup would have returned, evolving exactly as
    the serial loop's get/put sequence would evolve it.
    """

    key: Tuple
    name: str
    spec: object
    fitted: bool
    attributes: object
    row: Tuple
    neighborhood: Set
    exclude: Optional[Hashable]
    occurrences: int = 0
    #: Did the first occurrence ask for provenance?  Decides whether a
    #: vote-less "plain" variant is ever materialized (the serial loop
    #: computes whatever its first cache miss asks for).
    first_explain: bool = False
    #: Did any occurrence ask for provenance?  Decides whether a
    #: vote-carrying variant is needed at all.
    any_explain: bool = False
    #: The pre-batch cached entry (one peek per distinct key).
    cached: Optional[ParameterRecommendation] = None
    #: What the serving cache would currently return for this key.
    served: Optional[ParameterRecommendation] = None
    #: Computed (recommendation, fallback_reason) variants.
    plain_entry: Optional[Tuple] = None
    votes_entry: Optional[Tuple] = None
    #: Marker for the last-occurrence ordering pass.
    ordered: bool = False

    def note(self, explain: bool) -> None:
        if self.occurrences == 0:
            self.first_explain = explain
        if explain:
            self.any_explain = True
        self.occurrences += 1

    def final_entry(self) -> ParameterRecommendation:
        """The entry the serial loop's last put (or touch) would leave
        in the cache: a computed vote-carrying variant always wins —
        whenever both variants exist, the explain occurrence that
        demanded the second one also put it."""
        if self.votes_entry is not None:
            return self.votes_entry[0]
        if self.plain_entry is not None:
            return self.plain_entry[0]
        return self.cached


@dataclass
class _RequestPlan:
    """One request's resolved serving context plus its vote keys.

    Identical requests (same target, parameter list and voting flags)
    share one plan: resolution, parameter expansion and vote-key
    computation run once per *distinct* request, which is most of the
    planner's edge over the serial loop on duplicate-heavy bursts.
    """

    label: str
    names: List[str]
    attributes: object
    row: Tuple
    neighborhood: Set
    exclude: Optional[Hashable]
    #: Per parameter, aligned with ``names``: the distinct vote group.
    entries: List[_Group] = field(default_factory=list)


def _plan_key(request: RecommendRequest) -> Optional[Tuple]:
    """Dedup key for requests that resolve identically, or None.

    ``explain`` is deliberately absent — it changes what the scatter
    phase serves, not how the target resolves.  New-carrier requests
    key on the identity of their attributes object: resolution is pure,
    so any false negative just skips the dedup, never corrupts it.
    """
    return (
        request.carrier_id
        if request.carrier_id is not None
        else id(request.attributes),
        request.enodeb_id,
        request.neighbor_carriers,
        request.parameters,
        request.include_enumerations,
        request.local,
        request.leave_one_out,
    )


def _record_batch_metrics(report: BatchReport) -> None:
    """Fold one batch into the global ``repro_batch_*`` instruments
    (no-ops while the global registry is disabled)."""
    counter = obs_metrics.counter
    counter(
        "repro_batch_requests_total",
        "Requests served through the batch planner",
    ).inc(float(report.requests))
    counter(
        "repro_batch_parameter_votes_total",
        "Parameter votes requested across planner batches",
    ).inc(float(report.occurrences))
    counter(
        "repro_batch_distinct_votes_total",
        "Distinct (parameter, cell, scope, exclusion) votes per batch",
    ).inc(float(report.distinct))
    counter(
        "repro_batch_computed_votes_total",
        "Distinct votes the compute phase actually ran (not cached)",
    ).inc(float(report.computed))
    counter(
        "repro_batch_vectorized_votes_total",
        "Distinct votes answered by the batched plurality-table gather",
    ).inc(float(report.vectorized))
    counter(
        "repro_batch_dedup_savings_total",
        "Parameter votes deduplicated away by batch grouping",
    ).inc(float(report.dedup_savings))
    counter(
        "repro_batch_planner_seconds_total",
        "Wall-clock seconds spent in plan + compute phases",
    ).inc(report.plan_s + report.compute_s)
    obs_metrics.gauge(
        "repro_batch_distinct_ratio",
        "distinct / requested votes of the most recent planner batch",
    ).set(report.distinct_ratio)


def execute_batch(
    service,
    requests: Sequence[RecommendRequest],
    traces: Optional[Sequence] = None,
    shard: Optional[int] = None,
    report: Optional[BatchReport] = None,
) -> List[RecommendResult]:
    """Serve a micro-batch with one vote per distinct cell.

    The planner entry point behind
    :meth:`~repro.serve.service.RecommendationService.handle_batch`.
    ``traces`` optionally carries one propagated trace context per
    request (the shard worker's), wrapping each request's scatter in a
    ``shard.handle`` span parented at its own trace; ``report``
    receives the batch accounting when provided (tests use this).
    """
    started = time.perf_counter()
    state = service._state
    engine = state.engine
    generation = state.generation
    metrics = service.metrics
    cache = service._cache
    # The ambient thread-local capture flag: under an enclosing capture
    # context every compute collects vote distributions, exactly as the
    # serial loop's `explain or previous` logic does.
    ambient_capture = engine._capture_votes
    rep = report if report is not None else BatchReport()
    rep.requests = len(requests)
    with tracing.span(
        "front.batchplan", requests=len(requests), shard=shard
    ) as sp:
        # -- phase 1: plan -------------------------------------------------
        # Identical requests plan once: resolve, expand and key only the
        # distinct ones, then walk the occurrences in request order so
        # first-miss semantics and drift sampling match the serial loop.
        plan_by_key: Dict[Tuple, _RequestPlan] = {}
        distinct_requests: List[RecommendRequest] = []
        slots: List[Optional[Tuple]] = []
        for request in requests:
            dkey = _plan_key(request)
            if dkey not in plan_by_key:
                plan_by_key[dkey] = None  # claimed; filled after resolve
                distinct_requests.append(request)
            slots.append(dkey)
        resolved = engine.resolve_many(distinct_requests)
        catalog = engine.catalog
        vote_key = service._vote_key
        models = engine._models
        groups: "Dict[Tuple, _Group]" = {}
        for request, (attributes, row, neighborhood, exclude) in zip(
            distinct_requests, resolved
        ):
            names = service._parameter_names(
                catalog, request.parameters, request.include_enumerations
            )
            scope_key = frozenset(neighborhood) if neighborhood else None
            plan = _RequestPlan(
                request.label(), names, attributes, row, neighborhood, exclude
            )
            for name in names:
                spec = catalog.spec(name)
                fitted = spec.is_range and name in models
                key = vote_key(
                    engine, generation, name, fitted, row, scope_key, exclude
                )
                group = groups.get(key)
                if group is None:
                    group = groups[key] = _Group(
                        key, name, spec, fitted, attributes, row,
                        neighborhood, exclude,
                    )
                plan.entries.append(group)
            plan_by_key[_plan_key(request)] = plan
        drift_window = service._drift_window
        plans: List[_RequestPlan] = []
        for request, dkey in zip(requests, slots):
            plan = plan_by_key[dkey]
            plans.append(plan)
            if drift_window is not None:
                drift_window.observe(plan.attributes.values)
            explain = bool(request.explain)
            for group in plan.entries:
                group.note(explain)
        rep.distinct = len(groups)
        rep.occurrences = sum(g.occurrences for g in groups.values())
        # Cache mutations apply once per distinct key, ordered by each
        # key's LAST occurrence — the position the serial loop's final
        # get/put for that key would leave it at in the LRU.
        put_order: List[_Group] = []
        for plan in reversed(plans):
            for group in reversed(plan.entries):
                if not group.ordered:
                    group.ordered = True
                    put_order.append(group)
        put_order.reverse()

        # Which (key, votes-variant) pairs the batch will actually need.
        # The serial loop computes a key at its first cache miss, with
        # vote capture iff that occurrence asked for provenance (or the
        # ambient flag is on); a later explain occurrence that finds a
        # vote-less cached entry recomputes with capture on.  Replaying
        # that decision per distinct key up front tells us everything
        # the scatter phase will ask for.
        pending: List[Tuple[_Group, bool]] = []
        for group in groups.values():
            cached = cache.peek(group.key)
            group.cached = group.served = cached
            if not group.fitted:
                if cached is None:
                    pending.append((group, False))
                continue
            needs_votes = ambient_capture or group.any_explain
            if cached is None:
                if not (ambient_capture or group.first_explain):
                    pending.append((group, False))
                if needs_votes:
                    pending.append((group, True))
            elif group.any_explain and not cached.votes:
                pending.append((group, True))
        rep.plan_s = time.perf_counter() - started

        # -- phase 2: compute each distinct vote once ----------------------
        compute_started = time.perf_counter()
        vector_groups: Dict[str, List[_Group]] = {}
        scalar_pending: List[Tuple[_Group, bool]] = []
        for group, with_votes in pending:
            # Vectorizable: fitted, global scope, no vote capture (the
            # plurality table cannot carry distributions).  key[1] is
            # the dependent-attribute cell for fitted keys.
            if group.fitted and not with_votes and not group.neighborhood:
                vector_groups.setdefault(group.name, []).append(group)
            else:
                scalar_pending.append((group, with_votes))
        for name, members in vector_groups.items():
            answers = engine.table_global_votes(
                name,
                [g.key[1] for g in members],
                [g.exclude for g in members],
            )
            for group, rec in zip(members, answers):
                if rec is not None:
                    metrics.record_votes(rec.matched)
                    group.plain_entry = (rec, None)
                    rep.vectorized += 1
                    rep.computed += 1
                else:
                    # Unknown/emptied cell or a model off the table
                    # path: the scalar core walks the same relaxation
                    # chain the serial loop would.
                    scalar_pending.append((group, False))
        for group, with_votes in scalar_pending:
            outcome = service._compute_parameter(
                engine, group.name, group.spec, group.fitted,
                group.attributes, group.row, group.neighborhood,
                group.exclude, capture=with_votes,
            )
            if with_votes:
                group.votes_entry = outcome
            else:
                group.plain_entry = outcome
            rep.computed += 1
        rep.compute_s = time.perf_counter() - compute_started

        # Apply the batch's net cache effect now, before the scatter:
        # every key ends holding its final entry at its last-occurrence
        # recency slot (put touches like a get), and concurrent batches
        # see the computed votes at the earliest safe moment.
        cache_put = cache.put
        for group in put_order:
            cache_put(group.key, group.final_entry())

        # Plan/compute cost is shared work: spread it evenly over the
        # batch so per-request latencies still add up to wall-clock.
        shared_s = (
            (rep.plan_s + rep.compute_s) / len(requests) if requests else 0.0
        )

        # -- phase 3: scatter in request order -----------------------------
        # Span construction is skipped wholesale while tracing is off
        # (argument evaluation is the cost, not the null handles), and
        # cache dispositions aggregate into two counter increments at
        # the end — the per-lookup serial recording lands on the same
        # final values.
        traced = tracing.active()
        null_span = tracing.null_span()
        perf = time.perf_counter
        cache_hits = 0
        cache_misses = 0
        latencies: List[float] = []
        parameters_served = 0
        results: List[RecommendResult] = []
        for index, (request, plan) in enumerate(zip(requests, plans)):
            request_started = perf()
            if traced and traces is not None:
                shard_span = tracing.span_from_context(
                    traces[index], "shard.handle", shard=shard
                )
            else:
                shard_span = null_span
            with shard_span:
                rsp = (
                    tracing.span("service.handle", target=plan.label)
                    if traced
                    else null_span
                )
                with rsp:
                    result = CarrierRecommendation(target=plan.label)
                    explain = bool(request.explain)
                    dispositions = {} if explain else None
                    for name, group in zip(plan.names, plan.entries):
                        rec, hit, reason = _scatter_occurrence(
                            group, explain, ambient_capture
                        )
                        if hit:
                            cache_hits += 1
                        else:
                            cache_misses += 1
                        result.add(rec)
                        if dispositions is not None:
                            dispositions[name] = (
                                "hit" if hit else "miss", reason
                            )
                    explanation = None
                    if explain:
                        explanation = ResultExplanation(
                            target=plan.label,
                            source="service",
                            lineage=engine.lineage,
                        )
                        context = tracing.current_context()
                        if context is not None:
                            explanation.trace_id = context[0]
                        for name, rec in result.recommendations.items():
                            cache_state, fallback_reason = dispositions[name]
                            explanation.parameters[name] = (
                                engine.explain_parameter(
                                    rec,
                                    plan.row,
                                    neighborhood=(
                                        plan.neighborhood
                                        if request.local
                                        else None
                                    ),
                                    cache=cache_state,
                                    fallback_reason=fallback_reason,
                                )
                            )
                    duration = perf() - request_started + shared_s
                    rsp.set("parameters", len(plan.names))
                    latencies.append(duration)
                    parameters_served += len(plan.names)
                    results.append(
                        RecommendResult(
                            request=request,
                            recommendation=result,
                            source="service",
                            duration_s=duration,
                            exclude=plan.exclude,
                            explain=explanation,
                            generation=generation,
                        )
                    )
        metrics.record_requests_many(latencies, parameters_served)
        metrics.record_cache_many(cache_hits, cache_misses)
        sp.set("occurrences", rep.occurrences)
        sp.set("distinct", rep.distinct)
        sp.set("computed", rep.computed)
        sp.set("vectorized", rep.vectorized)
    metrics.record_batch(rep.occurrences, rep.distinct)
    _record_batch_metrics(rep)
    return results


def _scatter_occurrence(
    group: _Group, explain: bool, ambient_capture: bool
) -> Tuple[ParameterRecommendation, bool, Optional[str]]:
    """One occurrence's share of the scatter replay.

    Mirrors what ``RecommendationService._recommend_parameter`` would
    have observed at this point in the serial loop, replayed against
    the group's state machine instead of the live cache: ``served``
    starts as the pre-batch cached entry and evolves through the same
    first-miss-put and explain-revote-put transitions, so the
    disposition, served object and fallback reason of every occurrence
    come out identical.  (The live cache already holds the final entry
    — the planner applied the batch's net effect after the compute
    phase.)
    """
    served = group.served
    if served is None:
        # The serial loop's first cache miss: compute with vote capture
        # iff this occurrence (or the ambient flag) asked for it.
        if group.fitted and (explain or ambient_capture):
            rec, reason = group.votes_entry
        else:
            rec, reason = group.plain_entry
        group.served = rec
        return rec, False, reason
    if explain and group.fitted and not served.votes:
        # A provenance request hit a vote-less entry: the serial loop
        # re-votes with capture on and re-caches the richer record.
        rec, reason = group.votes_entry
        group.served = rec
        return rec, True, reason
    fallback_reason = (
        None if served.scope != "rulebook" else "served cached rule-book value"
    )
    return served, True, fallback_reason
