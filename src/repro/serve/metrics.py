"""Service metrics: a thin facade over the unified obs registry.

A long-lived recommendation service needs observable behaviour — cache
effectiveness, how often the rule-book cold-start path fires, how much
voting evidence backs the answers, how long snapshot refreshes take.
The counters and histograms themselves now live in a
:class:`repro.obs.metrics.MetricsRegistry` (one per
:class:`ServiceMetrics` instance, always on, independent of the
process-global registry); this module keeps the historical recording
API — ``record_request`` / ``record_cache`` / … — and the exact
``as_dict()`` / ``summary()`` shapes tests and the CLI rely on, while
gaining the registry's Prometheus text exposition for free.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    BucketHistogram,
    MetricsRegistry,
)

#: Default refresh-duration buckets (seconds) — refits are much slower.
DEFAULT_REFRESH_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


class LatencyHistogram(BucketHistogram):
    """A fixed-bucket cumulative histogram (Prometheus-style ``le``).

    Kept as a compatibility alias of
    :class:`repro.obs.metrics.BucketHistogram`; the only difference is
    the service-tuned default bucket layout.
    """

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS):
        super().__init__(buckets)


class ServiceMetrics:
    """Counters + histograms for one :class:`RecommendationService`.

    Thread-safe: the service answers requests from many threads, and the
    refresher records from a background thread; every instrument sits
    behind the backing registry's single lock.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: The backing registry; expose it so embedders can scrape the
        #: service in Prometheus text form (:meth:`to_prometheus_text`).
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "repro_service_requests_total", "Recommendation requests served"
        )
        self._parameters = reg.counter(
            "repro_service_parameters_served_total",
            "Parameter recommendations served",
        )
        self._cache = reg.counter(
            "repro_service_cache_lookups_total",
            "Vote-cache lookups by result",
            labelnames=("result",),
        )
        self._fallbacks = reg.counter(
            "repro_service_fallbacks_total",
            "Cold-start rule-book fallbacks served",
        )
        self._invalidations = reg.counter(
            "repro_service_invalidations_total", "Vote-cache invalidations"
        )
        self._refreshes = reg.counter(
            "repro_service_refreshes_total", "Engine snapshot refreshes"
        )
        self._votes = reg.counter(
            "repro_service_votes_total", "Matched-carrier votes counted"
        )
        self.request_latency = reg.histogram(
            "repro_service_request_latency_seconds",
            "Request latency",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.refresh_duration = reg.histogram(
            "repro_service_refresh_duration_seconds",
            "Snapshot refresh duration",
            buckets=DEFAULT_REFRESH_BUCKETS,
        )

    # -- recording ----------------------------------------------------------

    def record_request(self, latency_s: float, parameters: int) -> None:
        self._requests.inc()
        self._parameters.inc(parameters)
        self.request_latency.observe(latency_s)

    def record_cache(self, hit: bool) -> None:
        self._cache.labels("hit" if hit else "miss").inc()

    def record_votes(self, matched: float) -> None:
        self._votes.inc(matched)

    def record_fallback(self) -> None:
        self._fallbacks.inc()

    def record_invalidation(self, entries_dropped: int = 0) -> None:
        self._invalidations.inc()

    def record_refresh(self, duration_s: float) -> None:
        self._refreshes.inc()
        self.refresh_duration.observe(duration_s)

    # -- counter views ------------------------------------------------------

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def parameters_served(self) -> int:
        return int(self._parameters.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache.labels("hit").value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache.labels("miss").value)

    @property
    def fallbacks(self) -> int:
        return int(self._fallbacks.value)

    @property
    def invalidations(self) -> int:
        return int(self._invalidations.value)

    @property
    def refreshes(self) -> int:
        return int(self._refreshes.value)

    @property
    def votes(self) -> float:
        return self._votes.value

    # -- derived rates ------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def fallback_rate(self) -> float:
        served = self.parameters_served
        return self.fallbacks / served if served else 0.0

    @property
    def votes_per_request(self) -> float:
        requests = self.requests
        return self.votes / requests if requests else 0.0

    def as_dict(self) -> Dict:
        """A plain-dict export (for tests, the CLI and log lines)."""
        return {
            "requests": self.requests,
            "parameters_served": self.parameters_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "fallbacks": self.fallbacks,
            "fallback_rate": self.fallback_rate,
            "invalidations": self.invalidations,
            "refreshes": self.refreshes,
            "votes": self.votes,
            "votes_per_request": self.votes_per_request,
            "request_latency": self.request_latency.as_dict(),
            "refresh_duration": self.refresh_duration.as_dict(),
        }

    def to_prometheus_text(self) -> str:
        """The backing registry in Prometheus text exposition format."""
        return self.registry.to_prometheus_text()

    def summary(self) -> str:
        """A one-paragraph human rendering for the CLI."""
        d = self.as_dict()
        return (
            f"requests={d['requests']} parameters={d['parameters_served']} "
            f"cache_hit_rate={d['cache_hit_rate']:.1%} "
            f"fallbacks={d['fallbacks']} ({d['fallback_rate']:.1%}) "
            f"votes/request={d['votes_per_request']:.1f} "
            f"mean_latency={d['request_latency']['mean'] * 1e3:.3f}ms "
            f"refreshes={d['refreshes']}"
        )
