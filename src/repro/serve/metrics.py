"""Deprecated shim — service metrics now live in :mod:`repro.obs.metrics`.

``LatencyHistogram`` and ``ServiceMetrics`` were folded into the unified
observability registry module (they were already backed by it); this
module survives one deprecation cycle so external imports keep working.
Import from :mod:`repro.obs.metrics` instead.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import (  # noqa: F401 - re-exported compatibility aliases
    DEFAULT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_REFRESH_BUCKETS,
    BucketHistogram,
    LatencyHistogram,
    MetricsRegistry,
    ServiceMetrics,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_REFRESH_BUCKETS",
    "BucketHistogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "ServiceMetrics",
]

warnings.warn(
    "repro.serve.metrics is deprecated; import LatencyHistogram/"
    "ServiceMetrics from repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)
