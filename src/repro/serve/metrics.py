"""Retired — service metrics live in :mod:`repro.obs.metrics`.

``LatencyHistogram`` and ``ServiceMetrics`` were folded into the
unified observability registry module; this path survived one
deprecation cycle as a re-exporting shim and is now retired.  Importing
it raises so stale code fails loudly at import time instead of drifting
further behind.
"""

raise ImportError(
    "repro.serve.metrics is retired; import LatencyHistogram/"
    "ServiceMetrics (and the registry) from repro.obs.metrics instead"
)
