"""Service metrics: counters and latency histograms.

A long-lived recommendation service needs observable behaviour — cache
effectiveness, how often the rule-book cold-start path fires, how much
voting evidence backs the answers, how long snapshot refreshes take.
Everything here is plain Python (no client library): counters and
fixed-bucket histograms behind one lock, exported as a plain dict so
tests and the CLI can assert on or print them directly.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds) — tuned for an in-process service
#: where a cache hit is microseconds and a cold vote is milliseconds.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default refresh-duration buckets (seconds) — refits are much slower.
DEFAULT_REFRESH_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


class LatencyHistogram:
    """A fixed-bucket cumulative histogram (Prometheus-style ``le``)."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +inf tail
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket that
        contains the ``q``-th observation (conservative)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bound in enumerate(self.buckets):
            seen += self.counts[index]
            if seen >= target:
                return bound
        return float("inf")

    def as_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class ServiceMetrics:
    """Counters + histograms for one :class:`RecommendationService`.

    Thread-safe: the service answers requests from many threads, and the
    refresher records from a background thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.parameters_served = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.fallbacks = 0
        self.invalidations = 0
        self.refreshes = 0
        self.votes = 0.0
        self.request_latency = LatencyHistogram()
        self.refresh_duration = LatencyHistogram(DEFAULT_REFRESH_BUCKETS)

    # -- recording ----------------------------------------------------------

    def record_request(self, latency_s: float, parameters: int) -> None:
        with self._lock:
            self.requests += 1
            self.parameters_served += parameters
            self.request_latency.observe(latency_s)

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_votes(self, matched: float) -> None:
        with self._lock:
            self.votes += matched

    def record_fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1

    def record_invalidation(self, entries_dropped: int = 0) -> None:
        with self._lock:
            self.invalidations += 1

    def record_refresh(self, duration_s: float) -> None:
        with self._lock:
            self.refreshes += 1
            self.refresh_duration.observe(duration_s)

    # -- derived rates ------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def fallback_rate(self) -> float:
        served = self.parameters_served
        return self.fallbacks / served if served else 0.0

    @property
    def votes_per_request(self) -> float:
        return self.votes / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict:
        """A plain-dict export (for tests, the CLI and log lines)."""
        with self._lock:
            return {
                "requests": self.requests,
                "parameters_served": self.parameters_served,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": self.cache_hit_rate,
                "fallbacks": self.fallbacks,
                "fallback_rate": self.fallback_rate,
                "invalidations": self.invalidations,
                "refreshes": self.refreshes,
                "votes": self.votes,
                "votes_per_request": self.votes_per_request,
                "request_latency": self.request_latency.as_dict(),
                "refresh_duration": self.refresh_duration.as_dict(),
            }

    def summary(self) -> str:
        """A one-paragraph human rendering for the CLI."""
        d = self.as_dict()
        return (
            f"requests={d['requests']} parameters={d['parameters_served']} "
            f"cache_hit_rate={d['cache_hit_rate']:.1%} "
            f"fallbacks={d['fallbacks']} ({d['fallback_rate']:.1%}) "
            f"votes/request={d['votes_per_request']:.1f} "
            f"mean_latency={d['request_latency']['mean'] * 1e3:.3f}ms "
            f"refreshes={d['refreshes']}"
        )
