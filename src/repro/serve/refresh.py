"""Snapshot refresh for a serving engine.

Networks grow continuously (the paper's opening observation; the
deployment stream of Table 5), so a long-lived service cannot fit once
and serve forever.  Two refresh modes are provided:

* **Incremental add** — when carriers are activated, their configured
  values join the existing vote indexes *without* re-running attribute
  selection.  This is cheap (no chi-square pass) and keeps the learned
  dependency structure until the next full refit — the degradation
  trade-off real serving systems make.
* **Full refit** — a complete re-fit on the current snapshot, built
  outside the service lock and swapped in atomically
  (:meth:`RecommendationService.refresh_snapshot`), so the stale engine
  keeps serving until the new one is ready.

:class:`GrowthReplay` drives the incremental path from a
:class:`~repro.datagen.growth.GrowthTimeline`: it replays the
deployment story quarter by quarter, activating each quarter's launch
stream into the serving engine.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.config.store import ConfigurationStore
from repro.core.auric import AuricEngine
from repro.datagen.growth import GrowthTimeline
from repro.netmodel.identifiers import CarrierId
from repro.obs import tracing
from repro.obs.health import DriftReport
from repro.serve.service import RecommendationService

logger = logging.getLogger(__name__)


def store_subset(
    store: ConfigurationStore, carriers: Iterable[CarrierId]
) -> ConfigurationStore:
    """A new store holding only the given carriers' values.

    Pair-wise values are kept only when *both* endpoints are included —
    a pair toward a not-yet-activated carrier does not exist yet.
    """
    keep = set(carriers)
    out = ConfigurationStore(store.catalog)
    for carrier in store.carriers():
        if carrier in keep:
            for name, value in store.carrier_config(carrier).items():
                out.set_singular(carrier, name, value)
    for pair in store.pairs():
        if pair.carrier in keep and pair.neighbor in keep:
            for name, value in store.pair_config(pair).items():
                out.set_pairwise(pair, name, value)
    return out


@dataclass
class RefreshResult:
    """What one refresh did."""

    mode: str  # "incremental" or "full"
    duration_s: float
    #: parameter → number of vote samples added (incremental only).
    added: Dict[str, int] = field(default_factory=dict)
    generation: int = 0

    @property
    def total_added(self) -> int:
        return sum(self.added.values())


@dataclass
class DriftCheck:
    """Outcome of one drift check against the serving baseline."""

    #: None when the engine has no baseline or nothing live was scored.
    report: Optional[DriftReport]
    #: The verdict recommends a full refit (moderate or major drift).
    refit_recommended: bool
    #: The refit that ran, when :attr:`EngineRefresher.auto_refit` is on.
    refreshed: Optional[RefreshResult] = None

    @property
    def refit_triggered(self) -> bool:
        return self.refreshed is not None


class EngineRefresher:
    """Keeps a service's engine in step with a growing network.

    With ``auto_refit`` on, :meth:`check_drift` escalates a stale drift
    verdict straight into :meth:`full_refit`; the default merely
    *recommends*, leaving the refit decision to the operator (the
    paper's §6 posture: automation proposes, humans approve).
    """

    def __init__(
        self, service: RecommendationService, auto_refit: bool = False
    ):
        self.service = service
        self.auto_refit = auto_refit

    def check_drift(self, live=None, jobs: int = 1) -> DriftCheck:
        """Score drift and (optionally) act on a stale verdict.

        ``live`` overrides the service's sampled request window — pass
        :func:`repro.obs.health.attribute_distributions` output to score
        a whole candidate snapshot.
        """
        report = self.service.drift_report(live)
        if report is None or not report.stale:
            return DriftCheck(
                report=report, refit_recommended=False
            )
        logger.warning(
            "drift check recommends refit",
            extra={
                "verdict": report.verdict,
                "psi_max": round(report.psi_max, 4),
                "auto_refit": self.auto_refit,
            },
        )
        if not self.auto_refit:
            return DriftCheck(report=report, refit_recommended=True)
        result = self.full_refit(jobs=jobs)
        return DriftCheck(
            report=report, refit_recommended=True, refreshed=result
        )

    def incremental_add(
        self,
        carrier_ids: Sequence[CarrierId],
        source_store: Optional[ConfigurationStore] = None,
        active: Optional[Set[CarrierId]] = None,
    ) -> RefreshResult:
        """Activate carriers into the serving engine's vote indexes.

        ``source_store`` is where the new carriers' configured values
        live (defaults to the engine's own store).  ``active`` is the
        set of carriers already serving votes; pair-wise values join
        only when their other endpoint is active (or also activating).
        With ``active=None`` every other endpoint is assumed active.
        """
        started = time.perf_counter()
        with tracing.span(
            "refresh.incremental", carriers=len(carrier_ids)
        ):
            return self._incremental_add(
                started, carrier_ids, source_store, active
            )

    def _incremental_add(
        self,
        started: float,
        carrier_ids: Sequence[CarrierId],
        source_store: Optional[ConfigurationStore],
        active: Optional[Set[CarrierId]],
    ) -> RefreshResult:
        engine = self.service.engine
        source = source_store if source_store is not None else engine.store
        new = set(carrier_ids)
        added: Dict[str, int] = {}

        for name, model in sorted(engine.fitted_models().items()):
            count = 0
            if model.spec.is_pairwise:
                for pair, value in sorted(source.pairwise_values(name).items()):
                    if not self._pair_eligible(pair, new, active):
                        continue
                    if engine.store is not source:
                        engine.store.set_pairwise(pair, name, value)
                    model.add_sample(pair, engine.pair_row(pair), value)
                    count += 1
            else:
                for carrier_id in sorted(new):
                    value = source.get_singular(carrier_id, name)
                    if value is None:
                        continue
                    if engine.store is not source:
                        engine.store.set_singular(carrier_id, name, value)
                    model.add_sample(
                        carrier_id, engine.carrier_row(carrier_id), value
                    )
                    count += 1
            if count:
                added[name] = count
                # The store gained values for this parameter: its
                # encoded label columns no longer match and must be
                # re-encoded before the next columnar fit.
                engine.invalidate_columnar(name)
                self.service.invalidate(name)

        duration = time.perf_counter() - started
        self.service.metrics.record_refresh(duration)
        logger.info(
            "incremental refresh applied",
            extra={
                "carriers": len(new),
                "samples_added": sum(added.values()),
                "parameters": len(added),
                "duration_s": round(duration, 6),
            },
        )
        return RefreshResult(
            mode="incremental",
            duration_s=duration,
            added=added,
            generation=self.service.generation,
        )

    @staticmethod
    def _pair_eligible(
        pair, new: Set[CarrierId], active: Optional[Set[CarrierId]]
    ) -> bool:
        if pair.carrier in new:
            return active is None or pair.neighbor in active or pair.neighbor in new
        if pair.neighbor in new:
            return active is None or pair.carrier in active
        return False

    def full_refit(
        self, parameters: Optional[Sequence[str]] = None, jobs: int = 1
    ) -> RefreshResult:
        """Re-fit from scratch on the current snapshot and swap it in.

        Attribute selection runs again, so dependency structure learned
        incrementally-stale models are replaced.  The old engine serves
        until the swap (stale-but-available).  ``jobs`` fans the
        per-parameter fits across a process pool (the refit happens
        outside the service lock, so parallel workers never contend
        with serving traffic).
        """
        started = time.perf_counter()
        with tracing.span("refresh.full", jobs=jobs) as sp:
            old = self.service.engine
            if parameters is None:
                parameters = old.fitted_parameters()
            sp.set("parameters", len(parameters))
            fresh = AuricEngine(old.network, old.store, old.config).fit(
                parameters, jobs=jobs
            )
            generation = self.service.refresh_snapshot(fresh)
            duration = time.perf_counter() - started
            self.service.metrics.record_refresh(duration)
            logger.info(
                "full refit swapped in",
                extra={
                    "parameters": len(parameters),
                    "generation": generation,
                    "jobs": jobs,
                    "duration_s": round(duration, 6),
                },
            )
            return RefreshResult(
                mode="full", duration_s=duration, generation=generation
            )


class GrowthReplay:
    """Replay a deployment timeline into a serving engine.

    Built for the simulation loop: fit the service on the carriers
    active at some starting quarter (see :func:`store_subset`), then
    ``advance_to`` later quarters as the campaign progresses — each
    quarter's launch stream joins the electorate incrementally.
    """

    def __init__(
        self,
        service: RecommendationService,
        timeline: GrowthTimeline,
        source_store: ConfigurationStore,
        start_quarter: int = 0,
    ) -> None:
        self.refresher = EngineRefresher(service)
        self.timeline = timeline
        self.source_store = source_store
        self.quarter = start_quarter
        self._active: Set[CarrierId] = {
            carrier_id
            for carrier_id, q in timeline.activation_quarter.items()
            if q <= start_quarter
        }

    @property
    def active_carriers(self) -> Set[CarrierId]:
        return set(self._active)

    def advance_to(self, quarter: int) -> RefreshResult:
        """Activate every carrier launched in (current, quarter]."""
        if quarter < self.quarter:
            raise ValueError("cannot replay the timeline backwards")
        launched: list = []
        for q in range(self.quarter + 1, quarter + 1):
            launched.extend(self.timeline.launched_in(q))
        self.quarter = quarter
        if not launched:
            # Nothing activated; still a (trivial) refresh for metrics.
            return self.refresher.incremental_add(
                [], self.source_store, self._active
            )
        result = self.refresher.incremental_add(
            launched, self.source_store, self._active
        )
        self._active.update(launched)
        return result
