"""Snapshot refresh for a serving engine.

Networks grow continuously (the paper's opening observation; the
deployment stream of Table 5), so a long-lived service cannot fit once
and serve forever.  Two refresh modes are provided:

* **Incremental add** — when carriers are activated, their configured
  values join the existing vote indexes *without* re-running attribute
  selection.  This is cheap (no chi-square pass) and keeps the learned
  dependency structure until the next full refit — the degradation
  trade-off real serving systems make.
* **Incremental refit** — when a changelog names the (carrier,
  parameter) cells that actually changed, only the touched parameters
  are refit: their label columns are re-encoded against the mutated
  store, the vote structures rebuilt vectorized, and chi-square
  attribute selection re-run *only when the changes could have altered
  it* — when the capped fit subsample provably never saw a changed
  sample (and the sample topology is unchanged), the previous selection
  is reused, which is byte-identical to re-running it because every
  chi-square builder re-ranks label codes to within-subsample
  first-appearance order (bijective-recode invariant).  Untouched
  parameters keep their models, which a full refit would reproduce
  bit-for-bit anyway.  The equivalence suite asserts the whole engine
  matches a full refit on the same changelog.
* **Full refit** — a complete re-fit on the current snapshot, built
  outside the service lock and swapped in atomically
  (:meth:`RecommendationService.refresh_snapshot`), so the stale engine
  keeps serving until the new one is ready.

A refresher constructed with a :class:`repro.store.SnapshotStore` keeps
the persisted columnar snapshot in step: incremental adds invalidate
the touched parameters' columns, refits persist the re-encoded
snapshot, so a cold-started replica never re-encodes what a warm
process already wrote out.

:class:`GrowthReplay` drives the incremental path from a
:class:`~repro.datagen.growth.GrowthTimeline`: it replays the
deployment story quarter by quarter, activating each quarter's launch
stream into the serving engine.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config.parameters import ParameterSpec
from repro.config.store import ConfigurationStore
from repro.core.auric import AuricEngine, _ParameterModel
from repro.core.columnar import ParameterColumns
from repro.datagen.growth import GrowthTimeline
from repro.netmodel.identifiers import CarrierId
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.health import DriftReport
from repro.serve.service import RecommendationService

logger = logging.getLogger(__name__)


def _drift_payload(report: Optional[DriftReport]) -> Optional[Dict]:
    """The journal's compact drift summary for a report (or ``None``)."""
    if report is None:
        return None
    return {
        "verdict": report.verdict,
        "psi_max": round(report.psi_max, 6),
        "drifted": [d.attribute for d in report.drifted],
    }


def store_subset(
    store: ConfigurationStore, carriers: Iterable[CarrierId]
) -> ConfigurationStore:
    """A new store holding only the given carriers' values.

    Pair-wise values are kept only when *both* endpoints are included —
    a pair toward a not-yet-activated carrier does not exist yet.
    """
    keep = set(carriers)
    out = ConfigurationStore(store.catalog)
    for carrier in store.carriers():
        if carrier in keep:
            for name, value in store.carrier_config(carrier).items():
                out.set_singular(carrier, name, value)
    for pair in store.pairs():
        if pair.carrier in keep and pair.neighbor in keep:
            for name, value in store.pair_config(pair).items():
                out.set_pairwise(pair, name, value)
    return out


@dataclass
class RefreshResult:
    """What one refresh did."""

    mode: str  # "incremental", "incremental-refit" or "full"
    duration_s: float
    #: parameter → number of vote samples added (incremental only).
    added: Dict[str, int] = field(default_factory=dict)
    generation: int = 0
    #: parameter → number of changed sample positions (incremental
    #: refit only; -1 when the sample topology itself changed).
    refitted: Dict[str, int] = field(default_factory=dict)
    #: touched parameters whose chi-square selection was provably
    #: unaffected and therefore reused (incremental refit only).
    reused_selection: Tuple[str, ...] = ()
    #: touched parameters whose re-encoded columns came out identical
    #: (e.g. a rollback round-trip) — models kept as-is.
    skipped: Tuple[str, ...] = ()

    @property
    def total_added(self) -> int:
        return sum(self.added.values())


@dataclass
class DriftCheck:
    """Outcome of one drift check against the serving baseline."""

    #: None when the engine has no baseline or nothing live was scored.
    report: Optional[DriftReport]
    #: The verdict recommends a full refit (moderate or major drift).
    refit_recommended: bool
    #: The refit that ran, when :attr:`EngineRefresher.auto_refit` is on.
    refreshed: Optional[RefreshResult] = None

    @property
    def refit_triggered(self) -> bool:
        return self.refreshed is not None


class EngineRefresher:
    """Keeps a service's engine in step with a growing network.

    With ``auto_refit`` on, :meth:`check_drift` escalates a stale drift
    verdict straight into :meth:`full_refit`; the default merely
    *recommends*, leaving the refit decision to the operator (the
    paper's §6 posture: automation proposes, humans approve).
    """

    def __init__(
        self,
        service: RecommendationService,
        auto_refit: bool = False,
        snapshot_store: Optional["SnapshotStore"] = None,
    ):
        self.service = service
        self.auto_refit = auto_refit
        #: Optional :class:`repro.store.SnapshotStore` kept in step with
        #: the engine's columnar snapshot (invalidated on incremental
        #: adds, re-persisted after refits).
        self.snapshot_store = snapshot_store

    def check_drift(self, live=None, jobs: int = 1) -> DriftCheck:
        """Score drift and (optionally) act on a stale verdict.

        ``live`` overrides the service's sampled request window — pass
        :func:`repro.obs.health.attribute_distributions` output to score
        a whole candidate snapshot.
        """
        report = self.service.drift_report(live)
        stale = report is not None and report.stale
        obs_journal.record(
            "drift-check",
            scope="service",
            stream=self.service.journal_stream,
            generation=self.service.generation,
            parent_generation=self.service.generation,
            drift=_drift_payload(report),
            refit_recommended=stale,
            auto_refit=self.auto_refit,
        )
        if not stale:
            return DriftCheck(
                report=report, refit_recommended=False
            )
        logger.warning(
            "drift check recommends refit",
            extra={
                "verdict": report.verdict,
                "psi_max": round(report.psi_max, 4),
                "auto_refit": self.auto_refit,
            },
        )
        if not self.auto_refit:
            return DriftCheck(report=report, refit_recommended=True)
        result = self.full_refit(jobs=jobs, trigger="drift", drift_report=report)
        return DriftCheck(
            report=report, refit_recommended=True, refreshed=result
        )

    def incremental_add(
        self,
        carrier_ids: Sequence[CarrierId],
        source_store: Optional[ConfigurationStore] = None,
        active: Optional[Set[CarrierId]] = None,
    ) -> RefreshResult:
        """Activate carriers into the serving engine's vote indexes.

        ``source_store`` is where the new carriers' configured values
        live (defaults to the engine's own store).  ``active`` is the
        set of carriers already serving votes; pair-wise values join
        only when their other endpoint is active (or also activating).
        With ``active=None`` every other endpoint is assumed active.
        """
        started = time.perf_counter()
        with tracing.span(
            "refresh.incremental", carriers=len(carrier_ids)
        ):
            return self._incremental_add(
                started, carrier_ids, source_store, active
            )

    def _incremental_add(
        self,
        started: float,
        carrier_ids: Sequence[CarrierId],
        source_store: Optional[ConfigurationStore],
        active: Optional[Set[CarrierId]],
    ) -> RefreshResult:
        engine = self.service.engine
        source = source_store if source_store is not None else engine.store
        new = set(carrier_ids)
        added: Dict[str, int] = {}

        for name, model in sorted(engine.fitted_models().items()):
            count = 0
            if model.spec.is_pairwise:
                for pair, value in sorted(source.pairwise_values(name).items()):
                    if not self._pair_eligible(pair, new, active):
                        continue
                    if engine.store is not source:
                        engine.store.set_pairwise(pair, name, value)
                    model.add_sample(pair, engine.pair_row(pair), value)
                    count += 1
            else:
                for carrier_id in sorted(new):
                    value = source.get_singular(carrier_id, name)
                    if value is None:
                        continue
                    if engine.store is not source:
                        engine.store.set_singular(carrier_id, name, value)
                    model.add_sample(
                        carrier_id, engine.carrier_row(carrier_id), value
                    )
                    count += 1
            if count:
                added[name] = count
                # The store gained values for this parameter: its
                # encoded label columns no longer match and must be
                # re-encoded before the next columnar fit.
                engine.invalidate_columnar(name)
                if self.snapshot_store is not None:
                    self.snapshot_store.invalidate(name)
                self.service.invalidate(name)

        duration = time.perf_counter() - started
        self.service.metrics.record_refresh(duration)
        if added or carrier_ids:
            obs_journal.record(
                "incremental-add",
                scope="service",
                stream=self.service.journal_stream,
                generation=self.service.generation,
                parent_generation=self.service.generation,
                trigger="growth",
                duration_s=duration,
                carriers=len(new),
                samples_added=sum(added.values()),
                parameters=len(added),
            )
        logger.info(
            "incremental refresh applied",
            extra={
                "carriers": len(new),
                "samples_added": sum(added.values()),
                "parameters": len(added),
                "duration_s": round(duration, 6),
            },
        )
        return RefreshResult(
            mode="incremental",
            duration_s=duration,
            added=added,
            generation=self.service.generation,
        )

    @staticmethod
    def _pair_eligible(
        pair, new: Set[CarrierId], active: Optional[Set[CarrierId]]
    ) -> bool:
        if pair.carrier in new:
            return active is None or pair.neighbor in active or pair.neighbor in new
        if pair.neighbor in new:
            return active is None or pair.carrier in active
        return False

    def incremental_refit(
        self, changes, jobs: int = 1, trigger: Optional[str] = None
    ) -> RefreshResult:
        """Refit exactly the parameters a changelog touched.

        ``changes`` is a :class:`repro.ops.history.ChangeLog` (or any
        iterable of :class:`~repro.ops.history.ChangeRecord`).  For each
        touched fitted parameter the label column is re-encoded against
        the mutated store and one of three things happens:

        * the re-encoded column is value-identical (e.g. a rollback
          round-trip) — the model is kept untouched;
        * the sample topology is unchanged and every changed position
          falls outside the deterministic chi-square fit subsample — the
          previous attribute selection is **reused** (provably identical
          to re-running it, see the module docstring) and only the vote
          structures are rebuilt;
        * otherwise selection re-runs for that one parameter.

        Untouched parameters are never re-encoded or refit.  The result
        is byte-identical to :meth:`full_refit` over the same store —
        asserted by the equivalence suite — at a cost proportional to
        the touched (carrier, parameter) cells, not the network.

        Like :meth:`full_refit`, refit models are unweighted; a model
        fitted with performance-feedback vote weights loses them for
        the touched parameters.
        """
        records = (
            changes.all_records() if hasattr(changes, "all_records")
            else list(changes)
        )
        started = time.perf_counter()
        with tracing.span(
            "refresh.incremental_refit", changes=len(records)
        ) as sp:
            engine = self.service.engine
            touched: Dict[str, Set[CarrierId]] = {}
            for record in records:
                touched.setdefault(record.parameter, set()).add(
                    record.carrier_id
                )
            models = engine.fitted_models()
            refitted: Dict[str, int] = {}
            reused: List[str] = []
            skipped: List[str] = []
            for name in sorted(touched):
                model = models.get(name)
                if model is None:
                    continue  # not served; nothing fitted to refresh
                spec = engine.catalog.spec(name)
                new_model, changed_count, reuse = self._refit_parameter(
                    engine, spec, model
                )
                if new_model is None:
                    skipped.append(name)
                    continue
                engine.install_model(name, new_model)
                self.service.invalidate(name)
                self._patch_baseline(engine, name)
                refitted[name] = changed_count
                if reuse:
                    reused.append(name)
            if refitted and self.snapshot_store is not None:
                snapshot = engine.columnar_snapshot()
                if snapshot is not None:
                    self.snapshot_store.persist(snapshot)
            duration = time.perf_counter() - started
            self.service.metrics.record_refresh(duration)
            obs_metrics.counter(
                "repro_store_incremental_refit_total",
                "Changelog-scoped incremental refits",
            ).inc(1.0)
            obs_metrics.counter(
                "repro_store_refit_parameters_total",
                "Parameters refit by incremental refits",
            ).inc(float(len(refitted)))
            obs_metrics.counter(
                "repro_store_selection_reused_total",
                "Chi-square selections reused across incremental refits",
            ).inc(float(len(reused)))
            obs_metrics.counter(
                "repro_store_refit_samples_total",
                "Changed sample positions handled by incremental refits",
            ).inc(float(sum(c for c in refitted.values() if c > 0)))
            sp.set("parameters", len(refitted))
            sp.set("reused_selection", len(reused))
            # In-place event: incremental refit mutates models under
            # the same serving generation (parent == generation), so
            # the timeline annotates the node rather than adding an
            # edge.  The per-parameter path taken is the record's core.
            obs_journal.record(
                "incremental-refit",
                scope="service",
                stream=self.service.journal_stream,
                generation=self.service.generation,
                parent_generation=self.service.generation,
                trigger=trigger or "changelog",
                refit={
                    "kind": "incremental",
                    "refitted": dict(refitted),
                    "reused_selection": list(reused),
                    "skipped": list(skipped),
                },
                duration_s=duration,
                changes=len(records),
            )
            logger.info(
                "incremental refit applied",
                extra={
                    "changes": len(records),
                    "parameters": len(refitted),
                    "selection_reused": len(reused),
                    "unchanged": len(skipped),
                    "duration_s": round(duration, 6),
                },
            )
            return RefreshResult(
                mode="incremental-refit",
                duration_s=duration,
                generation=self.service.generation,
                refitted=refitted,
                reused_selection=tuple(reused),
                skipped=tuple(skipped),
            )

    def _refit_parameter(
        self,
        engine: AuricEngine,
        spec: ParameterSpec,
        old_model: _ParameterModel,
    ) -> Tuple[Optional[_ParameterModel], int, bool]:
        """Refit one touched parameter; ``(model, changed, reused)``.

        ``model`` is ``None`` when the mutated store encodes to columns
        value-identical to the fitted ones (keep the old model);
        ``changed`` counts changed sample positions (-1 when the
        topology itself changed); ``reused`` flags a reused selection.
        """
        if not engine.config.columnar:
            return engine._fit_parameter(spec), -1, False
        snapshot = engine.columnar_snapshot()
        old_columns = (
            snapshot.parameters.get(spec.name)
            if snapshot is not None
            else None
        )
        # Re-encode this parameter's label column against the mutated
        # store (the attribute matrix is untouched by config changes).
        engine.invalidate_columnar(spec.name)
        new_columns = engine.ensure_columnar([spec]).parameter(spec.name)
        changed = self._changed_positions(
            old_columns, old_model, new_columns, engine
        )
        if changed is not None and len(changed) == 0:
            return None, 0, False
        if changed is not None:
            picked = engine._fit_sample_positions(
                spec.name, len(new_columns)
            )
            if picked is not None and not np.isin(changed, picked).any():
                # Selection only ever saw the picked subsample, whose
                # labels (and all attribute codes) are unchanged — the
                # chi-square pass would reproduce the old outcome bit
                # for bit, so skip straight to the vote rebuild.
                model = engine._build_columnar_model(
                    spec,
                    old_model.dependent_columns,
                    old_model.dependent_stats,
                )
                return model, int(len(changed)), True
        return (
            engine._fit_parameter(spec),
            int(len(changed)) if changed is not None else -1,
            False,
        )

    @staticmethod
    def _changed_positions(
        old_columns: Optional[ParameterColumns],
        old_model: _ParameterModel,
        new_columns: ParameterColumns,
        engine: AuricEngine,
    ) -> Optional[np.ndarray]:
        """Sample positions whose configured value changed, or ``None``
        when the topology (which targets exist) changed too."""
        n = len(new_columns)
        new_labels = np.asarray(new_columns.label_vocab, dtype=object)[
            new_columns.label_codes
        ]
        if old_columns is not None:
            if len(old_columns) != n:
                return None
            if not np.array_equal(old_columns.sources, new_columns.sources):
                return None
            if (old_columns.neighbors is None) != (
                new_columns.neighbors is None
            ):
                return None
            if old_columns.neighbors is not None and not np.array_equal(
                old_columns.neighbors, new_columns.neighbors
            ):
                return None
            old_labels = np.asarray(old_columns.label_vocab, dtype=object)[
                old_columns.label_codes
            ]
        else:
            # The columns were already invalidated (service.notify_change
            # drops them on every push): reconstruct the fitted labels
            # from the model's samples, which are stored in the same
            # sorted-key order the encoder uses.
            samples = old_model.samples
            if len(samples) != n:
                return None
            snapshot = engine.columnar_snapshot()
            if list(samples.keys()) != new_columns.keys(
                snapshot.carrier_ids
            ):
                return None
            old_labels = np.asarray(
                [label for _, label in samples.values()], dtype=object
            )
        return np.nonzero(old_labels != new_labels)[0]

    @staticmethod
    def _patch_baseline(engine: AuricEngine, name: str) -> None:
        """Re-capture one parameter's drift-baseline distribution.

        Exactly what :meth:`repro.obs.health.DriftBaseline.capture`
        records for the parameter, patched in place — attributes and
        carrier count are untouched by configuration changes.
        """
        baseline = engine.drift_baseline
        if baseline is None:
            return
        counts: Dict[str, float] = {}
        for values in (
            engine.store.singular_values(name),
            engine.store.pairwise_values(name),
        ):
            for value in values.values():
                key = str(value)
                counts[key] = counts.get(key, 0.0) + 1.0
        if counts:
            baseline.parameters[name] = counts

    def full_refit(
        self,
        parameters: Optional[Sequence[str]] = None,
        jobs: int = 1,
        trigger: Optional[str] = None,
        drift_report: Optional[DriftReport] = None,
    ) -> RefreshResult:
        """Re-fit from scratch on the current snapshot and swap it in.

        Attribute selection runs again, so dependency structure learned
        incrementally-stale models are replaced.  The old engine serves
        until the swap (stale-but-available).  ``jobs`` fans the
        per-parameter fits across a process pool (the refit happens
        outside the service lock, so parallel workers never contend
        with serving traffic).

        ``trigger`` and ``drift_report`` annotate the lifecycle-journal
        record — :meth:`check_drift` passes them so the journal ties the
        new generation to the drift scores that caused it.
        """
        started = time.perf_counter()
        with tracing.span("refresh.full", jobs=jobs) as sp:
            old = self.service.engine
            if parameters is None:
                parameters = old.fitted_parameters()
            sp.set("parameters", len(parameters))
            fresh = AuricEngine(old.network, old.store, old.config).fit(
                parameters, jobs=jobs
            )
            generation = self.service.refresh_snapshot(fresh)
            if self.snapshot_store is not None:
                snapshot = fresh.columnar_snapshot()
                if snapshot is not None:
                    self.snapshot_store.persist(snapshot)
            duration = time.perf_counter() - started
            self.service.metrics.record_refresh(duration)
            obs_journal.record(
                "full-refit",
                scope="service",
                stream=self.service.journal_stream,
                generation=generation,
                parent_generation=generation - 1,
                trigger=trigger or "manual",
                drift=_drift_payload(drift_report),
                refit={"kind": "full"},
                duration_s=duration,
                parameters=len(parameters),
                jobs=jobs,
                engine_stream=fresh.lineage,
            )
            logger.info(
                "full refit swapped in",
                extra={
                    "parameters": len(parameters),
                    "generation": generation,
                    "jobs": jobs,
                    "duration_s": round(duration, 6),
                },
            )
            return RefreshResult(
                mode="full", duration_s=duration, generation=generation
            )


class GrowthReplay:
    """Replay a deployment timeline into a serving engine.

    Built for the simulation loop: fit the service on the carriers
    active at some starting quarter (see :func:`store_subset`), then
    ``advance_to`` later quarters as the campaign progresses — each
    quarter's launch stream joins the electorate incrementally.
    """

    def __init__(
        self,
        service: RecommendationService,
        timeline: GrowthTimeline,
        source_store: ConfigurationStore,
        start_quarter: int = 0,
    ) -> None:
        self.refresher = EngineRefresher(service)
        self.timeline = timeline
        self.source_store = source_store
        self.quarter = start_quarter
        self._active: Set[CarrierId] = {
            carrier_id
            for carrier_id, q in timeline.activation_quarter.items()
            if q <= start_quarter
        }

    @property
    def active_carriers(self) -> Set[CarrierId]:
        return set(self._active)

    def advance_to(self, quarter: int) -> RefreshResult:
        """Activate every carrier launched in (current, quarter]."""
        if quarter < self.quarter:
            raise ValueError("cannot replay the timeline backwards")
        launched: list = []
        for q in range(self.quarter + 1, quarter + 1):
            launched.extend(self.timeline.launched_in(q))
        self.quarter = quarter
        if not launched:
            # Nothing activated; still a (trivial) refresh for metrics.
            return self.refresher.incremental_add(
                [], self.source_store, self._active
            )
        result = self.refresher.incremental_add(
            launched, self.source_store, self._active
        )
        self._active.update(launched)
        return result
