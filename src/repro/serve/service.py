"""The long-lived recommendation service.

A :class:`RecommendationService` owns a fitted engine plus its network
snapshot and answers :class:`~repro.core.pipeline.NewCarrierRequest`\\ s
for as long as the process lives — the deployment shape of section 5 of
the paper, where Auric runs as an ongoing service feeding the push
controller, rather than the fit-per-call pattern the experiments use.

Design points:

* **Lock-free reads.** The serving state — engine plus its generation
  counter — lives in one immutable :class:`_EngineState` object that
  readers load with a single attribute read and writers replace
  atomically, so concurrent ``handle``/``handle_batch`` calls from
  shard threads never serialize on a service lock.  A request always
  sees a consistent (engine, generation) pair: the generation stamped
  on its result is the generation of the engine that actually voted.
  Mutators (refresh, invalidation, drift enablement) still take one
  re-entrant write lock against each other.
* **Generation-stamped, lock-striped vote cache.** A parameter
  recommendation for a new carrier depends only on
  (dependent-attribute cell, neighborhood scope) — two requests that
  agree on the attributes the parameter depends on and on their local
  voters get the same answer, so the vote is computed once.  Keys
  carry the snapshot generation, which makes every pre-swap entry
  unreachable the moment the snapshot refreshes; entries are spread
  over independently locked LRU stripes so concurrent readers rarely
  contend on the same stripe lock.  Per-parameter invalidation (a
  :class:`~repro.ops.history.ChangeLog` entry) is O(entries dropped)
  via a per-parameter key index.
* **Batched serving.** ``handle_batch`` routes multi-request
  micro-batches through :mod:`repro.serve.batchplan`, which computes
  each *distinct* (parameter, cell, scope, exclusion) vote exactly
  once per batch — byte-identical to the serial loop, dispositions and
  provenance included (``planner=False`` pins the serial loop).
* **Cold-start fallback.** A parameter with no fitted model, or a vote
  that cannot produce a value, falls back to the operational rule-book
  (mirroring :class:`~repro.core.pipeline.RecommendationPipeline`) and
  increments the fallback metric instead of raising.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import (
    Dict, Hashable, List, NoReturn, Optional, Sequence, Set, Tuple
)

from repro.config.rulebook import RuleBook
from repro.core.auric import AuricEngine
from repro.core.pipeline import (
    NewCarrierRequest,
    default_parameter_names,
    resolve_neighborhood,
)
from repro.core.recommendation import (
    CarrierRecommendation,
    ParameterRecommendation,
    RecommendRequest,
    RecommendResult,
    reject_retired_signature,
)
from repro.exceptions import RecommendationError, UnknownParameterError
from repro.netmodel.identifiers import CarrierId
from repro.obs import journal as obs_journal
from repro.obs import tracing
from repro.obs.health import (
    DriftDetector,
    DriftReport,
    DriftThresholds,
    DriftWindow,
)
from repro.obs.provenance import ResultExplanation
from repro.obs.metrics import ServiceMetrics
from repro.serve.validation import (
    new_carrier_request_from_dict,
    new_carrier_requests_from_json,
)

#: Default number of cached (parameter, cell, scope) votes.
DEFAULT_CACHE_SIZE = 4096


def request_from_dict(payload: Dict) -> NewCarrierRequest:
    """Build a request from its JSON form.

    Shape: ``{"attributes": {...}, "enodeb": "market.index" | null,
    "neighbors": ["m.e.f.s", ...]}`` — ``enodeb`` uses the same key
    format as the snapshot's X2 eNodeB edges, ``neighbors`` the carrier
    key format of :mod:`repro.dataio.keys`.

    Malformed payloads raise
    :class:`~repro.serve.validation.RequestValidationError`, which names
    the offending field and the reason (the front end's 400 body).
    """
    return new_carrier_request_from_dict(payload)


def requests_from_json(payload) -> List[NewCarrierRequest]:
    """Parse a request batch: either a bare list or ``{"requests": [...]}``.

    Parse failures raise
    :class:`~repro.serve.validation.RequestValidationError` with the
    failing item's index in the ``field`` path.
    """
    return new_carrier_requests_from_json(payload)


class _LRUCache:
    """A minimal LRU mapping (not thread-safe; stripes lock around it).

    Every key is a tuple led by the parameter name, and a per-parameter
    key index is maintained alongside the LRU order so ChangeLog
    invalidation drops one parameter's entries in O(entries dropped)
    instead of scanning the whole capacity.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, ParameterRecommendation]" = OrderedDict()
        self._by_parameter: Dict[str, Set[Hashable]] = {}

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Optional[ParameterRecommendation]:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable) -> Optional[ParameterRecommendation]:
        """Read without touching the LRU order (batch planning must not
        perturb the recency the serial replay would produce)."""
        return self._data.get(key)

    def put(self, key: Hashable, value: ParameterRecommendation) -> None:
        if key not in self._data:
            self._by_parameter.setdefault(key[0], set()).add(key)
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            evicted, _ = self._data.popitem(last=False)
            self._unindex(evicted)

    def _unindex(self, key: Hashable) -> None:
        keys = self._by_parameter.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_parameter[key[0]]

    def clear(self) -> int:
        dropped = len(self._data)
        self._data.clear()
        self._by_parameter.clear()
        return dropped

    def drop_parameter(self, parameter: str) -> int:
        """Drop every entry belonging to one parameter (keys lead with it)."""
        stale = self._by_parameter.pop(parameter, None)
        if not stale:
            return 0
        for key in stale:
            del self._data[key]
        return len(stale)


#: Lock stripes in the vote cache: enough that shard threads rarely
#: collide on one stripe lock, few enough that per-stripe LRU capacity
#: stays meaningful.
DEFAULT_CACHE_STRIPES = 8


class _StripedCache:
    """A lock-striped LRU: keys hash to one of N independently locked
    :class:`_LRUCache` stripes.

    Concurrent readers only contend when their keys land on the same
    stripe; total capacity is split evenly (each stripe gets
    ``ceil(capacity / stripes)``).  Whole-cache operations (``clear``,
    ``drop_parameter``, ``__len__``) take the stripe locks one at a
    time — they are rare control-plane events and need no global
    atomicity beyond what generation-stamped keys already give.
    """

    def __init__(self, capacity: int, stripes: int = DEFAULT_CACHE_STRIPES):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        count = max(1, min(stripes, capacity))
        per_stripe = -(-capacity // count)  # ceil
        self._stripes = tuple(_LRUCache(per_stripe) for _ in range(count))
        self._locks = tuple(threading.Lock() for _ in range(count))
        self._count = count

    def __len__(self) -> int:
        total = 0
        for stripe, lock in zip(self._stripes, self._locks):
            with lock:
                total += len(stripe)
        return total

    def _pick(self, key: Hashable) -> int:
        return hash(key) % self._count

    def get(self, key: Hashable) -> Optional[ParameterRecommendation]:
        index = self._pick(key)
        with self._locks[index]:
            return self._stripes[index].get(key)

    def peek(self, key: Hashable) -> Optional[ParameterRecommendation]:
        index = self._pick(key)
        with self._locks[index]:
            return self._stripes[index].peek(key)

    def put(self, key: Hashable, value: ParameterRecommendation) -> None:
        index = self._pick(key)
        with self._locks[index]:
            self._stripes[index].put(key, value)

    def clear(self) -> int:
        dropped = 0
        for stripe, lock in zip(self._stripes, self._locks):
            with lock:
                dropped += stripe.clear()
        return dropped

    def drop_parameter(self, parameter: str) -> int:
        dropped = 0
        for stripe, lock in zip(self._stripes, self._locks):
            with lock:
                dropped += stripe.drop_parameter(parameter)
        return dropped


class _EngineState:
    """One immutable (engine, generation) pair.

    Readers grab ``service._state`` once and work against that object
    for the whole request: the reference swap in
    :meth:`RecommendationService.refresh_snapshot` is atomic under the
    GIL, so there is no torn read where a request votes on the new
    engine but stamps the old generation (or vice versa).
    """

    __slots__ = ("engine", "generation")

    def __init__(self, engine: AuricEngine, generation: int):
        self.engine = engine
        self.generation = generation


class RecommendationService:
    """Serves configuration recommendations from a persistent engine."""

    def __init__(
        self,
        engine: AuricEngine,
        rulebook: Optional[RuleBook] = None,
        metrics: Optional[ServiceMetrics] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        batch_planner: bool = True,
        cache_stripes: int = DEFAULT_CACHE_STRIPES,
    ) -> None:
        #: Serializes mutators (refresh, invalidation, drift config)
        #: against each other; the read path never takes it.
        self._write_lock = threading.RLock()
        self._state = _EngineState(engine, 0)
        self.rulebook = rulebook
        self.metrics = metrics or ServiceMetrics()
        self._cache = _StripedCache(cache_size, cache_stripes)
        #: When True (default), multi-request ``handle_batch`` calls go
        #: through the one-vote-per-distinct-cell planner.
        self.batch_planner = batch_planner
        #: Live request-attribute window for drift scoring; None until
        #: :meth:`enable_drift_tracking` — the hot path pays one ``is
        #: None`` check while disabled.  The window itself is
        #: internally locked, so observing it needs no service lock.
        self._drift_window: Optional[DriftWindow] = None
        self._drift_thresholds = DriftThresholds()
        #: Lifecycle-journal stream id: each service is its own
        #: generation chain (gen 0 at construction, +1 per refresh).
        self.journal_stream = obs_journal.mint_stream("service")

    @classmethod
    def from_snapshot(
        cls,
        network,
        store,
        parameters: Optional[Sequence[str]] = None,
        config=None,
        rulebook: Optional[RuleBook] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "RecommendationService":
        """Fit an engine on a snapshot and wrap it in a service."""
        engine = AuricEngine(network, store, config).fit(parameters)
        if rulebook is None:
            rulebook = RuleBook(store.catalog)
        return cls(engine, rulebook, cache_size=cache_size)

    # -- engine access -------------------------------------------------------

    @property
    def engine(self) -> AuricEngine:
        return self._state.engine

    @property
    def generation(self) -> int:
        """Bumped on every snapshot refresh; lets callers detect swaps."""
        return self._state.generation

    def fitted_parameters(self) -> List[str]:
        return self._state.engine.fitted_parameters()

    def cache_len(self) -> int:
        return len(self._cache)

    # -- serving -------------------------------------------------------------

    def handle(self, request: RecommendRequest) -> RecommendResult:
        """Serve one unified request from the persistent engine.

        The canonical entry point (shared request/result vocabulary with
        the pipeline and the raw engine); the retired positional
        :meth:`recommend` signature raises
        :class:`~repro.core.recommendation.RetiredSignatureError`.
        Existing-carrier targets resolve their attributes and X2
        neighborhood from the serving snapshot, and leave-one-out
        queries exclude the target's own configured values from the
        vote — cache keys incorporate the exclusion, so evaluation
        traffic never pollutes launch-serving entries.

        Lock-free: the engine and generation are read once as one
        immutable state object, and the drift window / metrics sinks
        are internally synchronized, so concurrent callers proceed in
        parallel (modulo cache stripe locks).
        """
        started = time.perf_counter()
        state = self._state
        with tracing.span("service.handle", target=request.label()) as sp:
            explanation = None
            engine = state.engine
            names = self._parameter_names(
                engine.catalog, request.parameters, request.include_enumerations
            )
            attributes, row, neighborhood, exclude = engine.resolve_request(
                request
            )
            drift_window = self._drift_window
            if drift_window is not None:
                drift_window.observe(attributes.values)
            scope_key = frozenset(neighborhood) if neighborhood else None
            result = CarrierRecommendation(target=request.label())
            dispositions: Dict[str, Tuple[str, Optional[str]]] = {}
            for name in names:
                rec, disposition, fallback_reason = self._recommend_parameter(
                    engine, state.generation, name, attributes, row,
                    neighborhood, scope_key, exclude, explain=request.explain,
                )
                result.add(rec)
                dispositions[name] = (disposition, fallback_reason)
            if request.explain:
                explanation = ResultExplanation(
                    target=request.label(),
                    source="service",
                    lineage=engine.lineage,
                )
                context = tracing.current_context()
                if context is not None:
                    explanation.trace_id = context[0]
                for name, rec in result.recommendations.items():
                    cache_state, fallback_reason = dispositions[name]
                    explanation.parameters[name] = engine.explain_parameter(
                        rec,
                        row,
                        neighborhood=(
                            neighborhood if request.local else None
                        ),
                        cache=cache_state,
                        fallback_reason=fallback_reason,
                    )
            duration = time.perf_counter() - started
            sp.set("parameters", len(names))
            self.metrics.record_request(duration, len(names))
            return RecommendResult(
                request=request,
                recommendation=result,
                source="service",
                duration_s=duration,
                exclude=exclude,
                explain=explanation,
                generation=state.generation,
            )

    def handle_batch(
        self,
        requests: Sequence[RecommendRequest],
        planner: Optional[bool] = None,
        traces: Optional[Sequence] = None,
        shard: Optional[int] = None,
    ) -> List[RecommendResult]:
        """Serve a batch of unified requests (in order).

        ``planner=None`` (the default) routes multi-request batches
        through the one-vote-per-distinct-cell planner
        (:mod:`repro.serve.batchplan`) whenever :attr:`batch_planner`
        is on; ``planner=False`` pins the serial per-request loop
        (byte-identical results — the equivalence suite holds the two
        paths to that).  ``traces`` optionally carries one propagated
        trace context per request (the front end's shard worker passes
        them) and wraps each request's serving in a ``shard.handle``
        span parented at its own trace; ``shard`` labels those spans.
        """
        use_planner = planner
        if use_planner is None:
            use_planner = self.batch_planner and len(requests) > 1
        if use_planner:
            from repro.serve.batchplan import execute_batch

            return execute_batch(self, requests, traces=traces, shard=shard)
        if traces is None:
            return [self.handle(request) for request in requests]
        results = []
        for request, trace in zip(requests, traces):
            with tracing.span_from_context(trace, "shard.handle", shard=shard):
                results.append(self.handle(request))
        return results

    def recommend(self, *args, **kwargs) -> NoReturn:
        """Retired legacy entry point — use :meth:`handle`.

        The positional ``recommend(NewCarrierRequest, ...)`` signature
        spent a deprecation cycle as a warning shim and is now removed;
        build a :class:`~repro.core.recommendation.RecommendRequest`
        (``RecommendRequest.from_new_carrier`` adapts the old request
        type) and call :meth:`handle`.
        """
        reject_retired_signature(
            "RecommendationService.recommend(NewCarrierRequest, ...)",
            "RecommendationService.handle",
        )

    def recommend_batch(self, *args, **kwargs) -> NoReturn:
        """Retired legacy entry point — use :meth:`handle_batch`."""
        reject_retired_signature(
            "RecommendationService.recommend_batch(...)",
            "RecommendationService.handle_batch",
        )

    def _parameter_names(
        self,
        catalog,
        parameters: Optional[Sequence[str]],
        include_enumerations: bool,
    ) -> List[str]:
        if parameters is not None:
            for name in parameters:
                if catalog.spec(name).is_pairwise:
                    raise RecommendationError(
                        f"{name} is pair-wise; use recommend_neighbors()"
                    )
            return list(parameters)
        return default_parameter_names(
            catalog, self.rulebook, include_enumerations
        )

    def recommend_neighbors(
        self,
        request: NewCarrierRequest,
        parameters: Optional[Sequence[str]] = None,
    ) -> Dict[CarrierId, CarrierRecommendation]:
        """Pair-wise (handover) recommendations toward each declared
        neighbor of the request.

        Pair-wise parameters are configured per (carrier, neighbor)
        pair, so they need the request's ``neighbor_carriers`` to be
        populated (from ANR data); requests without neighbors get an
        empty result.
        """
        started = time.perf_counter()
        served = 0
        state = self._state
        engine = state.engine
        if parameters is None:
            names = [s.name for s in engine.catalog.pairwise_parameters()]
        else:
            names = list(parameters)
        for name in names:
            if not engine.catalog.spec(name).is_pairwise:
                raise RecommendationError(
                    f"{name} is singular; use recommend()"
                )
        own = request.attributes.as_tuple()
        neighborhood = resolve_neighborhood(engine, request)
        scope_key = frozenset(neighborhood) if neighborhood else None
        results: Dict[CarrierId, CarrierRecommendation] = {}
        for neighbor_id in request.neighbor_carriers:
            row = own + engine.carrier_row(neighbor_id)
            result = CarrierRecommendation(
                target=f"{request.label()}->{neighbor_id}"
            )
            for name in names:
                rec, _, _ = self._recommend_parameter(
                    engine, state.generation, name, request.attributes,
                    row, neighborhood, scope_key, None,
                )
                result.add(rec)
                served += 1
            results[neighbor_id] = result
        self.metrics.record_request(time.perf_counter() - started, served)
        return results

    @staticmethod
    def _vote_key(
        engine: AuricEngine,
        generation: int,
        name: str,
        fitted: bool,
        row: Tuple,
        scope_key: Optional[frozenset],
        exclude: Optional[Hashable],
    ) -> Tuple:
        """The cache key for one parameter's vote (shared with the
        batch planner, whose grouping key it is)."""
        if fitted:
            # The vote depends only on the dependent-attribute cell, the
            # neighborhood scope and the leave-one-out exclusion — the
            # cache key.
            cell = engine._models[name].cell_key(row)
            return (name, cell, scope_key, exclude, generation)
        # Rule-book lookups depend on the full attribute vector.
        return (name, row, None, None, generation)

    def _recommend_parameter(
        self,
        engine: AuricEngine,
        generation: int,
        name: str,
        attributes,
        row: Tuple,
        neighborhood: Set[CarrierId],
        scope_key: Optional[frozenset],
        exclude: Optional[Hashable],
        explain: bool = False,
    ) -> Tuple[ParameterRecommendation, str, Optional[str]]:
        """One parameter's recommendation plus its serving disposition.

        Returns ``(recommendation, cache_state, fallback_reason)`` where
        ``cache_state`` is ``"hit"`` or ``"miss"`` and
        ``fallback_reason`` is non-None when the rule-book answered.
        """
        spec = engine.catalog.spec(name)
        fitted = spec.is_range and name in engine._models
        key = self._vote_key(
            engine, generation, name, fitted, row, scope_key, exclude
        )
        cached = self._cache.get(key)
        cache_state = "hit" if cached is not None else "miss"
        self.metrics.record_cache(hit=cached is not None)
        if cached is not None and not (explain and fitted and not cached.votes):
            fallback_reason = (
                None if cached.scope != "rulebook"
                else "served cached rule-book value"
            )
            return cached, cache_state, fallback_reason
        # Cache miss — or an explain request whose cached entry lacks the
        # vote distribution: recompute with vote capture on (the reported
        # cache state stays "hit" so the explanation reflects how plain
        # serving would have answered).
        rec, fallback_reason = self._compute_parameter(
            engine, name, spec, fitted, attributes, row, neighborhood,
            exclude, capture=explain,
        )
        self._cache.put(key, rec)
        return rec, cache_state, fallback_reason

    def _compute_parameter(
        self,
        engine: AuricEngine,
        name: str,
        spec,
        fitted: bool,
        attributes,
        row: Tuple,
        neighborhood: Set[CarrierId],
        exclude: Optional[Hashable],
        capture: bool,
    ) -> Tuple[ParameterRecommendation, Optional[str]]:
        """One parameter's vote, uncached: the compute core shared by
        the serial path and the batch planner.

        Returns ``(recommendation, fallback_reason)``; ``capture``
        turns vote-distribution capture on for this computation (it is
        OR-ed with the ambient, thread-local flag, so an enclosing
        capture context stays in force).
        """
        fallback_reason: Optional[str] = None
        rec: Optional[ParameterRecommendation] = None
        previous_capture = engine._capture_votes
        engine._capture_votes = capture or previous_capture
        try:
            if fitted:
                try:
                    if neighborhood:
                        rec = engine.recommend_local(
                            name, row, neighborhood, exclude=exclude
                        )
                    else:
                        rec = engine.recommend_global(name, row, exclude=exclude)
                    self.metrics.record_votes(rec.matched)
                except RecommendationError as error:
                    rec = None  # fall through to the rule-book
                    fallback_reason = f"vote failed: {error}"
            elif spec.is_range:
                fallback_reason = "parameter not fitted (cold start)"
            else:
                fallback_reason = "enumeration parameter (rule-book)"
            if rec is None:
                rec = self._rulebook_fallback(name, attributes)
        finally:
            engine._capture_votes = previous_capture
        return rec, fallback_reason

    def _rulebook_fallback(self, name: str, attributes) -> ParameterRecommendation:
        if self.rulebook is None:
            raise RecommendationError(
                f"cannot recommend {name}: not fitted and no rule-book fallback"
            )
        self.metrics.record_fallback()
        return ParameterRecommendation(
            parameter=name,
            value=self.rulebook.value_for(name, attributes),
            support=1.0,
            matched=0.0,
            confident=False,
            scope="rulebook",
        )

    # -- drift tracking ------------------------------------------------------

    def enable_drift_tracking(
        self,
        sample_every: int = 8,
        thresholds: Optional[DriftThresholds] = None,
    ) -> DriftWindow:
        """Start sampling served-request attributes for drift scoring.

        Every ``sample_every``-th request's resolved attribute vector is
        folded into a :class:`~repro.obs.health.DriftWindow`;
        :meth:`drift_report` scores it against the engine's fit-time
        baseline.  Idempotent — re-enabling keeps the existing window.
        """
        with self._write_lock:
            if thresholds is not None:
                self._drift_thresholds = thresholds
            if self._drift_window is None:
                self._drift_window = DriftWindow(sample_every=sample_every)
            return self._drift_window

    @property
    def drift_window(self) -> Optional[DriftWindow]:
        return self._drift_window

    def drift_baseline(self):
        """The serving engine's fit-time baseline (None when absent —
        e.g. an engine loaded from a pre-v3 artifact)."""
        return self._state.engine.drift_baseline

    def drift_report(self, live=None) -> Optional[DriftReport]:
        """Score live distributions against the fit-time baseline.

        ``live`` is a ``{name: {category: count}}`` mapping; when
        omitted, the sampled request window is scored.  Returns None
        when the engine carries no baseline or there is nothing live to
        score; otherwise publishes the ``repro_drift_*`` gauges
        (zero-cost while the global registry is disabled) and returns
        the report.
        """
        baseline = self._state.engine.drift_baseline
        thresholds = self._drift_thresholds
        if live is None and self._drift_window is not None:
            live = self._drift_window.counts()
        if baseline is None or not live:
            return None
        report = DriftDetector(baseline, thresholds).score(live)
        report.record()
        return report

    # -- invalidation & refresh ---------------------------------------------

    def invalidate(self, parameter: Optional[str] = None) -> int:
        """Drop cached votes — all of them, or one parameter's.

        Returns the number of entries dropped.
        """
        with self._write_lock:
            if parameter is None:
                dropped = self._cache.clear()
            else:
                dropped = self._cache.drop_parameter(parameter)
        self.metrics.record_invalidation(dropped)
        return dropped

    def notify_change(self, carrier_id: CarrierId, parameter: str) -> None:
        """A configuration change landed (e.g. a ChangeLog entry): the
        electorate for ``parameter`` shifted, so its cached votes are
        stale.  Unknown parameters are ignored — the change cannot have
        been cached."""
        try:
            with self._write_lock:
                engine = self._state.engine
                engine.catalog.spec(parameter)
                # The configured value changed under the snapshot: the
                # parameter's encoded label column is stale alongside the
                # cached votes.
                engine.invalidate_columnar(parameter)
        except UnknownParameterError:
            return
        self.invalidate(parameter)

    def refresh_snapshot(self, engine: AuricEngine) -> int:
        """Atomically swap in a newly fitted engine (new snapshot).

        The old engine keeps serving until the swap: readers that
        loaded the previous state finish against it (stale-but-
        consistent), new readers pick up the fresh state on their next
        ``self._state`` load.  The cache needs no flush-before-swap
        dance — generation-stamped keys make every old entry
        unreachable the instant the state pointer moves; the clear just
        releases the memory.  Returns the new generation.
        """
        with self._write_lock:
            state = _EngineState(engine, self._state.generation + 1)
            self._state = state
            self._cache.clear()
            # The new engine carries a new baseline; the window sampled
            # against the old one would read as spurious drift.
            if self._drift_window is not None:
                self._drift_window.clear()
            obs_journal.record(
                "refresh",
                scope="service",
                stream=self.journal_stream,
                generation=state.generation,
                parent_generation=state.generation - 1,
                engine_stream=engine.lineage,
                parameters=len(engine.fitted_parameters()),
            )
            return state.generation
